"""Figure 12: POLARIS component analysis.

Shape claims (Section 6.6): both EDF ordering and on-arrival frequency
adjustment matter at tight slack --- failure rates order
POLARIS < POLARIS-FIFO < POLARIS-FIFO-NOARRIVE; POLARIS-FIFO pays some
extra power over NOARRIVE for its arrival-triggered speedups; and EDF
contributes power savings (POLARIS meets targets at lower frequencies).
"""

from repro.harness import figures


def test_fig12_variants(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.fig12_variants,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("fig12_variants", result.render())

    polaris_f = result.failure("POLARIS")
    fifo_f = result.failure("POLARIS-FIFO")
    noarrive_f = result.failure("POLARIS-FIFO-NOARRIVE")

    # Failure ordering holds across the whole slack axis.
    for i in range(len(result.slacks)):
        assert polaris_f[i] <= fifo_f[i] + 0.01, result.slacks[i]
        assert fifo_f[i] <= noarrive_f[i] + 0.01, result.slacks[i]

    # At tight slack the gaps are substantial.
    assert noarrive_f[0] > 1.5 * polaris_f[0]

    # EDF also saves power: POLARIS draws the least at loose slack.
    polaris_p = result.power("POLARIS")
    fifo_p = result.power("POLARIS-FIFO")
    assert polaris_p[-1] <= fifo_p[-1]
