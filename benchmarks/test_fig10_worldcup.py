"""Figure 10: time-varying load from the World Cup-style trace.

Shape claims (Section 6.4, Figure 10(b)): POLARIS achieves both the
lowest average power AND the lowest failure rate; Conservative burns
the most power; OnDemand lands in between on power but misses the most
deadlines.  All schemes' power tracks the load, POLARIS's adjustments
being the deepest.
"""

from repro.harness import figures


def test_fig10_worldcup(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.fig10_worldcup,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("fig10_worldcup", result.render())

    power = {label: p for label, (p, _) in result.summary.items()}
    failure = {label: f for label, (_, f) in result.summary.items()}

    # Paper Figure 10(b) ordering: Conservative 168.9/0.09,
    # OnDemand 152.9/0.13, POLARIS 139/0.07.
    assert power["POLARIS"] < power["OnDemand"] < power["Conservative"]
    assert failure["POLARIS"] <= failure["OnDemand"]
    assert failure["POLARIS"] <= failure["Conservative"] + 0.01

    # Every scheme's power timeline tracks the load: power in the
    # highest-load fifth of bins exceeds the lowest-load fifth.
    trace = result.trace
    for label, series in result.timelines.items():
        assert len(series) >= 4
        paired = []
        bin_width = figure_options.timeline_bin_seconds \
            if hasattr(figure_options, "timeline_bin_seconds") else 5.0
        for centre, watts in series:
            index = int(centre - 1.0)  # test phase starts after warmup
            index = min(max(index, 0), len(trace) - 1)
            paired.append((trace[index], watts))
        paired.sort()
        fifth = max(1, len(paired) // 5)
        low_mean = sum(w for _, w in paired[:fifth]) / fifth
        high_mean = sum(w for _, w in paired[-fifth:]) / fifth
        assert high_mean > low_mean, label

    # POLARIS's adjustments are the deepest: largest power swing.
    swings = {label: max(w for _, w in series) - min(w for _, w in series)
              for label, series in result.timelines.items()}
    assert swings["POLARIS"] >= swings["Conservative"] - 2.0
