"""Section 4: empirical verification of the competitive analysis."""

import pytest

from repro.harness import figures


def test_theory_competitive(benchmark, archive):
    result = benchmark.pedantic(figures.theory_competitive,
                                kwargs=dict(trials=8, jobs=12),
                                iterations=1, rounds=1)
    archive("theory_competitive", result.render())

    alpha = result.alpha

    # Theorem 4.3: on agreeable instances POLARIS behaves exactly like
    # OA --- energies match to numerical precision.
    for ratio in result.agreeable_polaris_vs_oa:
        assert ratio == pytest.approx(1.0, rel=1e-6)

    # Bansal et al.: OA is alpha^alpha-competitive against YDS.
    for ratio in result.oa_vs_yds:
        assert 1.0 - 1e-9 <= ratio <= alpha ** alpha

    # Corollary 4.6: POLARIS within (c*alpha)^alpha of YDS.
    for ratio, bound in result.polaris_vs_yds_arbitrary:
        assert 1.0 - 1e-9 <= ratio <= bound

    # Section 4.6 adversarial pair: the non-preemption penalty really
    # reaches the c^alpha regime (within its bound).
    ratio, c_alpha, bound = result.adversarial
    assert ratio > 0.2 * c_alpha
    assert ratio <= bound

    # Appendix C: the potential-function claims hold numerically along
    # real POLARIS/YDS trajectories.
    checked, held, jump, drift = result.appendix_c
    assert checked >= 2
    assert held
    assert jump < 1e-6
    assert drift < 1e-6
