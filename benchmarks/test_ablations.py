"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own component analysis (Figure 12), these sweep:

* the estimator percentile ``p`` (Section 3.2 discusses 95..99: lower
  p saves power more aggressively but risks more misses);
* the estimator feedback policy for mixed-frequency runs (naive
  attribute-to-dispatch-frequency vs the clean single-frequency-only
  default --- the optimistic-bias feedback loop);
* DVFS transition latency (the paper's direct-MSR path is sub-us; the
  sysfs path it rejects costs much more);
* C-state depth is covered in the unit tests (cpu/cstates).
"""

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

CELL = dict(benchmark="tpcc", load_fraction=0.6, slack=10.0, seed=17)


def _cfg(options, **overrides):
    merged = dict(CELL, workers=options.workers,
                  warmup_seconds=options.warmup_seconds,
                  test_seconds=options.test_seconds)
    merged.update(overrides)
    return ExperimentConfig(scheme="polaris", **merged)


def test_ablation_estimator_percentile(benchmark, figure_options, archive):
    """p=90 saves more power than p=99 but misses more deadlines."""
    def run():
        rows = {}
        for p in (90.0, 95.0, 99.0):
            result = run_experiment(_cfg(figure_options,
                                         estimator_percentile=p))
            rows[p] = (result.avg_power_watts, result.failure_rate)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    archive("ablation_percentile", format_table(
        ["percentile p", "power (W)", "failure rate"],
        [[p, f"{w:.1f}", f"{f:.3f}"] for p, (w, f) in sorted(rows.items())],
        title="Ablation: estimator percentile (TPC-C medium, slack 10)"))
    assert rows[90.0][0] <= rows[99.0][0] + 1.0   # more aggressive power
    assert rows[99.0][1] <= rows[90.0][1] + 0.01  # more conservative misses


def test_ablation_estimator_feedback(benchmark, figure_options, archive):
    """Attribution policy for mixed-frequency runs.

    Feeding mixed-frequency measurements back into the per-frequency
    windows makes the low-frequency estimates optimistic (a run
    dispatched at 1.2 GHz but bumped to 2.8 mid-way reads far shorter
    than a true 1.2 GHz run).  Measured outcome: the conservatism of
    the p95 window largely absorbs the bias --- both policies land in
    the same power/failure envelope, i.e. POLARIS is robust to this
    implementation choice.  The bench records both and pins the
    envelope.
    """
    def run():
        clean = run_experiment(_cfg(figure_options,
                                    estimator_mixed_freq_updates=False))
        polluted = run_experiment(_cfg(figure_options,
                                       estimator_mixed_freq_updates=True))
        return clean, polluted

    clean, polluted = benchmark.pedantic(run, iterations=1, rounds=1)
    archive("ablation_estimator_feedback", format_table(
        ["feedback policy", "power (W)", "failure rate"],
        [["single-frequency runs only",
          f"{clean.avg_power_watts:.1f}", f"{clean.failure_rate:.3f}"],
         ["all runs (dispatch-freq attribution)",
          f"{polluted.avg_power_watts:.1f}",
          f"{polluted.failure_rate:.3f}"]],
        title="Ablation: estimator feedback (TPC-C medium, slack 10)"))
    # Both policies stay inside the POLARIS operating envelope: well
    # below the 2.8 GHz baseline's ~170 W and near each other.
    for result in (clean, polluted):
        assert result.avg_power_watts < 160.0
        assert result.failure_rate < 0.30
    assert abs(polluted.failure_rate - clean.failure_rate) < 0.06
    assert abs(polluted.avg_power_watts - clean.avg_power_watts) < 10.0


def test_ablation_transition_latency(benchmark, figure_options, archive):
    """POLARIS switches frequency on every arrival/completion, so slow
    switching paths (the sysfs route the paper rejects, ~50+ us) erode
    its advantage; the MSR path (~0) is essentially free."""
    def run():
        rows = {}
        for latency in (0.0, 20e-6, 200e-6):
            result = run_experiment(_cfg(figure_options,
                                         transition_latency=latency))
            rows[latency] = (result.avg_power_watts, result.failure_rate)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    archive("ablation_transition_latency", format_table(
        ["switch latency", "power (W)", "failure rate"],
        [[f"{latency * 1e6:.0f} us", f"{w:.1f}", f"{f:.3f}"]
         for latency, (w, f) in sorted(rows.items())],
        title="Ablation: DVFS transition latency (TPC-C medium, slack 10)"))
    # 20 us barely matters; 200 us visibly hurts deadlines.
    assert rows[20e-6][1] < rows[0.0][1] + 0.03
    assert rows[200e-6][1] >= rows[0.0][1] - 0.01


def test_ablation_window_size(benchmark, figure_options, archive):
    """Sliding-window size S: small windows are noisy, huge ones adapt
    slowly; the paper's S=1000 sits on the flat part of the curve."""
    def run():
        rows = {}
        for window in (50, 1000):
            result = run_experiment(_cfg(figure_options,
                                         estimator_window=window))
            rows[window] = (result.avg_power_watts, result.failure_rate)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    archive("ablation_window_size", format_table(
        ["window S", "power (W)", "failure rate"],
        [[s, f"{w:.1f}", f"{f:.3f}"] for s, (w, f) in sorted(rows.items())],
        title="Ablation: estimator window size (TPC-C medium, slack 10)"))
    # Both settings must stay in the POLARIS operating envelope.
    for power, failure in rows.values():
        assert power < 165.0
        assert failure < 0.35
