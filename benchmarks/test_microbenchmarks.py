"""Micro-benchmarks of the hot paths (true pytest-benchmark timing).

Not paper figures --- these keep the substrate honest: the simulator,
scheduler, estimator, and storage engine must be fast enough that the
figure benches run in minutes.
"""

import random
import time

from repro.core.estimator import (
    ExecutionTimeEstimator, ListSlidingWindowPercentile,
    SlidingWindowPercentile,
)
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request
from repro.core.workload import Workload
from repro.db.storage.btree import BPlusTree
from repro.sim.engine import Simulator

FREQS = (1.2, 1.6, 2.0, 2.4, 2.8)


def test_bench_event_loop_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10000:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10000


def _event_loop_ticks(sanitize, ticks=10000):
    sim = Simulator(sanitize=sanitize)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < ticks:
            sim.schedule(1e-6, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count[0]


def test_bench_simsan_off_is_noop(benchmark, monkeypatch):
    """With the sanitizer off, the hooks must be dead branches.

    Timing comparisons are noisy, so the no-op claim is proven
    deterministically: count sanitize_check invocations.  Zero with the
    sanitizer off, nonzero with it on --- the only disabled-mode cost
    left is one pre-resolved boolean test per event.
    """
    calls = []
    original = Simulator.sanitize_check

    def counting(self):
        calls.append(1)
        return original(self)

    monkeypatch.setattr(Simulator, "sanitize_check", counting)
    assert benchmark(_event_loop_ticks, False) == 10000
    assert calls == []  # no hook ever fired while disabled
    _event_loop_ticks(True)
    assert calls  # and they do fire when enabled


def test_bench_simsan_on_overhead_recorded(benchmark):
    """Measure the sanitizer's enabled overhead and log it to the bench
    trajectory (``REPRO_BENCH_FILE``, default ``BENCH_harness.json``) so
    the cost of running figures under ``REPRO_SIMSAN=1`` is tracked
    PR-over-PR."""
    from repro.harness.profiling import (
        TimingReport, append_trajectory, load_trajectory, perf_clock,
    )

    def best_of(sanitize, repeats=3):
        _event_loop_ticks(sanitize)  # warm
        best = float("inf")
        for _ in range(repeats):
            start = perf_clock()
            _event_loop_ticks(sanitize)
            best = min(best, perf_clock() - start)
        return best

    off = best_of(False)
    on = best_of(True)
    assert benchmark(_event_loop_ticks, True) == 10000
    # Per-event cost is one comparison; the O(heap) sweep runs once per
    # run() and per compaction.  Generous bound: catches only a hook
    # accidentally landing on the per-event path.
    assert on < off * 5, f"simsan on {on:.4f}s vs off {off:.4f}s"

    report = TimingReport(name="simsan-overhead", jobs=1)
    report.phases["simsan_off"] = off
    report.phases["simsan_on"] = on
    report.phases["overhead_ratio"] = on / off
    append_trajectory(report)
    recorded = load_trajectory()
    assert recorded[-1]["name"] == "simsan-overhead"
    assert "simsan_on" in recorded[-1]["phases"]


def _traced_event_loop_ticks(tracer, ticks=10000):
    sim = Simulator(tracer=tracer)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < ticks:
            sim.schedule(1e-6, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count[0]


def test_bench_trace_off_is_noop(benchmark, monkeypatch):
    """Disabled tracing must cost the event loop nothing.

    Like the simsan bench, the claim is proven deterministically rather
    than by noisy timing: the engine only touches the tracer at run()
    boundaries, never per event.  Disabled, zero Tracer.instant calls
    fire; enabled, exactly two per run() (begin+end) regardless of tick
    count --- so the per-event overhead is not merely under the 1%
    budget, it is structurally zero.
    """
    from repro.obs.trace import NULL_TRACER, Tracer

    calls = []
    original = Tracer.instant

    def counting(self, *args, **kwargs):
        calls.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Tracer, "instant", counting)
    assert _traced_event_loop_ticks(NULL_TRACER, ticks=10000) == 10000
    assert calls == []  # no hook ever fired while disabled
    assert len(NULL_TRACER.events) == 0  # and disabled records nothing

    enabled = Tracer()
    _traced_event_loop_ticks(enabled, ticks=100)
    first = len(calls)
    _traced_event_loop_ticks(enabled, ticks=10000)
    assert first == 2  # run:begin + run:end only
    assert len(calls) - first == 2  # constant per run(), not per event

    assert benchmark(_traced_event_loop_ticks, NULL_TRACER) == 10000


def test_bench_trace_overhead_recorded(benchmark, monkeypatch):
    """Measure disabled-tracing overhead on the event loop and log it to
    the bench trajectory (``BENCH_harness.json``).  The acceptance bar
    is <=1%; the structural proof above guarantees it, the timing here
    documents it PR-over-PR (with a noise allowance on the assert, since
    best-of wall timings on a ~10ms loop still jitter)."""
    from repro.harness.profiling import (
        TimingReport, append_trajectory, load_trajectory, perf_clock,
    )
    from repro.obs.trace import NULL_TRACER, TRACE_ENV, Tracer

    monkeypatch.delenv(TRACE_ENV, raising=False)

    def best_of(tracer, repeats=5):
        _traced_event_loop_ticks(tracer)  # warm
        best = float("inf")
        for _ in range(repeats):
            start = perf_clock()
            _traced_event_loop_ticks(tracer)
            best = min(best, perf_clock() - start)
        return best

    plain = best_of(None)  # resolve_tracer(None) with REPRO_TRACE unset
    off = best_of(NULL_TRACER)
    on = best_of(Tracer())
    assert benchmark(_traced_event_loop_ticks, NULL_TRACER) == 10000
    # off and plain run byte-identical code; on adds two constant-time
    # instants per run().  Bound generously against timer jitter --- the
    # deterministic no-op test is the real <=1% guarantee.
    assert off < plain * 1.25, f"trace off {off:.4f}s vs plain {plain:.4f}s"
    assert on < plain * 1.25, f"trace on {on:.4f}s vs plain {plain:.4f}s"

    report = TimingReport(name="trace-overhead", jobs=1)
    report.phases["trace_plain"] = plain
    report.phases["trace_off"] = off
    report.phases["trace_on"] = on
    report.phases["overhead_ratio"] = off / plain
    append_trajectory(report)
    recorded = load_trajectory()
    assert recorded[-1]["name"] == "trace-overhead"
    assert "overhead_ratio" in recorded[-1]["phases"]


def test_bench_percentile_tracker_observe(benchmark):
    tracker = SlidingWindowPercentile(window=1000, percentile=95)
    rng = random.Random(0)
    values = [rng.lognormvariate(0, 0.8) for _ in range(5000)]

    def run():
        for v in values:
            tracker.observe(v)
        return tracker.value()

    assert benchmark(run) > 0


def test_bench_percentile_tracker_observe_value_mix(benchmark):
    """The estimator's real duty cycle: the scheduler calls estimate()
    (= value()) several times per observe() while picking a frequency.
    The chunked tracker with its memoized value() must beat — and must
    never fall meaningfully behind — the plain-list implementation it
    replaced at the paper's S=1000 window."""
    rng = random.Random(0)
    values = [rng.lognormvariate(0, 0.8) for _ in range(4000)]

    def mixed(tracker):
        total = 0.0
        for v in values:
            tracker.observe(v)
            for _ in range(5):
                total += tracker.value()
        return total

    def timed(factory):
        tracker = factory(window=1000, percentile=95)
        mixed(tracker)  # warm
        best = float("inf")
        for _ in range(3):
            tracker = factory(window=1000, percentile=95)
            start = time.perf_counter()
            mixed(tracker)
            best = min(best, time.perf_counter() - start)
        return best

    chunked_result = benchmark(
        lambda: mixed(SlidingWindowPercentile(window=1000, percentile=95)))
    assert chunked_result > 0

    chunked_best = timed(SlidingWindowPercentile)
    list_best = timed(ListSlidingWindowPercentile)
    # Generous noise allowance; in practice chunked wins ~20% here.
    assert chunked_best <= list_best * 1.25, (
        f"chunked {chunked_best:.4f}s vs list {list_best:.4f}s")

    # Same inputs, bit-identical percentile outputs.
    a = SlidingWindowPercentile(window=1000, percentile=95)
    b = ListSlidingWindowPercentile(window=1000, percentile=95)
    for v in values:
        a.observe(v)
        b.observe(v)
        assert a.value() == b.value()


def test_bench_select_frequency(benchmark):
    estimator = ExecutionTimeEstimator()
    workload = Workload("w", 0.050)
    for freq in FREQS:
        estimator.prime("w", freq, 1e-3 * 2.8 / freq, count=10)
    scheduler = PolarisScheduler(FREQS, estimator)
    rng = random.Random(1)
    for _ in range(16):
        scheduler.enqueue(Request(workload, "w", rng.random() * 1e-3, 1.0))
    running = Request(workload, "w", 0.0, 1.0)

    result = benchmark(scheduler.select_frequency, 1e-3, running, 0.5e-3)
    assert result in FREQS


def test_bench_btree_insert_lookup(benchmark):
    rng = random.Random(2)
    keys = [rng.randrange(1 << 30) for _ in range(2000)]

    def run():
        tree = BPlusTree()
        for key in keys:
            tree.insert(key, key)
        hits = sum(1 for key in keys if tree.get(key) == key)
        return hits

    assert benchmark(run) == len(set(keys)) + (len(keys) - len(set(keys)))


def test_bench_edf_queue_churn(benchmark):
    from repro.db.queues import EdfQueue
    workload = Workload("w", 0.05)
    rng = random.Random(3)
    arrivals = [rng.random() for _ in range(1000)]

    def run():
        queue = EdfQueue()
        for arrival in arrivals:
            queue.push(Request(workload, "w", arrival, 1.0))
        popped = 0
        while queue.pop() is not None:
            popped += 1
        return popped

    assert benchmark(run) == 1000


class _PopZeroEdfQueue:
    """The pre-head-pointer EdfQueue (two sorted lists, ``pop(0)``),
    kept as the comparison baseline for the bench below."""

    def __init__(self):
        import bisect
        self._bisect = bisect
        self._keys = []
        self._items = []

    def push(self, request):
        key = (request.deadline, request.request_id)
        idx = self._bisect.bisect_left(self._keys, key)
        self._keys.insert(idx, key)
        self._items.insert(idx, request)

    def pop(self):
        if not self._items:
            return None
        self._keys.pop(0)
        return self._items.pop(0)


def test_bench_edf_pop_headpointer_vs_popzero(benchmark):
    """The head-pointer pop is amortized O(1) where ``pop(0)`` memmoves
    the whole backing list; at deep-backlog churn (the overload regimes
    of Figures 7/9, where EDF queues grow into the thousands) the win is
    asymptotic.  Recorded to the bench trajectory (``BENCH_harness.json``)
    so the gap is tracked PR-over-PR."""
    from repro.db.queues import EdfQueue
    from repro.harness.profiling import (
        TimingReport, append_trajectory, load_trajectory, perf_clock,
    )

    workload = Workload("w", 0.05)
    depth = 16000
    # Arrival-ordered requests of one workload class: deadlines are
    # monotone, so every push is an append and the queue's cost is all
    # in pop --- the server's actual backlog pattern, and exactly where
    # ``pop(0)`` degenerates.
    requests = [Request(workload, "w", float(i), 1.0)
                for i in range(depth)]

    def churn(factory):
        queue = factory()
        for request in requests:
            queue.push(request)
        popped = 0
        while queue.pop() is not None:
            popped += 1
        return popped

    def best_of(factory, repeats=3):
        churn(factory)  # warm
        best = float("inf")
        for _ in range(repeats):
            start = perf_clock()
            churn(factory)
            best = min(best, perf_clock() - start)
        return best

    assert churn(EdfQueue) == churn(_PopZeroEdfQueue) == depth

    fast = best_of(EdfQueue)
    slow = best_of(_PopZeroEdfQueue)
    assert benchmark(churn, EdfQueue) == depth
    # At depth 16000 the pop(0) memmoves dominate; the head-pointer
    # variant wins by multiples.  Require a clear margin, not parity.
    assert fast < slow * 0.5, (
        f"head-pointer {fast:.4f}s vs pop(0) {slow:.4f}s")

    report = TimingReport(name="edf-pop-headpointer", jobs=1)
    report.phases["headpointer"] = fast
    report.phases["popzero"] = slow
    report.phases["speedup"] = slow / fast
    append_trajectory(report)
    recorded = load_trajectory()
    assert recorded[-1]["name"] == "edf-pop-headpointer"
    assert recorded[-1]["phases"]["speedup"] > 1.0


def test_bench_calendar_vs_heap_event_queue(benchmark):
    """The calendar queue's near-O(1) push/pop vs the binary heap's
    O(log n), at a server-shaped backlog (~4000 pending timers, every
    fired event scheduling a successor).  Both engines produce the same
    fire count by construction (the oracle-equivalence suite proves
    order equality); here only the clock differs.  Recorded to the
    bench trajectory (``BENCH_harness.json``) so the gap is tracked
    PR-over-PR."""
    from repro.harness.profiling import (
        TimingReport, append_trajectory, load_trajectory, perf_clock,
    )

    total = 200_000
    pending = 4000

    def churn(queue_kind):
        sim = Simulator(queue=queue_kind)
        rand = random.Random(7).random
        schedule = sim.schedule
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < total:
                schedule(rand() * 1e-3, tick)

        for _ in range(pending):
            schedule(rand() * 1e-3, tick)
        sim.run()
        return count[0]

    def best_of(queue_kind, repeats=3):
        churn(queue_kind)  # warm
        best = float("inf")
        for _ in range(repeats):
            start = perf_clock()
            churn(queue_kind)
            best = min(best, perf_clock() - start)
        return best

    # Every seed event and every chained tick fires once; chaining
    # stops at ``total``, so the drain adds the other pending - 1.
    fires = total + pending - 1
    assert churn("calendar") == churn("heap") == fires

    fast = best_of("calendar")
    slow = best_of("heap")
    assert benchmark(churn, "calendar") == fires
    # Locally the calendar queue wins ~1.7x at this depth; require a
    # clear margin, not parity, while leaving room for noisy runners.
    assert fast < slow * 0.8, (
        f"calendar {fast:.4f}s vs heap {slow:.4f}s")

    report = TimingReport(name="engine-calendar-queue", jobs=1)
    report.phases["calendar"] = fast
    report.phases["heap"] = slow
    report.phases["speedup"] = slow / fast
    append_trajectory(report)
    recorded = load_trajectory()
    assert recorded[-1]["name"] == "engine-calendar-queue"
    assert recorded[-1]["phases"]["speedup"] > 1.0


def test_bench_reprolint_full_tree_recorded(benchmark):
    """The whole-program analyzer over the shipped tree, phase by phase.

    CI runs reprolint on every push with a 10 s wall budget; this bench
    keeps a trajectory of where that budget goes (project load vs the
    unit and flow analyses) so a slowdown is attributable, not just
    detected.  The tree itself must analyze clean --- a finding here
    means the baseline gate in the lint job is about to fail too.
    """
    from pathlib import Path

    from repro.analysis.callgraph import CallGraph
    from repro.analysis.flows import FlowAnalysis
    from repro.analysis.project import Project
    from repro.analysis.units import UnitAnalysis
    from repro.harness.profiling import (
        TimingReport, append_trajectory, load_trajectory, perf_clock,
    )

    src = Path(__file__).resolve().parent.parent / "src"

    def analyze():
        project = Project.load([src])
        findings = UnitAnalysis(project).run()
        findings += FlowAnalysis(project, CallGraph(project)).run()
        return project, findings

    start = perf_clock()
    project = Project.load([src])
    load_s = perf_clock() - start

    start = perf_clock()
    unit_findings = UnitAnalysis(project).run()
    units_s = perf_clock() - start

    start = perf_clock()
    graph = CallGraph(project)
    flow_findings = FlowAnalysis(project, graph).run()
    flows_s = perf_clock() - start

    _, findings = benchmark(analyze)
    assert findings == unit_findings + flow_findings == []

    total_s = load_s + units_s + flows_s
    assert total_s < 10.0, (
        f"analyzer took {total_s:.2f}s; the CI budget is 10s")

    report = TimingReport(name="reprolint-analyzer", jobs=1)
    report.phases["project_load"] = load_s
    report.phases["unit_analysis"] = units_s
    report.phases["flow_analysis"] = flows_s
    report.phases["total"] = total_s
    report.phases["modules"] = float(len(project.modules))
    append_trajectory(report)
    recorded = load_trajectory()
    assert recorded[-1]["name"] == "reprolint-analyzer"
    assert recorded[-1]["phases"]["total"] < 10.0


def test_bench_fleet_events_recorded(benchmark):
    """Fleet-cell simulated-events/sec, logged to the bench trajectory.

    A fleet cell multiplies the per-server hot paths by the node count
    and layers the router and elastic controller on top; this bench
    keeps the aggregate engine rate visible PR-over-PR so a regression
    in any layer shows up as a drop in events/sec, attributable via the
    recorded event and wall-clock phases.
    """
    import random as _random

    from repro.fleet import FleetConfig
    from repro.fleet.experiment import run_fleet_experiment
    from repro.harness import ExperimentConfig
    from repro.harness.profiling import (
        TimingReport, append_trajectory, load_trajectory, perf_clock,
    )
    from repro.workloads.traces import normalize, synthesize_diurnal_trace

    trace = normalize(synthesize_diurnal_trace(
        8, _random.Random(7), peak_rate_scale=1000.0))
    config = ExperimentConfig(
        benchmark="tpcc", scheme="polaris", slack=60.0,
        warmup_seconds=0.3, test_seconds=float(len(trace)),
        drain_limit_seconds=5.0, seed=11, load_trace=trace,
        trace_low_fraction=0.1, trace_high_fraction=0.4,
        fleet=FleetConfig(shards=2, replicas_per_shard=1,
                          node_workers=2))

    def cell():
        return run_fleet_experiment(config)

    warm = cell()
    assert warm.completed > 0 and warm.sim_events > 0

    best_wall = float("inf")
    for _ in range(3):
        start = perf_clock()
        result = cell()
        best_wall = min(best_wall, perf_clock() - start)
    assert benchmark(cell).sim_events == result.sim_events

    rate = result.sim_events / best_wall
    report = TimingReport(name="fleet-smoke", jobs=1)
    report.phases["sim_events"] = float(result.sim_events)
    report.phases["wall_seconds"] = best_wall
    report.phases["events_per_sec"] = rate
    append_trajectory(report)
    recorded = load_trajectory()
    assert recorded[-1]["name"] == "fleet-smoke"
    assert recorded[-1]["phases"]["events_per_sec"] > 1000.0
