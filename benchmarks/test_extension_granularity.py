"""Extension bench: the cost of coarse DVFS granularity.

POLARIS's per-core SetProcessorFreq assumes each core owns its P-state
register, but the paper's own two-socket Xeon testbed --- and most
deployed parts --- share frequency domains at module or package scope.
This bench re-runs the Figure 6 setting with all cores of a socket
coupled into one domain under the Linux cpufreq max-of-votes rule
(plus a 50 us shared-PLL switch stall) and records the findings:

* per-socket POLARIS draws at least as much power as per-core POLARIS
  (at every slack) at an equal-or-worse miss ratio wherever per-core
  POLARIS meets its deadlines --- one urgent transaction raises all
  eight cores of its package, so the deadline-aware savings erode;
* OnDemand pays the largest coupling cost: its bursty per-core jumps
  to max rarely align, so under max-of-votes some core is almost
  always holding the whole package high;
* Conservative barely moves: at medium load it never leaves 2.8 GHz
  anyway (the paper's Section 6.3 observation), so coupling its
  identical votes changes nothing;
* in the overload cells (slack=10) the coupled domain degenerates
  into static-2.8 --- fewer misses, much more power --- which is the
  honest trade coarse DVFS offers under pressure.
"""

from repro.harness import figures


def test_extension_granularity(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.granularity_figure,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("extension_granularity", result.render())

    for label in ("POLARIS", "OnDemand", "Conservative"):
        assert (label, "per-core") in result.series
        assert (label, "per-socket") in result.series

    # Max-of-votes only ever raises member frequencies: the coarse
    # domain cannot draw less power than per-core control --- at every
    # slack, not just on average.
    fine_power = result.power("POLARIS", "per-core")
    coarse_power = result.power("POLARIS", "per-socket")
    assert all(c >= f for f, c in zip(fine_power, coarse_power))
    assert result.power_gap("POLARIS") > 0.0

    # At the feasible operating points (per-core POLARIS meets its
    # deadlines, <2% misses --- where the paper's claims live) the
    # extra power buys nothing: the per-socket miss ratio is equal or
    # worse, switch stalls eating the surplus-speed headroom.  The
    # overload cells (slack=10, ~14% misses either way) are excluded:
    # there a domain pegged at max genuinely misses less, by
    # degenerating into static-2.8 and paying its power bill.
    fine_fail = result.failure("POLARIS", "per-core")
    coarse_fail = result.failure("POLARIS", "per-socket")
    feasible = [(f, c) for f, c in zip(fine_fail, coarse_fail) if f < 0.02]
    assert feasible, "no feasible slack cells in the sweep"
    assert all(c >= f - 0.002 for f, c in feasible)
