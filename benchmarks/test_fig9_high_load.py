"""Figure 9: TPC-C high load (90% of peak).

Shape claims (Section 6.3): little room for power optimization ---
POLARIS and OnDemand shave only ~10 W off the peak-frequency draw, and
everyone misses many deadlines at tight slack (requests transiently
arrive faster than the system can absorb even at peak frequency), with
POLARIS missing the fewest.
"""

from repro.harness import figures


def test_fig9_high_load(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.fig9_tpcc_high,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("fig9_high_load", result.render())

    polaris_p = result.power("POLARIS")
    static28_p = result.power("2.8 GHz")
    ondemand_p = result.power("OnDemand")

    # Savings shrink to roughly 10 W (paper: "only by about 10 watts").
    assert all(3 < s - p < 20 for s, p in zip(static28_p, polaris_p))
    assert all(2 < s - o < 15 for s, o in zip(static28_p, ondemand_p))

    # Tight slack: everyone fails a lot; POLARIS fails least.
    tight = {label: result.failure(label)[0] for label in result.series}
    assert tight["2.8 GHz"] > 0.25
    assert tight["POLARIS"] < tight["2.8 GHz"]
    assert tight["POLARIS"] < tight["OnDemand"]

    # Loose slack: POLARIS exploits its deadline-awareness to recover
    # almost completely while still saving power.
    loose = {label: result.failure(label)[-1] for label in result.series}
    assert loose["POLARIS"] < 0.05
    assert loose["POLARIS"] <= loose["2.8 GHz"]
