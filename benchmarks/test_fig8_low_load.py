"""Figure 8: TPC-C low load (30% of peak).

Shape claims (Section 6.3): POLARIS saves ~40 W relative to peak
frequency; Conservative achieves the *same* savings but at
significantly higher miss rates when slack is tight; OnDemand sits in
between and is dominated by POLARIS.  This is where the two Linux
governors swap roles relative to medium load.
"""

from repro.harness import figures


def test_fig8_low_load(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.fig8_tpcc_low,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("fig8_low_load", result.render())

    polaris_p = result.power("POLARIS")
    static28_p = result.power("2.8 GHz")
    conservative_p = result.power("Conservative")
    ondemand_p = result.power("OnDemand")

    # ~40 W savings for POLARIS vs the 2.8 GHz baseline.
    assert all(30 < s - p < 55 for s, p in zip(static28_p, polaris_p))

    # Conservative matches POLARIS's savings at low load...
    assert all(abs(c - p) < 8 for c, p in zip(conservative_p, polaris_p))

    # ...but misses far more deadlines at tight slack, and OnDemand is
    # dominated by POLARIS (the paper's role-switch observation).
    tight = {label: result.failure(label)[0] for label in result.series}
    assert tight["Conservative"] > 1.3 * tight["POLARIS"]
    assert tight["OnDemand"] > tight["POLARIS"]
    assert tight["Conservative"] > tight["2.8 GHz"]

    # OnDemand's power lies between POLARIS/Conservative and 2.8 GHz.
    assert all(p - 3 <= o <= s for p, o, s in
               zip(polaris_p, ondemand_p, static28_p))
