"""Section 5: SetProcessorFreq overhead vs queue length.

The prototype measures ~10 us per invocation at high load, one to two
orders of magnitude below mean transaction times.  Absolute cost here
depends on the host; the claims checked are the *scaling* (linear in
queue length, as the algorithm's O(|Q| x |F|) walk predicts) and that
realistic queue depths stay well under mean TPC-C execution times.
"""

from repro.harness import figures


def test_polaris_overhead(benchmark, archive):
    result = benchmark.pedantic(
        figures.polaris_overhead,
        kwargs=dict(queue_lengths=(0, 1, 4, 16, 64, 256), repeats=300),
        iterations=1, rounds=1)
    archive("polaris_overhead", result.render())

    micros = result.micros
    # Monotone growth with queue depth.
    assert micros[1] <= micros[16] <= micros[256]
    # Roughly linear: 16x the queue costs no more than ~40x (generous
    # slop for fixed costs and timer noise), at least 4x.
    assert 4 < micros[256] / micros[16] < 40
    # Realistic queue depths (<= 16 waiting transactions) cost far less
    # than the 1.2 ms mean TPC-C transaction: the scheduler's overhead
    # cannot eat its own power savings.
    assert micros[16] < 300.0
