"""Figure 6: TPC-C medium load --- the paper's headline comparison.

Shape claims checked (Section 6.2):

* running flat out (2.8 GHz) costs ~170 W; a static 2.4 GHz saves
  ~30 W but misses many more deadlines when slack is tight;
* Conservative behaves like the 2.8 GHz static governor ("rarely
  lowers frequency below 2.8 GHz");
* OnDemand saves power at the cost of more missed deadlines;
* POLARIS saves 30+ W *and* misses no more deadlines than 2.8 GHz at
  tight slack (roughly half of OnDemand's misses), with savings growing
  past 40 W as slack loosens.
"""

import pytest

from repro.harness import figures


def test_fig6_medium_load(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.fig6_tpcc_medium,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("fig6_medium_load", result.render())

    polaris_p = result.power("POLARIS")
    static28_p = result.power("2.8 GHz")
    static24_p = result.power("2.4 GHz")
    conservative_p = result.power("Conservative")
    ondemand_p = result.power("OnDemand")

    # Wall-power levels (paper: ~170 W at 2.8 GHz, ~30 W step to 2.4).
    assert all(160 < p < 180 for p in static28_p)
    assert all(25 < a - b < 40 for a, b in zip(static28_p, static24_p))

    # Conservative ~ 2.8 GHz static at medium load.
    assert all(abs(a - b) < 5 for a, b in zip(conservative_p, static28_p))

    # POLARIS saves ~20 W at tight slack (paper: 30+; see EXPERIMENTS.md
    # for the deviation note) and >30 W at loose slack.
    assert static28_p[0] - polaris_p[0] > 18
    assert static28_p[-1] - polaris_p[-1] > 30

    # OnDemand saves power but sits above POLARIS.
    assert all(s - o > 5 for s, o in zip(static28_p, ondemand_p))
    assert all(o > p for o, p in zip(ondemand_p, polaris_p))

    # Failure shape at tight slack (slack=10).
    tight = {label: result.failure(label)[0] for label in result.series}
    assert tight["POLARIS"] <= tight["2.8 GHz"] + 0.01
    assert tight["POLARIS"] < 0.65 * tight["OnDemand"]
    assert tight["2.4 GHz"] > 1.5 * tight["2.8 GHz"]

    # With loose slack everyone converges near zero, POLARIS included.
    loose = {label: result.failure(label)[-1] for label in result.series}
    assert loose["POLARIS"] < 0.01
    assert loose["2.8 GHz"] < 0.02
