"""Extension bench: admission control under overload (Section 1).

The paper's introduction names the DBMS's second lever over the OS:
it "can reorder requests, or reject low value requests when load is
high".  POLARIS-SHED exercises that lever: at arrival it rejects any
request whose deadline is already hopeless at the maximum frequency
(predicted queueing behind earlier-deadline work plus its own p95
execution time overshoots the deadline).

Measured trade-off at high load, tight slack:

* the *admitted* work becomes almost entirely on-time (late-completion
  rate drops several-fold) and power falls sharply --- no cycles are
  burned racing transactions that were going to be late anyway;
* the *total* failure rate (rejections count as misses) rises, because
  the p95-conservative predicate sheds marginal requests that plain
  POLARIS would sometimes have saved.

Admission control is a policy for when late answers are worthless; it
is not a free lunch on the paper's failure metric.
"""

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.report import format_table


def test_extension_admission_control(benchmark, figure_options, archive):
    def run():
        results = {}
        for scheme in ("polaris", "polaris-shed"):
            results[scheme] = run_experiment(ExperimentConfig(
                scheme=scheme, benchmark="tpcc", load_fraction=0.9,
                slack=10.0, workers=figure_options.workers,
                warmup_seconds=figure_options.warmup_seconds,
                test_seconds=figure_options.test_seconds,
                seed=figure_options.seed))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = []
    for scheme, result in results.items():
        late = result.missed - result.rejected
        late_rate = late / max(1, result.completed)
        rows.append([scheme, f"{result.avg_power_watts:.1f}",
                     f"{result.failure_rate:.3f}",
                     f"{result.rejected}", f"{late_rate:.3f}"])
    archive("extension_admission_control", format_table(
        ["scheme", "power (W)", "total failure", "rejected",
         "late rate among completed"],
        rows,
        title="Extension: admission control, TPC-C high load, slack 10"))

    polaris = results["polaris"]
    shed = results["polaris-shed"]
    # Plain POLARIS rejects nothing; SHED rejects under overload.
    assert polaris.rejected == 0
    assert shed.rejected > 0
    # Admitted work is dramatically more punctual...
    polaris_late_rate = (polaris.missed - polaris.rejected) \
        / max(1, polaris.completed)
    shed_late_rate = (shed.missed - shed.rejected) / max(1, shed.completed)
    assert shed_late_rate < 0.5 * polaris_late_rate
    # ...at visibly lower power.
    assert shed.avg_power_watts < polaris.avg_power_watts - 10.0
    # The honest cost: total failures (with rejects counted) don't drop.
    assert shed.failure_rate >= polaris.failure_rate - 0.05
