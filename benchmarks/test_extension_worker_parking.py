"""Extension bench: the paper's Section 8 future-work direction.

"By controlling how transactions are distributed to workers, we can
obtain additional power savings by allowing some workers (and their
cores) to idle and move into low-power C-states."

This bench sweeps routing policy x C-state ladder for POLARIS at low
load and records the findings of this reproduction:

* deep C-states save a further ~2-3 W under any routing;
* least-loaded (join-shortest-queue) routing dominates the paper's
  round-robin on BOTH power and failure rate;
* consolidating load onto few workers ("packing") is counterproductive
  under per-core DVFS: the convex power curve (f^alpha) makes many slow
  cores cheaper than few fast ones, so packing pays more power AND more
  misses.  The Section 8 intuition needs package-level idle states to
  pay off --- per-core C-states alone do not reward consolidation.
"""

from repro.harness import figures


def test_extension_worker_parking(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.extension_worker_parking,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("extension_worker_parking", result.render())
    rows = result.cells

    rr_c1 = rows[("rh-round-robin", "c1")]
    rr_deep = rows[("rh-round-robin", "deep")]
    ll_deep = rows[("least-loaded", "deep")]
    pack_deep = rows[("packing", "deep")]

    # Deep C-states save additional power under round-robin.
    assert rr_c1[0] - rr_deep[0] > 1.0
    # Least-loaded + deep dominates the paper's configuration.
    assert ll_deep[0] < rr_c1[0] - 2.0
    assert ll_deep[1] < rr_c1[1]
    # The negative result: packing beats neither on this power model.
    assert pack_deep[0] >= ll_deep[0]
    assert pack_deep[1] >= ll_deep[1]
