"""Figure 7: TPC-E at medium load, ten per-type workloads.

Shape claims (Section 6.2.1): POLARIS reduces power substantially
relative to peak frequency, with bigger savings at larger slack;
OnDemand fares better than on TPC-C but still consumes more power and
misses more deadlines than POLARIS.
"""

from repro.harness import figures


def test_fig7_tpce_medium(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.fig7_tpce_medium,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("fig7_tpce_medium", result.render())

    polaris_p = result.power("POLARIS")
    static28_p = result.power("2.8 GHz")
    ondemand_p = result.power("OnDemand")
    conservative_p = result.power("Conservative")

    # POLARIS saves ~30-40 W vs peak frequency.
    assert all(s - p > 18 for s, p in zip(static28_p, polaris_p))
    assert static28_p[-1] - polaris_p[-1] > 28

    # Conservative again shadows the static peak at medium load.
    assert all(abs(a - b) < 5 for a, b in zip(conservative_p, static28_p))

    # OnDemand: more power and more misses than POLARIS beyond the
    # tightest slack.
    assert all(o >= p - 1.0 for o, p in zip(ondemand_p, polaris_p))
    for i in range(1, len(result.slacks)):
        assert result.failure("OnDemand")[i] \
            >= result.failure("POLARIS")[i]

    # Failures decline monotonically with slack for every scheme.
    for label in result.series:
        failures = result.failure(label)
        assert all(a >= b - 0.02 for a, b in zip(failures, failures[1:]))
