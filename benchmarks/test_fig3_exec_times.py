"""Figure 3: TPC-C mean and P95 execution times at max/min frequency."""

import pytest

from repro.harness import figures
from repro.workloads.tpcc import FIGURE3_AT_1200MHZ, FIGURE3_CALIBRATION


def test_fig3_exec_times(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.fig3_exec_times,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("fig3_exec_times", result.render())

    for name, (_mix, mean_s, p95_s) in FIGURE3_CALIBRATION.items():
        m28, p28, m12, p12 = result.rows[name]
        # Measured 2.8 GHz stats must match the paper's table.
        assert m28 == pytest.approx(mean_s * 1e6, rel=0.12), name
        assert p28 == pytest.approx(p95_s * 1e6, rel=0.20), name
        # The 1.2 GHz column follows from pure 1/f scaling, as the
        # paper's measurements do (2.32-2.44x between the columns).
        assert m12 / m28 == pytest.approx(2.8 / 1.2, rel=0.10), name
        paper_m12, paper_p12 = FIGURE3_AT_1200MHZ[name]
        assert m12 == pytest.approx(paper_m12 * 1e6, rel=0.35), name
        assert p12 == pytest.approx(paper_p12 * 1e6, rel=0.35), name

    # Tail heaviness: P95 is 2.5-4.8x the mean overall (Section 3.2).
    combined_m, combined_p95, _, _ = result.rows["Combined"]
    assert 2.0 < combined_p95 / combined_m < 5.5
