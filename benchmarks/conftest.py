"""Benchmark-suite plumbing.

Every bench regenerates one of the paper's tables/figures, asserts the
*shape* claims the paper makes about it (who wins, by roughly what
factor, where crossovers fall), and archives the rendered rows/series
under ``benchmarks/results/`` --- so ``pytest benchmarks/
--benchmark-only`` leaves both the timing table and the reproduced
figure data behind.

Scale knobs: ``REPRO_BENCH_SCALE`` (multiplies measured-phase lengths)
and ``REPRO_BENCH_WORKERS`` (default 16, the paper's testbed).
"""

import pathlib

import pytest

from repro.harness.figures import FigureOptions

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _hermetic_harness_paths(tmp_path, monkeypatch):
    """Point the sweep cache and bench trajectory at a fresh tmp dir so
    bench timings measure real simulation (no cross-run cache hits) and
    the repo root stays clean."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.setenv("REPRO_BENCH_FILE", str(tmp_path / "bench.json"))


@pytest.fixture(scope="session")
def figure_options() -> FigureOptions:
    return FigureOptions.from_env()


@pytest.fixture(scope="session")
def archive():
    """Write a figure's rendered output to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _archive(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _archive
