"""Figure 11: per-workload performance for gold and silver tiers.

Shape claims (Section 6.5): the deadline-blind managers show a large
gap between gold (7.5 ms target) and silver (37.5 ms target) failure
rates --- gold fails much more because its target is tighter.  POLARIS
produces similar failure rates for both: gold far less likely to miss,
silver slightly more likely, at lower power.
"""

from repro.harness import figures


def test_fig11_differentiation(benchmark, figure_options, archive):
    result = benchmark.pedantic(figures.fig11_differentiation,
                                args=(figure_options,),
                                iterations=1, rounds=1)
    archive("fig11_differentiation", result.render())

    # Deadline-blind schemes: large gold-vs-silver gap.
    for label in ("2.8 GHz", "Conservative", "OnDemand"):
        assert result.gap(label) > 0.10, label

    # POLARIS equalizes the tiers: its gap is far smaller...
    polaris_gap = result.gap("POLARIS")
    assert polaris_gap < 0.6 * min(result.gap(label) for label in
                                   ("2.8 GHz", "Conservative", "OnDemand"))

    # ...its gold tier beats OnDemand's gold tier outright...
    assert result.failures[("POLARIS", "gold")] \
        < result.failures[("OnDemand", "gold")]

    # ...silver pays slightly (but only slightly) for it...
    assert result.failures[("POLARIS", "silver")] \
        >= result.failures[("2.8 GHz", "silver")]
    assert result.failures[("POLARIS", "silver")] < 0.15

    # ...and POLARIS still draws the least power.
    assert result.power["POLARIS"] == min(result.power.values())
