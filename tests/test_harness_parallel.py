"""Parallel sweep runner: equivalence, caching, key discipline."""

import dataclasses
import pickle

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.harness.figures import FigureOptions, slack_sweep
from repro.harness.parallel import (
    SweepCache, SweepRunner, code_version_salt, config_key, resolve_jobs,
    run_sweep,
)
from repro.harness.profiling import TimingReport, append_trajectory, load_trajectory

FAST = dict(workers=2, warmup_seconds=0.3, test_seconds=0.8, seed=5)


def small_grid():
    return [ExperimentConfig(scheme=scheme, slack=slack, **FAST)
            for scheme in ("polaris", "static-2.8")
            for slack in (10.0, 70.0)]


def comparable(result):
    """Every seed-deterministic field (drops host-dependent timing)."""
    return (result.scheme_label, result.avg_power_watts,
            result.failure_rate, result.offered, result.completed,
            result.missed, result.rejected, result.throughput,
            result.per_workload_failure, result.freq_residency,
            result.cpu_energy_joules, result.wall_energy_joules)


# ----------------------------------------------------------------------
# jobs resolution
# ----------------------------------------------------------------------
def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(2) == 2
    assert resolve_jobs() == 3
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs() >= 1


def test_resolve_jobs_rejects_nonpositive():
    with pytest.raises(ValueError):
        resolve_jobs(0)


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------
def test_config_key_stable_and_sensitive():
    a = ExperimentConfig(scheme="polaris", slack=10.0, **FAST)
    b = ExperimentConfig(scheme="polaris", slack=10.0, **FAST)
    assert config_key(a) == config_key(b)
    changed = dataclasses.replace(a, seed=a.seed + 1)
    assert config_key(changed) != config_key(a)
    # Every config field participates in the key.
    assert config_key(dataclasses.replace(a, slack=11.0)) != config_key(a)
    assert config_key(
        dataclasses.replace(a, routing="packing")) != config_key(a)


def test_config_key_salt_invalidates():
    """A code-version change must miss the old entries."""
    config = ExperimentConfig(scheme="polaris", slack=10.0, **FAST)
    assert config_key(config, salt="v1") != config_key(config, salt="v2")
    assert config_key(config) == config_key(config, code_version_salt())


def test_code_version_salt_is_memoized():
    assert code_version_salt() == code_version_salt()
    assert len(code_version_salt()) == 64


def test_config_key_salted_by_trace_env(monkeypatch):
    """REPRO_TRACE=1 changes results' observable side channel, so traced
    and untraced entries must not share cache keys."""
    from repro.obs.trace import TRACE_ENV
    config = ExperimentConfig(scheme="polaris", slack=10.0, **FAST)
    monkeypatch.delenv(TRACE_ENV, raising=False)
    untraced = config_key(config)
    monkeypatch.setenv(TRACE_ENV, "1")
    assert config_key(config) != untraced


# ----------------------------------------------------------------------
# cache store
# ----------------------------------------------------------------------
def test_cache_roundtrip_and_clear(tmp_path):
    cache = SweepCache(tmp_path / "c")
    config = ExperimentConfig(scheme="static-2.8", slack=40.0, **FAST)
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
    (result,) = runner.run([config])
    key = config_key(config)
    restored = cache.get(key)
    assert restored is not None
    assert comparable(restored) == comparable(result)
    assert cache.entry_count() == 1
    assert cache.clear() == 1
    assert cache.get(key) is None
    assert cache.entry_count() == 0


def test_cache_tolerates_corrupt_entry(tmp_path):
    cache = SweepCache(tmp_path / "c")
    config = ExperimentConfig(scheme="static-2.8", slack=40.0, **FAST)
    key = config_key(config)
    path = cache._path(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is None
    # 'g' is a pickle GET opcode whose operand parse raises ValueError,
    # a different failure family than UnpicklingError.
    path.write_bytes(b"garbage\n")
    assert cache.get(key) is None
    # A wrong-typed pickle is also a miss, not a crash.
    path.write_bytes(pickle.dumps({"nope": 1}))
    assert cache.get(key) is None
    # And the runner recovers by re-simulating.
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
    (result,) = runner.run([config])
    assert result.avg_power_watts > 0
    assert runner.stats.executed == 1


# ----------------------------------------------------------------------
# runner semantics
# ----------------------------------------------------------------------
def test_second_run_is_all_cache_hits(tmp_path):
    grid = small_grid()
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
    first = runner.run(grid)
    assert runner.stats.executed == len(grid)
    assert runner.stats.cache_hits == 0
    second = runner.run(grid)
    assert runner.stats.executed == 0
    assert runner.stats.cache_hits == len(grid)
    assert [comparable(r) for r in first] == [comparable(r) for r in second]


def test_changed_cell_only_reruns_that_cell(tmp_path):
    grid = small_grid()
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
    runner.run(grid)
    grid[2] = dataclasses.replace(grid[2], seed=99)
    runner.run(grid)
    assert runner.stats.cache_hits == len(grid) - 1
    assert runner.stats.executed == 1


def test_interrupted_sweep_resumes_from_partial_cache(tmp_path):
    """Cells are cached as they finish, not at sweep end, so an
    interrupted sweep resumes from what it already simulated."""
    grid = small_grid()
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
    calls = []
    original_put = runner.cache.put

    def put_then_die(key, result):
        original_put(key, result)
        calls.append(key)
        if len(calls) == 2:
            raise KeyboardInterrupt

    runner.cache.put = put_then_die
    with pytest.raises(KeyboardInterrupt):
        runner.run(grid)
    resumed = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
    resumed.run(grid)
    assert resumed.stats.cache_hits == 2
    assert resumed.stats.executed == 2


def test_traced_cells_bypass_cache(tmp_path):
    """A cell exporting trace artifacts must re-run every time: a cache
    hit would skip writing the files the user asked for."""
    config = dataclasses.replace(
        small_grid()[0],
        trace_path=str(tmp_path / "cell.trace.json"),
        trace_series_path=str(tmp_path / "cell.series.csv"))
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
    runner.run([config])
    assert runner.stats.executed == 1
    (tmp_path / "cell.trace.json").unlink()
    runner.run([config])
    assert runner.stats.executed == 1
    assert runner.stats.cache_hits == 0
    # The artifact was re-written on the second run too.
    assert (tmp_path / "cell.trace.json").exists()
    assert (tmp_path / "cell.series.csv").exists()
    # Untraced sibling cells still cache normally.
    plain = small_grid()[0]
    runner.run([plain])
    runner.run([plain])
    assert runner.stats.cache_hits == 1


def test_no_cache_mode_never_touches_disk(tmp_path):
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c", use_cache=False)
    runner.run(small_grid()[:1])
    assert not (tmp_path / "c").exists()


def test_parallel_matches_serial_cell_for_cell(tmp_path):
    """The Fig. 6-shaped equivalence the tentpole promises: a (scheme x
    slack) grid run with jobs=2 is value-identical to jobs=1."""
    grid = small_grid()
    serial = run_sweep(grid, jobs=1, use_cache=False)
    parallel = run_sweep(grid, jobs=2, use_cache=False)
    assert len(serial) == len(parallel) == len(grid)
    for s, p in zip(serial, parallel):
        assert comparable(s) == comparable(p)


def test_parallel_populates_cache_for_serial(tmp_path):
    """Cache entries are execution-mode agnostic."""
    grid = small_grid()
    run_sweep(grid, jobs=2, cache_dir=tmp_path / "c")
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
    runner.run(grid)
    assert runner.stats.cache_hits == len(grid)


def test_slack_sweep_parallel_render_identical(tmp_path):
    """Figure-level equivalence: rendered rows are byte-identical."""
    base = dict(workers=2, warmup_seconds=0.3, test_seconds=0.8,
                seed=5, slacks=(10, 70), use_cache=False)
    serial = slack_sweep("tpcc", 0.6, ("polaris", "static-2.8"),
                         FigureOptions(jobs=1, **base), "sweep")
    parallel = slack_sweep("tpcc", 0.6, ("polaris", "static-2.8"),
                           FigureOptions(jobs=2, **base), "sweep")
    assert serial.render() == parallel.render()
    assert serial.series == parallel.series


def test_runner_reports_cells(tmp_path):
    report = TimingReport("unit", jobs=1)
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c", report=report)
    grid = small_grid()[:2]
    runner.run(grid)
    runner.run(grid)
    assert len(report.cells) == 4
    assert report.cache_hits == 2
    assert report.cache_misses == 2
    executed = [c for c in report.cells if not c.cached]
    assert all(c.sim_events > 0 for c in executed)
    assert all(c.wall_seconds > 0 for c in executed)
    assert report.aggregate_events_per_sec() > 0
    assert "cells: 4" in report.render()


# ----------------------------------------------------------------------
# trajectory file
# ----------------------------------------------------------------------
def test_trajectory_appends(tmp_path):
    target = tmp_path / "bench.json"
    report = TimingReport("fig6", jobs=2)
    with report.phase("total"):
        pass
    append_trajectory(report, str(target))
    append_trajectory(report, str(target))
    runs = load_trajectory(str(target))
    assert len(runs) == 2
    assert runs[0]["name"] == "fig6"
    assert runs[0]["jobs"] == 2
    assert "wall_seconds" in runs[0]


def test_trajectory_survives_corrupt_file(tmp_path):
    target = tmp_path / "bench.json"
    target.write_text("{broken")
    report = TimingReport("fig6")
    append_trajectory(report, str(target))
    assert len(load_trajectory(str(target))) == 1
    assert load_trajectory(str(tmp_path / "missing.json")) == []


def test_cli_flags(tmp_path, monkeypatch):
    from repro.harness.cli import build_parser
    args = build_parser().parse_args(
        ["fig6", "--jobs", "4", "--no-cache", "--clear-cache",
         "--trace", str(tmp_path / "traces")])
    assert args.jobs == 4
    assert args.no_cache and args.clear_cache
    assert args.trace == str(tmp_path / "traces")


def test_slack_sweep_trace_dir_writes_per_cell_artifacts(tmp_path):
    """--trace DIR exports one Perfetto trace + series CSV per grid
    cell, named by a stable cell slug."""
    import os
    base = dict(workers=2, warmup_seconds=0.3, test_seconds=0.8,
                seed=5, slacks=(10,), use_cache=False)
    options = FigureOptions(jobs=1, trace_dir=str(tmp_path / "t"), **base)
    slack_sweep("tpcc", 0.6, ("polaris", "static-2.8"), options, "sweep")
    names = sorted(os.listdir(tmp_path / "t"))
    traces = [n for n in names if n.endswith(".trace.json")]
    assert len(traces) == 2
    assert any("polaris" in n for n in traces)
    assert any("static-2.8" in n for n in traces)
    assert sum(n.endswith(".series.csv") for n in names) == 2
    from repro.obs.export import validate_chrome_trace
    for name in traces:
        stats = validate_chrome_trace(str(tmp_path / "t" / name))
        assert stats["events"] > 0


# ----------------------------------------------------------------------
# persistent pool
# ----------------------------------------------------------------------
def test_shared_pool_reused_and_keyed_on_env(monkeypatch):
    from repro.harness import parallel as par
    par.shutdown_shared_pool()
    monkeypatch.delenv("REPRO_SIMSAN", raising=False)
    pool = par.shared_pool(2)
    try:
        # Same worker count, same env: the very same executor object.
        assert par.shared_pool(2) is pool
        # Flipping a snapshot-at-fork env var must rebuild the pool:
        # reused workers would otherwise simulate under stale settings.
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        rebuilt = par.shared_pool(2)
        assert rebuilt is not pool
        # A different worker count rebuilds too.
        monkeypatch.delenv("REPRO_SIMSAN")
        assert par.shared_pool(3) is not rebuilt
    finally:
        par.shutdown_shared_pool()
    # Shutdown is idempotent.
    par.shutdown_shared_pool()


def test_config_wire_roundtrip():
    from repro.harness.parallel import _config_to_wire
    config = ExperimentConfig(scheme="static-1.2", slack=10.0, **FAST)
    wire = _config_to_wire(config)
    # Only overridden fields cross the process boundary.
    assert set(wire) == {"scheme", "slack", "workers",
                         "warmup_seconds", "test_seconds", "seed"}
    assert ExperimentConfig(**wire) == config
    # Defaults round-trip to an empty payload.
    assert _config_to_wire(ExperimentConfig()) == {}


def test_broken_pool_degrades_to_serial(tmp_path, monkeypatch):
    """A poisoned executor must not fail the sweep: the runner discards
    the pool and re-runs the unfinished cells in-process."""
    from concurrent.futures.process import BrokenProcessPool
    from repro.harness import parallel as par

    def poisoned(workers):
        raise BrokenProcessPool("a worker died")

    monkeypatch.setattr(par, "shared_pool", poisoned)
    grid = small_grid()
    runner = SweepRunner(jobs=2, cache_dir=tmp_path / "c")
    degraded = runner.run(grid)
    assert runner.stats.executed == len(grid)
    serial = run_sweep(grid, jobs=1, use_cache=False)
    assert [comparable(r) for r in degraded] \
        == [comparable(r) for r in serial]


def test_broken_pool_reruns_only_unfinished(tmp_path, monkeypatch):
    """Cells that already landed before the pool broke are not re-run."""
    from concurrent.futures import Future
    from concurrent.futures.process import BrokenProcessPool
    from repro.harness import parallel as par

    class FlakyPool:
        """First chunk completes, every later chunk breaks."""

        def __init__(self):
            self.submissions = 0

        def submit(self, fn, wires):
            self.submissions += 1
            future = Future()
            if self.submissions == 1:
                future.set_result(fn(wires))
            else:
                future.set_exception(BrokenProcessPool("boom"))
            return future

    monkeypatch.setattr(par, "shared_pool", lambda jobs: FlakyPool())
    reruns = []
    real_run_cell = par._run_cell

    def counting_run_cell(config):
        reruns.append(config)
        return real_run_cell(config)

    monkeypatch.setattr(par, "_run_cell", counting_run_cell)
    grid = small_grid()
    runner = SweepRunner(jobs=2, cache_dir=tmp_path / "c")
    results = runner.run(grid)
    rerun_count = len(reruns)
    assert len(results) == len(grid)
    assert [comparable(r) for r in results] \
        == [comparable(r) for r in run_sweep(grid, jobs=1,
                                             use_cache=False)]
    # At least the first chunk landed through the pool, so the serial
    # fallback re-ran strictly fewer cells than the whole grid.
    assert rerun_count < len(grid)


# ----------------------------------------------------------------------
# events/sec accounting
# ----------------------------------------------------------------------
def test_events_per_sec_uses_sweep_wall_clock():
    """Parallel cells overlap in time; the throughput denominator must
    be the sweep wall clock, not the summed per-cell walls."""
    report = TimingReport("unit", jobs=4)
    # Four 1-second cells that ran concurrently inside a 1.2 s sweep.
    for i in range(4):
        report.record_cell(f"cell-{i}", cached=False, wall_seconds=1.0,
                           sim_events=1000)
    report.record_sweep(1.2)
    assert report.aggregate_events_per_sec() == pytest.approx(4000 / 1.2)
    # Without a recorded sweep (hand-fed report), fall back to the
    # serial denominator.
    fallback = TimingReport("unit", jobs=1)
    fallback.record_cell("cell", cached=False, wall_seconds=2.0,
                         sim_events=1000)
    assert fallback.aggregate_events_per_sec() == pytest.approx(500.0)


def test_runner_records_sweep_wall(tmp_path):
    report = TimingReport("unit", jobs=1)
    runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c", report=report)
    runner.run(small_grid()[:1])
    assert report.sweep_wall_seconds > 0
    before = report.sweep_wall_seconds
    runner.run(small_grid()[:1])  # cached sweep still accumulates
    assert report.sweep_wall_seconds > before
