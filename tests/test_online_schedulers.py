"""The arena's online schedulers: qOA, AVR-online, nonclairvoyant.

The agreement tests run each scheduler on single-core idealized
instances --- every job arrived, estimator primed so the inferred work
is exact, a dense (quasi-continuous) frequency grid, zero transition
latency --- and require the continuous target to match the
``repro.theory`` oracle and the selection to be its relation-L round.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.online import AvrScheduler, QoaScheduler
from repro.core.request import Request
from repro.core.workload import Workload
from repro.cpu.pstates import POLARIS_FREQUENCIES
from repro.governors.nonclairvoyant import NonclairvoyantScheduler
from repro.theory.avr import avr_speed_profile
from repro.theory.model import Job, ProblemInstance
from repro.theory.oa import oa_schedule

#: Quasi-continuous grid: 0.05 GHz steps up to 12 GHz.
DENSE_GRID = tuple(round(0.05 * i, 2) for i in range(1, 241))


def _make_request(job: Job) -> Request:
    workload = Workload(name=f"j{job.job_id}",
                        latency_target=job.deadline - job.arrival)
    return Request(workload, txn_type="txn", arrival_time=job.arrival,
                   work=job.work, deadline=job.deadline)


def _primed_scheduler(cls, instance: ProblemInstance, grid=DENSE_GRID):
    """Scheduler with every job queued and the estimator primed so
    ``estimate(c, f_max) * f_max`` equals the job's work exactly."""
    estimator = ExecutionTimeEstimator()
    f_max = grid[-1]
    scheduler = cls(grid, estimator)
    for job in instance.jobs:
        estimator.prime(f"j{job.job_id}", f_max, job.work / f_max)
        scheduler.enqueue(_make_request(job))
    return scheduler


def _jobs_at_zero(seed: int, n: int):
    rng = random.Random(seed)
    return ProblemInstance([
        Job(i + 1, 0.0, rng.uniform(1.0, 20.0), rng.uniform(0.5, 5.0))
        for i in range(n)])


# ----------------------------------------------------------------------
# Oracle agreement on idealized instances
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=8))
def test_qoa_agrees_with_oa_oracle(seed, n):
    instance = _jobs_at_zero(seed, n)
    scheduler = _primed_scheduler(QoaScheduler, instance)
    target = scheduler._target_speed(0.0, None, 0.0)
    # All jobs share arrival 0, so OA's first executed segment runs at
    # the first staircase group's density --- the speed OA commits to
    # before any replan, which is what the online scheduler must match.
    oracle = oa_schedule(instance).segments[0].speed
    assert target == pytest.approx(oracle, rel=1e-9)
    selected = scheduler.select_frequency(0.0, None)
    assert selected == scheduler._relation_l(target)
    assert selected >= min(target, DENSE_GRID[-1]) - 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=8))
def test_avr_online_agrees_with_avr_oracle(seed, n):
    instance = _jobs_at_zero(seed, n)
    scheduler = _primed_scheduler(AvrScheduler, instance)
    target = scheduler._target_speed(0.0, None, 0.0)
    # First profile slot starts at the shared arrival: its speed is the
    # full density sum, exactly the accumulator's target.
    oracle = avr_speed_profile(instance)[0][2]
    assert target == pytest.approx(oracle, rel=1e-9)
    selected = scheduler.select_frequency(0.0, None)
    assert selected == scheduler._relation_l(target)


# ----------------------------------------------------------------------
# Discrete-grid behaviour (the paper's P-state ladder)
# ----------------------------------------------------------------------
def test_qoa_relation_l_on_pstate_grid():
    instance = ProblemInstance([Job(1, 0.0, 0.5, 1.1)])  # density 2.2 GHz
    scheduler = _primed_scheduler(QoaScheduler, instance,
                                  grid=POLARIS_FREQUENCIES)
    assert scheduler.select_frequency(0.0, None) == 2.4


def test_qoa_exact_grid_density_does_not_round_up():
    instance = ProblemInstance([Job(1, 0.0, 0.5, 1.0)])  # density 2.0 GHz
    scheduler = _primed_scheduler(QoaScheduler, instance,
                                  grid=POLARIS_FREQUENCIES)
    assert scheduler.select_frequency(0.0, None) == 2.0


def test_online_schedulers_run_flat_out_when_late():
    instance = ProblemInstance([Job(1, 0.0, 1.0, 0.1)])
    for cls in (QoaScheduler, AvrScheduler):
        scheduler = _primed_scheduler(cls, instance,
                                      grid=POLARIS_FREQUENCIES)
        # Past the deadline the plan's density is infinite: line-14
        # behaviour, run flat out.
        assert scheduler.select_frequency(2.0, None) == \
            POLARIS_FREQUENCIES[-1]


def test_online_schedulers_idle_at_floor_and_panic_at_max():
    estimator = ExecutionTimeEstimator()
    for cls in (QoaScheduler, AvrScheduler, NonclairvoyantScheduler):
        scheduler = cls(POLARIS_FREQUENCIES, estimator)
        assert scheduler.select_frequency(0.0, None) == \
            POLARIS_FREQUENCIES[0]
        scheduler.panic = True
        assert scheduler.select_frequency(0.0, None) == \
            POLARIS_FREQUENCIES[-1]


# ----------------------------------------------------------------------
# Nonclairvoyant: estimator-free by construction
# ----------------------------------------------------------------------
def test_nonclairvoyant_scales_with_active_count():
    # f_min * n^(1/3): n=1 -> 1.2; n=8 -> 2.4; n=64 -> 4.8 (capped 2.8).
    scheduler = NonclairvoyantScheduler(POLARIS_FREQUENCIES, estimator=None)
    jobs = [Job(i + 1, 0.0, 1000.0, 1.0) for i in range(64)]
    for count, expected in ((1, 1.2), (8, 2.4), (64, 2.8)):
        while len(scheduler.queue) < count:
            scheduler.enqueue(_make_request(jobs[len(scheduler.queue)]))
        assert scheduler.select_frequency(0.0, None) == expected


def test_nonclairvoyant_escalates_on_queue_age():
    scheduler = NonclairvoyantScheduler(POLARIS_FREQUENCIES, estimator=None)
    scheduler.enqueue(_make_request(Job(1, 0.0, 10.0, 1.0)))
    assert scheduler.select_frequency(1.0, None) == 1.2
    # Past 75% of the request's own window: flat out.
    assert scheduler.select_frequency(8.0, None) == POLARIS_FREQUENCIES[-1]


def test_nonclairvoyant_never_touches_estimator():
    estimator = ExecutionTimeEstimator()
    scheduler = NonclairvoyantScheduler(POLARIS_FREQUENCIES, estimator)
    request = _make_request(Job(1, 0.0, 10.0, 1.0))
    scheduler.enqueue(request)
    scheduler.select_frequency(0.5, None)
    popped = scheduler.next_request()
    popped.dispatch_time = 0.5
    popped.dispatch_freq = 2.8
    popped.finish_time = 1.0
    scheduler.record_completion(popped)
    assert estimator.version == 0
    assert estimator.estimate("j1", 2.8) == 0.0
