"""Sliding-window percentile estimation (paper Section 3.2)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimator import (
    ExecutionTimeEstimator, ListSlidingWindowPercentile,
    SlidingWindowPercentile,
)


def reference_percentile(values, p):
    ordered = sorted(values)
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]


def test_empty_tracker_returns_zero():
    tracker = SlidingWindowPercentile()
    assert tracker.value() == 0.0
    assert len(tracker) == 0
    assert not tracker.full


def test_percentile_of_known_values():
    tracker = SlidingWindowPercentile(window=100, percentile=95)
    for v in range(1, 101):  # 1..100
        tracker.observe(float(v))
    assert tracker.value() == 95.0
    assert tracker.full


def test_median_mode():
    tracker = SlidingWindowPercentile(window=10, percentile=50)
    for v in [5, 1, 9, 3, 7]:
        tracker.observe(v)
    assert tracker.value() == 5


def test_sliding_eviction():
    tracker = SlidingWindowPercentile(window=3, percentile=100)
    for v in [10.0, 20.0, 30.0]:
        tracker.observe(v)
    assert tracker.value() == 30.0
    tracker.observe(5.0)  # evicts 10.0
    assert tracker.value() == 30.0
    tracker.observe(5.0)  # evicts 20.0
    tracker.observe(5.0)  # evicts 30.0
    assert tracker.value() == 5.0
    assert len(tracker) == 3


def test_duplicate_values_evict_correctly():
    tracker = SlidingWindowPercentile(window=2, percentile=100)
    tracker.observe(1.0)
    tracker.observe(1.0)
    tracker.observe(2.0)
    assert sorted(tracker._sorted) == [1.0, 2.0]


def test_validation():
    with pytest.raises(ValueError):
        SlidingWindowPercentile(window=0)
    with pytest.raises(ValueError):
        SlidingWindowPercentile(percentile=0.0)
    with pytest.raises(ValueError):
        SlidingWindowPercentile(percentile=101.0)
    with pytest.raises(ValueError):
        SlidingWindowPercentile().observe(-1.0)


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200),
    window=st.integers(min_value=1, max_value=50),
    percentile=st.floats(min_value=1.0, max_value=100.0))
def test_property_matches_reference_over_window(values, window, percentile):
    """The tracker equals the order statistic of the last ``window``
    observations, for any percentile."""
    tracker = SlidingWindowPercentile(window, percentile)
    for v in values:
        tracker.observe(v)
    expected = reference_percentile(values[-window:], percentile)
    assert tracker.value() == expected


# ----------------------------------------------------------------------
# Chunked structure vs the plain-list reference implementation
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=400),
    window=st.integers(min_value=1, max_value=120),
    percentile=st.floats(min_value=1.0, max_value=100.0))
def test_property_chunked_agrees_with_list_impl(values, window, percentile):
    """The chunked tracker must be observationally identical to the
    plain-list implementation it replaced: same value() after every
    observe, same final window contents."""
    chunked = SlidingWindowPercentile(window, percentile)
    listy = ListSlidingWindowPercentile(window, percentile)
    for v in values:
        chunked.observe(v)
        listy.observe(v)
        assert chunked.value() == listy.value()
    assert len(chunked) == len(listy)
    assert chunked.full == listy.full
    assert list(chunked._sorted) == list(listy._sorted)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from([0.0, 1.0, 1.0, 2.0, 3.0]),
                min_size=1, max_size=300))
def test_property_chunked_agrees_on_heavy_duplicates(values):
    """Duplicate-dense streams stress the eviction bookkeeping (many
    equal keys in the same and adjacent chunks)."""
    chunked = SlidingWindowPercentile(window=7, percentile=95)
    listy = ListSlidingWindowPercentile(window=7, percentile=95)
    for v in values:
        chunked.observe(v)
        listy.observe(v)
    assert chunked.value() == listy.value()
    assert list(chunked._sorted) == list(listy._sorted)


def test_chunked_splits_past_chunk_capacity():
    """A window far beyond one chunk still matches the reference."""
    chunked = SlidingWindowPercentile(window=1000, percentile=95)
    listy = ListSlidingWindowPercentile(window=1000, percentile=95)
    rng = random.Random(7)
    for _ in range(3000):
        v = rng.expovariate(1.0)
        chunked.observe(v)
        listy.observe(v)
    assert chunked.value() == listy.value()
    assert list(chunked._sorted) == list(listy._sorted)


# ----------------------------------------------------------------------
# ExecutionTimeEstimator
# ----------------------------------------------------------------------
def test_estimator_unseen_pair_is_zero():
    """Zero-initialized estimates drive the paper's lowest-to-highest
    frequency exploration (Section 6.1)."""
    estimator = ExecutionTimeEstimator()
    assert estimator.estimate("w", 2.8) == 0.0


def test_estimator_tracks_per_pair():
    estimator = ExecutionTimeEstimator(window=10, percentile=95)
    for _ in range(10):
        estimator.observe("a", 2.8, 1.0)
        estimator.observe("a", 1.2, 2.5)
        estimator.observe("b", 2.8, 9.0)
    assert estimator.estimate("a", 2.8) == 1.0
    assert estimator.estimate("a", 1.2) == 2.5
    assert estimator.estimate("b", 2.8) == 9.0
    assert estimator.observation_count("a", 2.8) == 10
    assert estimator.observation_count("zzz", 2.8) == 0
    assert estimator.pairs() == [("a", 1.2), ("a", 2.8), ("b", 2.8)]


def test_estimator_prime_fills_window():
    estimator = ExecutionTimeEstimator(window=100)
    estimator.prime("w", 2.0, 0.005, count=100)
    assert estimator.estimate("w", 2.0) == 0.005
    assert estimator.observation_count("w", 2.0) == 100


def test_estimator_adapts_to_shift():
    """The sliding window forgets the old regime (paper: 'it can adapt
    to changing workloads and system conditions')."""
    estimator = ExecutionTimeEstimator(window=50, percentile=95)
    for _ in range(50):
        estimator.observe("w", 2.8, 1.0)
    for _ in range(50):
        estimator.observe("w", 2.8, 3.0)
    assert estimator.estimate("w", 2.8) == 3.0


def test_estimator_p95_is_conservative():
    """With a skewed sample, the p95 estimate sits near the tail, so
    most transactions finish earlier than predicted."""
    estimator = ExecutionTimeEstimator(window=1000, percentile=95)
    rng = random.Random(0)
    samples = [rng.lognormvariate(0.0, 0.8) for _ in range(1000)]
    for s in samples:
        estimator.observe("w", 2.8, s)
    estimate = estimator.estimate("w", 2.8)
    above = sum(1 for s in samples if s > estimate)
    assert above <= 0.05 * len(samples)
    assert estimate > sum(samples) / len(samples)  # above the mean
