"""Fleet experiment cells: acceptance pins, dispatch, determinism.

The acceptance claim this file pins (goldens in
``tests/data/pinned_fleet.json``, regenerate with
``PYTHONPATH=src python tests/pinned_fleet.py --write``): on the
1000x-scaled diurnal trace, the elastic fleet's mean power is strictly
below the static peak-provisioned fleet's at equal-or-better per-shard
deadline-miss rates, and same-seed runs are bit-identical.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))
from pinned_fleet import (
    DATA_PATH, elastic_cell, fingerprint, pinned_grid, static_peak_cell,
)

from repro.fleet import FleetConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.parallel import config_key


def _load_pins():
    with open(DATA_PATH) as handle:
        return json.load(handle)


PINS = _load_pins()


@pytest.fixture(scope="module")
def elastic_result():
    return run_experiment(elastic_cell())


@pytest.fixture(scope="module")
def static_peak_result():
    return run_experiment(static_peak_cell())


# ----------------------------------------------------------------------
# The pinned acceptance cell
# ----------------------------------------------------------------------
def test_elastic_beats_static_peak_on_power(elastic_result,
                                            static_peak_result):
    """The headline: elastic strictly cheaper than peak-provisioned."""
    assert elastic_result.avg_power_watts \
        < static_peak_result.avg_power_watts


def test_elastic_miss_rates_no_worse_per_shard(elastic_result,
                                               static_peak_result):
    for shard, static_miss in static_peak_result.per_shard_failure.items():
        assert elastic_result.per_shard_failure[shard] \
            <= static_miss + 1e-12


def test_elastic_actually_scaled(elastic_result):
    actions = elastic_result.fleet_actions
    assert actions["scale_out"] > 0
    assert actions["scale_in"] > 0
    assert actions["boots"] == actions["scale_out"]
    assert actions["drains"] == actions["scale_in"]


def test_identical_arrivals_across_provisioning(elastic_result,
                                                static_peak_result):
    """Load is expressed against the peak-provisioned fleet, so the
    cells see the same offered stream."""
    assert elastic_result.offered == static_peak_result.offered
    assert elastic_result.per_shard_offered \
        == static_peak_result.per_shard_offered


def test_no_requests_lost(elastic_result, static_peak_result):
    for result in (elastic_result, static_peak_result):
        assert result.lost == 0
        assert result.offered == result.completed + result.rejected


def test_elastic_rerun_is_bit_identical(elastic_result):
    assert fingerprint(run_experiment(elastic_cell())) \
        == fingerprint(elastic_result)


def test_pins_cover_the_grid():
    assert set(PINS) == set(pinned_grid())


@pytest.mark.parametrize("label", sorted(pinned_grid()))
def test_cell_matches_pinned_fingerprint(
        label, elastic_result, static_peak_result):
    cached = {"fleet-elastic-diurnal": elastic_result,
              "fleet-static-peak-diurnal": static_peak_result}
    result = cached.get(label) or run_experiment(pinned_grid()[label])
    assert fingerprint(result) == PINS[label], (
        f"fleet cell {label} diverged from its pinned fingerprint")


# ----------------------------------------------------------------------
# Dispatch and validation
# ----------------------------------------------------------------------
def _quick_fleet_config(**overrides):
    fleet = FleetConfig(shards=1, replicas_per_shard=1, node_workers=1)
    config = ExperimentConfig(warmup_seconds=0.2, test_seconds=0.5,
                              drain_limit_seconds=2.0, fleet=fleet)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def test_run_experiment_dispatches_on_fleet_field():
    result = run_experiment(_quick_fleet_config())
    assert result.scheme_label.startswith("fleet-elastic")
    assert result.node_timeline
    assert set(result.per_shard_failure) == {"shard0"}


def test_fleet_rejects_server_tier_fault_plans():
    with pytest.raises(ValueError, match="fault"):
        run_experiment(_quick_fleet_config(faults="burst"))
    with pytest.raises(ValueError, match="fault"):
        run_experiment(_quick_fleet_config(faults="dying-core"))


def test_single_server_rejects_fleet_fault_plans():
    config = ExperimentConfig(warmup_seconds=0.2, test_seconds=0.5,
                              faults="shard-crash")
    with pytest.raises(ValueError, match="fleet"):
        run_experiment(config)


def test_quick_chaos_cell_arms_the_self_healing_router():
    """A crash-per-shard plan on a 1-shard fleet: the chaos machinery
    wires up end to end even at smoke scale."""
    config = _quick_fleet_config(faults="shard-crash")
    config.test_seconds = 2.5  # the scenario crashes primaries at 1.5 s
    config.fleet = FleetConfig(shards=1, replicas_per_shard=1,
                               node_workers=1, elastic=False,
                               heartbeat_timeout_s=0.1)
    result = run_experiment(config)
    assert result.faults_injected == 1
    assert result.fleet_actions["node_crashes"] == 1
    assert result.fleet_actions["failovers"] == 1
    assert result.unserved_shards == 0
    assert result.failovers == 1
    assert 0.0 < result.availability["shard0"] < 1.0
    # The armed router's counters surface on the result.
    assert "retries" in result.fleet_actions or result.failovers == 1


def test_fleet_rejects_tier_policy():
    with pytest.raises(ValueError, match="per-type"):
        run_experiment(_quick_fleet_config(
            workload_policy="tiers",
            tier_targets={"gold": 7.5e-3, "silver": 37.5e-3}))


def test_fleet_config_validation_runs():
    with pytest.raises(ValueError, match="hysteresis"):
        run_experiment(_quick_fleet_config(
            fleet=FleetConfig(scale_in_utilization=0.6,
                              scale_out_utilization=0.5)))


def test_fleet_salts_the_sweep_cache_key():
    plain = ExperimentConfig()
    fleet_a = ExperimentConfig(fleet=FleetConfig())
    fleet_b = ExperimentConfig(fleet=FleetConfig(elastic=False))
    keys = {config_key(plain), config_key(fleet_a), config_key(fleet_b)}
    assert len(keys) == 3


def test_governor_scheme_fleet_runs():
    """OS-governor schemes attach a GovernorSet per node."""
    result = run_experiment(_quick_fleet_config(scheme="ondemand"))
    assert "OnDemand" in result.scheme_label


def test_read_heavy_fleet_serves_replica_reads():
    """ycsb-b is 95% reads: active replicas must serve some of them
    fresh (tpcc's write-heavy mix keeps replicas perpetually stale)."""
    config = ExperimentConfig(
        benchmark="ycsb-b", scheme="polaris", slack=40.0,
        warmup_seconds=0.3, test_seconds=1.0, seed=13,
        fleet=FleetConfig(shards=1, replicas_per_shard=2,
                          node_workers=2, elastic=False))
    result = run_experiment(config)
    actions = result.fleet_actions
    assert actions["replica_reads"] > 0
    assert actions["routed_reads"] > actions["routed_writes"]


def test_static_parked_replicas_never_serve():
    config = _quick_fleet_config(
        benchmark="ycsb-b",
        fleet=FleetConfig(shards=1, replicas_per_shard=1,
                          node_workers=1, elastic=False,
                          static_active_replicas=0))
    result = run_experiment(config)
    assert result.scheme_label.startswith("fleet-static-1")
    assert result.fleet_actions["replica_reads"] == 0
    assert result.fleet_actions["replica_fallbacks"] > 0
    assert result.node_timeline == [(0.0, 1)]
