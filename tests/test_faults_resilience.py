"""Graceful degradation: DVFS retry, watchdog migration, shedding, panic."""

import random
from types import SimpleNamespace

import pytest

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request, RequestState
from repro.core.workload import Workload
from repro.db.server import DatabaseServer, ServerConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DegradationPolicy, FaultPlan, MsrFaultSpec, StallSpec,
)
from repro.faults.resilience import ResilienceController
from repro.faults.scenarios import scenario_named
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.sim.engine import Simulator


def make_server(sim, workers=2, polaris=False):
    config = ServerConfig(workers=workers, request_handlers=1)
    factory = None
    if polaris:
        estimator = ExecutionTimeEstimator(window=4)
        for freq in config.scheduler_frequencies:
            estimator.prime("w", freq, 0.001 * 2.8 / freq, count=4)
        factory = lambda: PolarisScheduler(  # noqa: E731
            config.scheduler_frequencies, estimator)
    return DatabaseServer(sim, config, scheduler_factory=factory,
                          initial_freq=2.8)


def arm(sim, server, plan):
    resilience = ResilienceController(sim, server, plan.degradation)
    resilience.attach()
    injector = FaultInjector(sim, plan, random.Random(9))
    injector.attach(server)
    return resilience, injector


def request(arrival_s=0.0, work=0.0028, target_s=1.0) -> Request:
    workload = Workload("w", latency_target=target_s)
    return Request(workload, "w", arrival_s, work)


# ----------------------------------------------------------------------
# DVFS retry with deterministic backoff
# ----------------------------------------------------------------------
def test_retry_reapplies_target_once_fault_window_closes(sim):
    server = make_server(sim, workers=1)
    resilience, _ = arm(sim, server, FaultPlan(
        msr_faults=(MsrFaultSpec(0.0, 0.0015, mode="stuck"),),
        degradation=DegradationPolicy(msr_retry_limit=3,
                                      retry_backoff_s=0.001)))
    worker = server.workers[0]
    worker.pin_frequency(1.2)          # dropped: core stays at 2.8
    assert server.cores[0].freq == 2.8
    sim.run(until=0.01)
    # Retry 1 at 0.001 (still in the window, dropped); retry 2 at
    # 0.001 + 0.002 = 0.003 (window closed, takes effect).
    assert server.cores[0].freq == 1.2
    assert resilience.actions["msr_retry"] == 2
    assert resilience.actions["msr_retry_success"] == 1
    assert resilience.actions["msr_giveup"] == 0


def test_exhausted_retries_fall_back_to_lower_pstate(sim):
    server = make_server(sim, workers=1)
    plan = FaultPlan(
        msr_faults=(MsrFaultSpec(0.0, 10.0, mode="error"),),
        degradation=DegradationPolicy(msr_retry_limit=2,
                                      retry_backoff_s=0.001))
    resilience, injector = arm(sim, server, plan)
    worker = server.workers[0]
    server.cores[0].set_frequency(1.2)
    worker.pin_frequency(2.8)
    sim.run(until=0.1)
    # Every attempt raises; after the last, the one-shot fallback to
    # step_down(2.8) also raises, so the controller gives up.
    assert resilience.actions["msr_retry"] == 2
    assert resilience.actions["msr_giveup"] == 1
    assert server.cores[0].freq == 1.2  # rides the stale P-state


def test_new_decision_cancels_outstanding_retry(sim):
    server = make_server(sim, workers=1)
    resilience, _ = arm(sim, server, FaultPlan(
        msr_faults=(MsrFaultSpec(0.0, 0.0005, mode="stuck"),),
        degradation=DegradationPolicy(msr_retry_limit=5,
                                      retry_backoff_s=0.01)))
    worker = server.workers[0]
    worker.pin_frequency(1.2)  # dropped -> retry scheduled at 0.01
    # A newer decision lands after the fault window but before the
    # retry fires: it cancels the retry and applies directly.
    sim.schedule_at(0.001, lambda: worker.pin_frequency(2.4))
    sim.run(until=0.1)
    assert server.cores[0].freq == 2.4
    assert resilience.actions["msr_retry"] == 0  # old retry cancelled


# ----------------------------------------------------------------------
# Watchdog + migration
# ----------------------------------------------------------------------
def test_watchdog_quarantines_and_migrates_without_losing_requests(sim):
    server = make_server(sim, workers=2, polaris=True)
    resilience, _ = arm(sim, server, FaultPlan(
        stalls=(StallSpec(at_s=0.05, duration_s=None, workers=(0,)),),
        degradation=DegradationPolicy(watchdog_interval_s=0.01,
                                      watchdog_stall_threshold_s=0.02)))
    dead, healthy = server.workers

    def feed_dead_worker():
        for _ in range(3):
            server.submitted += 1
            dead.accept(request(arrival_s=sim.now))

    sim.schedule_at(0.06, feed_dead_worker)
    sim.run(until=0.2)
    server.drain()
    assert resilience.actions["quarantine"] == 1
    assert resilience.actions["migration"] == 1
    assert resilience.actions["migrated_requests"] == 3
    assert healthy.completed == 3          # nothing lost
    assert dead.worker_id in server.quarantined
    server.sanitize_accounting()           # books balance post-migration


def test_routing_probes_past_quarantined_workers(sim):
    server = make_server(sim, workers=2, polaris=True)
    _resilience, _ = arm(sim, server, FaultPlan(
        stalls=(StallSpec(at_s=0.0, duration_s=None, workers=(0,)),),
        degradation=DegradationPolicy(watchdog_interval_s=0.01,
                                      watchdog_stall_threshold_s=0.02)))
    sim.run(until=0.1)  # watchdog has quarantined worker 0
    for _ in range(4):
        server.submit(request(arrival_s=sim.now))
    server.drain()
    assert server.workers[0].completed == 0
    assert server.workers[1].completed == 4


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------
def test_shedding_rejects_past_queue_depth(sim):
    server = make_server(sim, workers=1)
    resilience, _ = arm(sim, server, FaultPlan(
        stalls=(StallSpec(at_s=0.0, duration_s=None, workers=(0,)),),
        degradation=DegradationPolicy(shed_queue_depth=2)))
    rejected = []
    server.add_rejection_listener(rejected.append)
    sim.run(until=0.01)  # core now stalled: accepts queue, nothing runs
    worker = server.workers[0]
    requests = [request(arrival_s=sim.now) for _ in range(4)]
    for req in requests:
        server.submitted += 1
        worker.accept(req)
    assert worker.queue_length() == 2
    assert [r.state for r in requests[2:]] == [RequestState.REJECTED] * 2
    assert rejected == requests[2:]
    assert server.rejected == 2
    assert resilience.actions["shed"] == 2
    server.sanitize_accounting()


# ----------------------------------------------------------------------
# Panic mode
# ----------------------------------------------------------------------
def test_panic_enters_pins_fmax_and_exits_hysteretically(sim):
    server = make_server(sim, workers=2, polaris=True)
    resilience, _ = arm(sim, server, FaultPlan(
        stalls=(StallSpec(at_s=100.0, duration_s=None, workers=(0,)),),
        degradation=DegradationPolicy(panic_enter_miss_rate=0.5,
                                      panic_exit_miss_rate=0.05,
                                      panic_window=4)))
    server.cores[0].set_frequency(1.2)
    miss = SimpleNamespace(met_deadline=False)
    hit = SimpleNamespace(met_deadline=True)
    for _ in range(4):
        resilience._on_outcome(miss)
    assert resilience.panic
    assert resilience.actions["panic_enter"] == 1
    assert server.cores[0].freq == server.cores[0].pstates.max_freq
    assert all(w.dispatcher.panic for w in server.workers)
    # SetProcessorFreq short-circuits to fmax while panicking.
    freqs = server.workers[0].dispatcher.frequencies
    assert server.workers[0].dispatcher.select_frequency(
        sim.now, None) == freqs[-1]
    # One good completion is not enough to exit (hysteresis)...
    resilience._on_outcome(hit)
    assert resilience.panic
    # ...but a clean window is.
    for _ in range(3):
        resilience._on_outcome(hit)
    assert not resilience.panic
    assert resilience.actions["panic_exit"] == 1


def test_sheds_count_as_misses_for_panic(sim):
    server = make_server(sim, workers=1, polaris=True)
    resilience, _ = arm(sim, server, FaultPlan(
        stalls=(StallSpec(at_s=0.0, duration_s=None, workers=(0,)),),
        degradation=DegradationPolicy(shed_queue_depth=1,
                                      panic_enter_miss_rate=0.5,
                                      panic_exit_miss_rate=0.05,
                                      panic_window=4)))
    sim.run(until=0.01)
    worker = server.workers[0]
    for _ in range(6):  # 1 queued + 5 shed
        server.submitted += 1
        worker.accept(request(arrival_s=sim.now))
    assert resilience.actions["shed"] == 5
    assert resilience.panic  # rejections alone crossed the threshold


# ----------------------------------------------------------------------
# The resilience claim (checked-in comparison, ISSUE acceptance)
# ----------------------------------------------------------------------
def test_dying_core_degradation_beats_bare_polaris():
    """POLARIS with watchdog + shedding + panic keeps the failure rate
    strictly below the same scenario with every mechanism disarmed."""
    plan = scenario_named("dying-core")
    base = dict(scheme="polaris", benchmark="tpcc", load_fraction=0.6,
                slack=40.0, workers=2, warmup_seconds=0.3,
                test_seconds=1.0, seed=5)
    degraded = run_experiment(ExperimentConfig(faults=plan, **base))
    bare = run_experiment(
        ExperimentConfig(faults=plan.without_degradation(), **base))
    assert degraded.degradation_actions["quarantine"] == 1
    assert bare.degradation_actions == {}
    assert bare.lost > 0  # the dead core strands its queue
    assert degraded.failure_rate < bare.failure_rate
