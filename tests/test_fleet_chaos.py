"""Chaos acceptance cells: crash-per-shard failover under pins.

The PR 9 acceptance claim (goldens in ``tests/data/pinned_chaos.json``,
regenerate with ``PYTHONPATH=src python tests/pinned_chaos.py --write``):
under the seeded ``shard-crash`` plan (every primary fail-stops at
1.5 s) on the same diurnal trace the PR 8 frontier is pinned on, the
failover-enabled elastic fleet ends with zero unserved shards and a
bounded lost-commit count at power bounded by the healthy elastic
point, the no-failover baseline ends with every shard's write path
down and availability near zero, and same-seed reruns produce a
byte-identical failover timeline.

Everything here is marked ``chaos`` so CI can run the suite in a
dedicated job under ``REPRO_SIMSAN=1``.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))
from pinned_chaos import (
    DATA_PATH, failover_cell, fingerprint, no_failover_cell, pinned_grid,
)
from pinned_fleet import elastic_cell

from repro.harness.experiment import run_experiment

pytestmark = pytest.mark.chaos


def _load_pins():
    with open(DATA_PATH) as handle:
        return json.load(handle)


PINS = _load_pins()

#: Both pinned cells run two shards with one replica each.
SHARDS = 2


@pytest.fixture(scope="module")
def failover_result():
    return run_experiment(failover_cell())


@pytest.fixture(scope="module")
def no_failover_result():
    return run_experiment(no_failover_cell())


@pytest.fixture(scope="module")
def healthy_result():
    """The PR 8 healthy elastic reference cell (no faults)."""
    return run_experiment(elastic_cell())


# ----------------------------------------------------------------------
# Pinned fingerprints and determinism
# ----------------------------------------------------------------------
def test_pins_cover_the_grid():
    assert set(PINS) == set(pinned_grid())


@pytest.mark.parametrize("label", sorted(pinned_grid()))
def test_cell_matches_pinned_fingerprint(
        label, failover_result, no_failover_result):
    cached = {"chaos-failover-diurnal": failover_result,
              "chaos-no-failover-diurnal": no_failover_result}
    result = cached[label]
    assert fingerprint(result) == PINS[label], (
        f"chaos cell {label} diverged from its pinned fingerprint")


def test_same_seed_rerun_gives_byte_identical_failover_timeline(
        failover_result):
    rerun = run_experiment(failover_cell())
    assert rerun.failover_timeline == failover_result.failover_timeline
    assert fingerprint(rerun) == fingerprint(failover_result)


# ----------------------------------------------------------------------
# The headline availability claims
# ----------------------------------------------------------------------
def test_failover_fleet_serves_every_shard(failover_result):
    """Crash-per-shard, yet every shard ends the run with an ACTIVE
    primary: the failover machinery recovered the write path."""
    assert failover_result.unserved_shards == 0
    assert failover_result.failovers == SHARDS


def test_no_failover_baseline_loses_every_shard(no_failover_result):
    assert no_failover_result.unserved_shards == SHARDS
    assert no_failover_result.failovers == 0
    assert no_failover_result.failover_timeline == []
    assert no_failover_result.mttr_s == 0.0


def test_failover_availability_is_high(failover_result):
    assert set(failover_result.availability) \
        == {f"shard{i}" for i in range(SHARDS)}
    for shard, fraction in failover_result.availability.items():
        assert fraction > 0.9, (shard, fraction)


def test_baseline_availability_is_near_zero(no_failover_result):
    """Crashes land at 1.5 s of a 16 s test window and never heal."""
    for shard, fraction in no_failover_result.availability.items():
        assert fraction < 0.15, (shard, fraction)


def test_lost_commits_are_bounded(failover_result, no_failover_result):
    """Fail-stop loses only buffered-but-undurable group-commit tails:
    a handful of transactions, not the whole write history."""
    for result in (failover_result, no_failover_result):
        assert 0 < result.lost_commits <= 8 * SHARDS


def test_mttr_is_a_sub_second_window(failover_result):
    """Heartbeat timeout (0.2 s) + detection cadence + WAL replay."""
    assert 0.2 < failover_result.mttr_s < 1.0


def test_failover_power_holds_the_provisioning_frontier(
        failover_result, healthy_result):
    """Surviving the crash costs no extra power over the healthy
    elastic point: fail-stopped nodes draw nothing, so the chaos cell
    sits at-or-below the PR 8 frontier (whose healthy pin is enforced
    unchanged by test_fleet_experiment.py)."""
    assert failover_result.avg_power_watts \
        <= healthy_result.avg_power_watts + 1e-9


def test_failure_rate_gap_between_failover_and_baseline(
        failover_result, no_failover_result, healthy_result):
    """Failover keeps the miss rate within a few percent of healthy;
    the baseline, serving no writes after 1.5 s, loses most requests."""
    assert failover_result.failure_rate < 0.05
    assert no_failover_result.failure_rate > 0.5
    assert healthy_result.failure_rate < failover_result.failure_rate


def test_p999_is_recorded_for_chaos_cells(failover_result):
    assert failover_result.p999_latency_s > 0.0
    assert failover_result.p999_latency_s >= max(
        failover_result.mean_latency_by_workload.values())


# ----------------------------------------------------------------------
# Timeline shape and bookkeeping
# ----------------------------------------------------------------------
def test_failover_timeline_is_well_formed(failover_result):
    timeline = failover_result.failover_timeline
    assert timeline == sorted(timeline)
    events = {event for _, _, event, _ in timeline}
    assert events <= {"detected", "replay", "boot-spare", "re-elect",
                      "stranded", "promoted"}
    for shard_id in range(SHARDS):
        shard_events = [event for _, sid, event, _ in timeline
                        if sid == shard_id]
        assert shard_events.index("detected") \
            < shard_events.index("promoted")


def test_fleet_actions_record_the_chaos(failover_result,
                                        no_failover_result):
    actions = failover_result.fleet_actions
    assert actions["node_crashes"] == SHARDS
    assert actions["failovers"] == SHARDS
    assert actions["replayed_records"] > 0
    baseline = no_failover_result.fleet_actions
    assert baseline["node_crashes"] == SHARDS
    assert "failovers" not in baseline


def test_chaos_cells_inject_the_planned_faults(failover_result,
                                               no_failover_result):
    assert failover_result.faults_injected == SHARDS
    assert no_failover_result.faults_injected == SHARDS
