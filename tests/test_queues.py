"""Worker request queues: FIFO and EDF disciplines."""

from hypothesis import given, settings, strategies as st

from repro.core.request import Request
from repro.core.workload import Workload
from repro.db.queues import EdfQueue, FifoQueue


def make_request(arrival, target=1.0):
    return Request(Workload("w", target), "t", arrival, work=1.0)


def test_fifo_order():
    queue = FifoQueue()
    first = make_request(0.0, target=9.0)   # late deadline
    second = make_request(1.0, target=0.1)  # early deadline
    queue.push(first)
    queue.push(second)
    assert queue.peek() is first
    assert queue.pop() is first
    assert queue.pop() is second
    assert queue.pop() is None
    assert queue.peek() is None


def test_edf_orders_by_deadline():
    queue = EdfQueue()
    late = make_request(0.0, target=10.0)
    early = make_request(1.0, target=0.5)
    middle = make_request(0.5, target=3.0)
    for request in (late, early, middle):
        queue.push(request)
    assert [queue.pop() for _ in range(3)] == [early, middle, late]


def test_edf_iteration_is_edf_order():
    queue = EdfQueue()
    requests = [make_request(float(i), target=10.0 - i) for i in range(5)]
    for request in requests:
        queue.push(request)
    deadlines = [r.deadline for r in queue]
    assert deadlines == sorted(deadlines)


def test_edf_ties_broken_by_arrival_id():
    queue = EdfQueue()
    a = make_request(0.0, target=5.0)
    b = make_request(0.0, target=5.0)  # same deadline, created later
    queue.push(b)
    queue.push(a)
    assert queue.pop() is a  # lower request id wins on equal deadline
    assert queue.pop() is b


def test_lengths():
    for queue in (FifoQueue(), EdfQueue()):
        assert len(queue) == 0
        queue.push(make_request(0.0))
        queue.push(make_request(1.0))
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.floats(min_value=0.01, max_value=100,
                                    allow_nan=False)),
                min_size=1, max_size=40))
def test_property_edf_pop_sequence_sorted(params):
    queue = EdfQueue()
    requests = [make_request(arrival, target) for arrival, target in params]
    for request in requests:
        queue.push(request)
    popped = []
    while len(queue):
        popped.append(queue.pop())
    keys = [(r.deadline, r.request_id) for r in popped]
    assert keys == sorted(keys)
    assert len(popped) == len(requests)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                min_size=1, max_size=30))
def test_property_fifo_preserves_arrival_sequence(arrivals):
    queue = FifoQueue()
    requests = [make_request(a) for a in arrivals]
    for request in requests:
        queue.push(request)
    assert [queue.pop() for _ in requests] == requests
