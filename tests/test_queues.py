"""Worker request queues: FIFO and EDF disciplines."""

from hypothesis import given, settings, strategies as st

from repro.core.request import Request
from repro.core.workload import Workload
from repro.db.queues import EdfQueue, FifoQueue


def make_request(arrival, target=1.0):
    return Request(Workload("w", target), "t", arrival, work=1.0)


def test_fifo_order():
    queue = FifoQueue()
    first = make_request(0.0, target=9.0)   # late deadline
    second = make_request(1.0, target=0.1)  # early deadline
    queue.push(first)
    queue.push(second)
    assert queue.peek() is first
    assert queue.pop() is first
    assert queue.pop() is second
    assert queue.pop() is None
    assert queue.peek() is None


def test_edf_orders_by_deadline():
    queue = EdfQueue()
    late = make_request(0.0, target=10.0)
    early = make_request(1.0, target=0.5)
    middle = make_request(0.5, target=3.0)
    for request in (late, early, middle):
        queue.push(request)
    assert [queue.pop() for _ in range(3)] == [early, middle, late]


def test_edf_iteration_is_edf_order():
    queue = EdfQueue()
    requests = [make_request(float(i), target=10.0 - i) for i in range(5)]
    for request in requests:
        queue.push(request)
    deadlines = [r.deadline for r in queue]
    assert deadlines == sorted(deadlines)


def test_edf_ties_broken_by_arrival_id():
    queue = EdfQueue()
    a = make_request(0.0, target=5.0)
    b = make_request(0.0, target=5.0)  # same deadline, created later
    queue.push(b)
    queue.push(a)
    assert queue.pop() is a  # lower request id wins on equal deadline
    assert queue.pop() is b


def test_lengths():
    for queue in (FifoQueue(), EdfQueue()):
        assert len(queue) == 0
        queue.push(make_request(0.0))
        queue.push(make_request(1.0))
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.floats(min_value=0.01, max_value=100,
                                    allow_nan=False)),
                min_size=1, max_size=40))
def test_property_edf_pop_sequence_sorted(params):
    queue = EdfQueue()
    requests = [make_request(arrival, target) for arrival, target in params]
    for request in requests:
        queue.push(request)
    popped = []
    while len(queue):
        popped.append(queue.pop())
    keys = [(r.deadline, r.request_id) for r in popped]
    assert keys == sorted(keys)
    assert len(popped) == len(requests)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                min_size=1, max_size=30))
def test_property_fifo_preserves_arrival_sequence(arrivals):
    queue = FifoQueue()
    requests = [make_request(a) for a in arrivals]
    for request in requests:
        queue.push(request)
    assert [queue.pop() for _ in requests] == requests


class NaiveEdfOracle:
    """The pre-head-pointer EdfQueue: two parallel sorted lists with
    ``pop(0)``.  Kept as the executable specification the optimized
    queue is checked against."""

    def __init__(self):
        self._keys = []
        self._items = []

    def push(self, request):
        import bisect
        key = (request.deadline, request.request_id)
        idx = bisect.bisect_left(self._keys, key)
        self._keys.insert(idx, key)
        self._items.insert(idx, request)

    def pop(self):
        if not self._items:
            return None
        self._keys.pop(0)
        return self._items.pop(0)

    def peek(self):
        return self._items[0] if self._items else None

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self._items)


@settings(max_examples=120, deadline=None)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("push"),
                  st.floats(min_value=0, max_value=50, allow_nan=False),
                  st.floats(min_value=0.01, max_value=50,
                            allow_nan=False)),
        st.tuples(st.just("pop"), st.just(0.0), st.just(0.0))),
    min_size=1, max_size=200))
def test_property_edf_equivalent_to_naive_oracle(ops):
    """The head-pointer queue is operation-for-operation identical to
    the naive two-list implementation under any interleaving of pushes
    and pops: same pop results (identity, not just deadline), same
    lengths, same peeks, same iteration order."""
    fast, oracle = EdfQueue(), NaiveEdfOracle()
    for op, arrival, target in ops:
        if op == "push":
            request = make_request(arrival, target)
            fast.push(request)
            oracle.push(request)
        else:
            assert fast.pop() is oracle.pop()
        assert len(fast) == len(oracle)
        assert fast.peek() is oracle.peek()
        assert list(fast) == list(oracle)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                min_size=1, max_size=30))
def test_property_edf_is_fifo_among_equal_deadlines(arrivals):
    """With one shared deadline EDF degenerates to FIFO: the
    ``(deadline, request_id)`` key makes arrival order the tiebreak."""
    queue = EdfQueue()
    requests = []
    for arrival in arrivals:
        request = Request(Workload("w", 1000.0), "t", arrival, work=1.0)
        request.deadline = 42.0
        requests.append(request)
        queue.push(request)
    assert [queue.pop() for _ in requests] == requests


def test_edf_head_pointer_compaction_crosses_threshold():
    """Drive the queue far past the compaction threshold with live
    entries still behind the head: order survives, lengths stay true,
    and the backing array actually shrinks."""
    queue = EdfQueue()
    total = EdfQueue._COMPACT_MIN * 4
    requests = [make_request(float(i), target=1000.0)
                for i in range(total)]
    for request in requests:
        queue.push(request)
    popped = [queue.pop() for _ in range(total - 5)]
    assert popped == requests[:total - 5]
    assert len(queue) == 5
    # The dead prefix was reclaimed (without compaction the backing
    # list would still hold all `total` slots).
    assert len(queue._items) < total
    urgent = make_request(0.0, target=0.0001)  # earliest deadline now
    queue.push(urgent)
    assert queue.pop() is urgent
    assert [queue.pop() for _ in range(5)] == requests[total - 5:]
    assert queue.pop() is None
