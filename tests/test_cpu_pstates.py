"""P-state tables: construction, navigation, the paper's grids."""

import pytest

from repro.cpu.pstates import (
    POLARIS_FREQUENCIES, PState, PStateTable, XEON_E5_2640V3_PSTATES,
)


def test_paper_grid_shape():
    # "15 frequency levels from 1.2 GHz to 2.6 GHz with 0.1 GHz steps,
    # plus 2.8 GHz" (Section 6.1).
    freqs = XEON_E5_2640V3_PSTATES.frequencies
    assert len(freqs) == 16
    assert freqs[0] == 1.2
    assert freqs[-2] == 2.6
    assert freqs[-1] == 2.8
    assert XEON_E5_2640V3_PSTATES.min_freq == 1.2
    assert XEON_E5_2640V3_PSTATES.max_freq == 2.8


def test_polaris_subset():
    table = XEON_E5_2640V3_PSTATES.subset(POLARIS_FREQUENCIES)
    assert table.frequencies == (1.2, 1.6, 2.0, 2.4, 2.8)


def test_subset_requires_member_frequencies(full_grid):
    with pytest.raises(ValueError):
        full_grid.subset([1.25])


def test_voltage_increases_with_frequency(full_grid):
    voltages = [s.voltage for s in full_grid]
    assert voltages == sorted(voltages)


def test_nearest_at_least(full_grid):
    assert full_grid.nearest_at_least(1.25) == 1.3
    assert full_grid.nearest_at_least(1.3) == 1.3
    assert full_grid.nearest_at_least(2.65) == 2.8
    assert full_grid.nearest_at_least(0.1) == 1.2
    assert full_grid.nearest_at_least(99.0) == 2.8


def test_step_up_down(polaris_grid):
    assert polaris_grid.step_up(1.2) == 1.6
    assert polaris_grid.step_up(2.8) == 2.8
    assert polaris_grid.step_down(2.8) == 2.4
    assert polaris_grid.step_down(1.2) == 1.2
    assert polaris_grid.step_up(1.2, steps=2) == 2.0
    assert polaris_grid.step_down(2.8, steps=10) == 1.2


def test_step_requires_grid_frequency(polaris_grid):
    with pytest.raises(KeyError):
        polaris_grid.step_up(1.3)


def test_contains_and_len(polaris_grid):
    assert 1.6 in polaris_grid
    assert 1.7 not in polaris_grid
    assert len(polaris_grid) == 5


def test_state_for(polaris_grid):
    state = polaris_grid.state_for(2.0)
    assert state.freq_ghz == 2.0
    with pytest.raises(KeyError):
        polaris_grid.state_for(2.1)


def test_empty_table_rejected():
    with pytest.raises(ValueError):
        PStateTable([])


def test_duplicate_frequencies_rejected():
    with pytest.raises(ValueError):
        PStateTable([PState(1.0, 0.8), PState(1.0, 0.9)])


def test_pstate_validation():
    with pytest.raises(ValueError):
        PState(-1.0, 0.8)
    with pytest.raises(ValueError):
        PState(1.0, 0.0)


def test_from_frequencies_sorted_regardless_of_input():
    table = PStateTable.from_frequencies([2.0, 1.2, 1.6])
    assert table.frequencies == (1.2, 1.6, 2.0)
