"""The SCHEMES registry: constructible, consistently named, line-ups valid."""

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.cpu.pstates import POLARIS_FREQUENCIES
from repro.governors.base import Governor
from repro.harness import figures
from repro.harness.schemes import (
    ARENA_SCHEMES, FIGURE_BASELINE_SCHEMES, SCHEMES, VARIANT_SCHEMES,
    scheme_named,
)

LINEUPS = {
    "FIGURE_BASELINE_SCHEMES": FIGURE_BASELINE_SCHEMES,
    "VARIANT_SCHEMES": VARIANT_SCHEMES,
    "ARENA_SCHEMES": ARENA_SCHEMES,
    "RESILIENCE_SCHEMES": figures.RESILIENCE_SCHEMES,
    "GRANULARITY_SCHEMES": figures.GRANULARITY_SCHEMES,
}


def test_every_scheme_is_constructible_and_consistently_named():
    estimator = ExecutionTimeEstimator()
    for name, scheme in SCHEMES.items():
        assert scheme.name == name, f"registry key {name!r} != {scheme.name!r}"
        assert scheme.label
        # Exactly one control mechanism per scheme.
        assert (scheme.scheduler_class is None) \
            != (scheme.governor_factory is None), name
        if scheme.uses_scheduler:
            scheduler = scheme.make_scheduler_factory(
                POLARIS_FREQUENCIES, estimator)()
            assert isinstance(scheduler, PolarisScheduler), name
            assert scheduler.name == name, \
                f"scheduler class of {name!r} says {scheduler.name!r}"
            assert scheduler.select_frequency(0.0, None) \
                in POLARIS_FREQUENCIES
        else:
            governor = scheme.governor_factory()
            assert isinstance(governor, Governor), name
        if scheme.initial_freq is not None:
            assert scheme.initial_freq in POLARIS_FREQUENCIES, name


def test_every_lineup_references_registered_schemes():
    for lineup_name, lineup in LINEUPS.items():
        assert lineup, lineup_name
        assert len(set(lineup)) == len(lineup), \
            f"{lineup_name} repeats a scheme"
        for name in lineup:
            assert scheme_named(name) is SCHEMES[name]


def test_arena_lineup_covers_the_family():
    """The acceptance bar: >= 6 schemes including all three promoted
    online algorithms next to POLARIS and a governor baseline."""
    assert len(ARENA_SCHEMES) >= 6
    for required in ("polaris", "oa-online", "avr-online",
                     "nonclairvoyant"):
        assert required in ARENA_SCHEMES
    assert any(not SCHEMES[name].uses_scheduler for name in ARENA_SCHEMES)
