"""Shared frequency domains: topology shapes and max-of-votes coordination."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.core import Core
from repro.cpu.msr import IA32_PERF_CTL, MsrFile, encode_perf_ctl
from repro.cpu.pstates import POLARIS_FREQUENCIES, XEON_E5_2640V3_PSTATES
from repro.cpu.topology import (
    FrequencyDomain, GRANULARITIES, SocketTopology, make_topology,
)
from repro.sim.engine import Simulator


def make_domain(sim, n_cores=4, initial_freq=1.2, grid=None):
    grid = grid or XEON_E5_2640V3_PSTATES
    cores = [Core(sim, i, grid, initial_freq=initial_freq)
             for i in range(n_cores)]
    return FrequencyDomain(0, cores), cores


# ----------------------------------------------------------------------
# SocketTopology shapes
# ----------------------------------------------------------------------
def test_topology_defaults_to_per_core_identity():
    topology = SocketTopology()
    assert topology.per_core
    assert topology.domain_size() == 1
    assert topology.domain_groups(4) == [(0,), (1,), (2,), (3,)]


def test_topology_per_socket_groups():
    topology = SocketTopology(granularity="per-socket")
    assert not topology.per_core
    assert topology.domain_size() == 8
    assert topology.domain_groups(16) == [tuple(range(8)),
                                          tuple(range(8, 16))]
    # An under-populated last package.
    assert topology.domain_groups(10) == [tuple(range(8)), (8, 9)]
    assert topology.domain_index(7) == 0
    assert topology.domain_index(8) == 1


def test_topology_per_module_groups():
    topology = SocketTopology(granularity="per-module", cores_per_module=2)
    assert topology.domain_groups(5) == [(0, 1), (2, 3), (4,)]


def test_topology_validation():
    with pytest.raises(ValueError):
        SocketTopology(granularity="per-rack")
    with pytest.raises(ValueError):
        SocketTopology(cores_per_socket=0)
    with pytest.raises(ValueError):
        SocketTopology(cores_per_module=0)
    with pytest.raises(ValueError):
        SocketTopology(switch_latency_s=-1.0)


def test_make_topology_coercions():
    assert make_topology(None).per_core
    assert make_topology("per-socket").granularity == "per-socket"
    explicit = SocketTopology(granularity="per-module")
    assert make_topology(explicit) is explicit
    with pytest.raises(ValueError):
        make_topology("bogus")
    assert set(GRANULARITIES) == {"per-core", "per-module", "per-socket"}


# ----------------------------------------------------------------------
# FrequencyDomain coordination
# ----------------------------------------------------------------------
def test_domain_applies_max_of_votes_to_all_members(sim):
    domain, cores = make_domain(sim)
    cores[0].request_frequency(2.0)
    assert all(c.freq == 2.0 for c in cores)
    cores[1].request_frequency(2.8)
    assert all(c.freq == 2.8 for c in cores)
    # A lower vote from the non-max core changes nothing.
    cores[0].request_frequency(1.2)
    assert all(c.freq == 2.8 for c in cores)
    # The max voter stepping down releases the domain to the next max.
    cores[1].request_frequency(1.6)
    assert all(c.freq == 1.6 for c in cores)
    domain.sanitize_check()


def test_domain_all_votes_down_reaches_floor(sim):
    domain, cores = make_domain(sim, initial_freq=2.8)
    for core in cores:
        core.request_frequency(1.2)
    assert all(c.freq == 1.2 for c in cores)
    assert domain.freq == 1.2


def test_domain_requires_common_initial_frequency(sim):
    cores = [Core(sim, 0, XEON_E5_2640V3_PSTATES, initial_freq=1.2),
             Core(sim, 1, XEON_E5_2640V3_PSTATES, initial_freq=2.8)]
    with pytest.raises(ValueError):
        FrequencyDomain(0, cores)
    with pytest.raises(ValueError):
        FrequencyDomain(1, [])


def test_domain_rejects_off_grid_vote(sim):
    _domain, cores = make_domain(sim)
    with pytest.raises(ValueError):
        cores[0].request_frequency(2.45)


def test_single_core_domain_equals_per_core_behavior(sim):
    """A size-1 domain is the identity: the core tracks its own votes
    exactly as a domainless core tracks set_frequency."""
    lone = Core(sim, 0, XEON_E5_2640V3_PSTATES, initial_freq=1.2)
    domain = FrequencyDomain(0, [lone])
    free = Core(sim, 1, XEON_E5_2640V3_PSTATES, initial_freq=1.2)
    for freq in (2.0, 2.8, 1.6, 1.6, 1.2, 2.4):
        lone.request_frequency(freq)
        free.request_frequency(freq)
        assert lone.freq == free.freq == freq
    assert domain.freq == free.freq
    assert lone.freq_transitions == free.freq_transitions


def test_msr_write_files_a_domain_vote(sim):
    """One PERF_CTL per domain: a write through any member's MSR file
    resolves against the sibling votes instead of acting alone."""
    _domain, cores = make_domain(sim)
    msr0, msr1 = MsrFile(cores[0]), MsrFile(cores[1])
    msr1.write(IA32_PERF_CTL, encode_perf_ctl(2.8))
    assert cores[0].freq == 2.8
    msr0.write(IA32_PERF_CTL, encode_perf_ctl(1.2))
    assert cores[0].freq == 2.8  # sibling vote dominates
    msr1.write(IA32_PERF_CTL, encode_perf_ctl(1.6))
    assert all(c.freq == 1.6 for c in cores)


def test_domain_projected_frequency(sim):
    _domain, cores = make_domain(sim)
    cores[1].request_frequency(2.4)
    # A lower request cannot move the domain below the sibling's vote.
    assert cores[0].projected_frequency(1.2) == 2.4
    # A higher request raises it.
    assert cores[0].projected_frequency(2.8) == 2.8
    # The domainless analogue is the plain achievable frequency.
    free = Core(sim, 9, XEON_E5_2640V3_PSTATES, initial_freq=1.2)
    assert free.projected_frequency(2.0) == 2.0


def test_domain_throttle_clamps_every_member(sim):
    """One rail, one clock: the most-throttled member limits the whole
    domain, and votes above the ceiling resolve to the clamp."""
    domain, cores = make_domain(sim, initial_freq=2.8)
    for core in cores:
        core.set_throttle_ceiling(1.65)  # off-grid: clamps to 1.6
    cores[0].request_frequency(2.8)
    assert all(c.freq == 1.6 for c in cores)
    domain.sanitize_check()
    for core in cores:
        core.set_throttle_ceiling(None)
    # Clearing the ceiling re-raises nothing until the next decision.
    assert all(c.freq == 1.6 for c in cores)
    cores[0].request_frequency(2.8)
    assert all(c.freq == 2.8 for c in cores)


def test_domain_transition_counting_and_stale_vote_refresh(sim):
    domain, cores = make_domain(sim)
    cores[0].request_frequency(2.8)
    assert domain.transitions == 1
    # Same-frequency re-votes resolve without a transition.
    cores[0].request_frequency(2.8)
    assert domain.transitions == 1
    # The re-vote still updates the ledger: core 1's higher stale vote
    # would otherwise pin the domain.
    cores[1].request_frequency(2.8)
    cores[1].request_frequency(1.2)
    assert domain.transitions == 1  # core 0 still votes 2.8
    cores[0].request_frequency(1.2)
    assert domain.transitions == 2
    assert all(c.freq == 1.2 for c in cores)


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.sampled_from(POLARIS_FREQUENCIES)),
    min_size=1, max_size=60))
def test_property_domain_freq_is_always_max_of_votes(votes):
    """After any request sequence, every member runs at exactly the
    maximum of the per-core vote ledger (no throttles active)."""
    sim = Simulator()
    grid = XEON_E5_2640V3_PSTATES.subset(POLARIS_FREQUENCIES)
    domain, cores = make_domain(sim, grid=grid)
    for core_index, freq in votes:
        cores[core_index].request_frequency(freq)
        expected = max(domain.votes.values())
        assert domain.freq == expected
        assert all(c.freq == expected for c in cores)
        domain.sanitize_check()


# ----------------------------------------------------------------------
# End-to-end: identity of the per-core default, per-socket under simsan
# ----------------------------------------------------------------------
PIN_SCALE = dict(load_fraction=0.6, slack=40.0, workers=4,
                 warmup_seconds=0.3, test_seconds=1.5, seed=7)

#: Exact pre-domain results at PIN_SCALE.  The per-core default must
#: keep reproducing these to the last bit: it creates no domain objects
#: and touches no new code paths.  (The ``conservative`` value is
#: post-rounding-fix --- the only intentional behavior change.)
PER_CORE_PINS = {
    "polaris": (108.59119046887172, 0.007258064516129033, 27,
                15.674695812106823, 203.61681854560004),
    "ondemand": (113.055275961831, 0.03602150537634408, 134,
                 23.879751641900683, 204.45358894770067),
    "conservative": (117.2130239636072, 0.020698924731182795, 77,
                     31.26301324946023, 211.67848274435312),
    "static-2.8": (117.29131592075986, 0.020161290322580645, 75,
                   31.497004848245453, 211.91247434313834),
}


@pytest.mark.parametrize("scheme", sorted(PER_CORE_PINS))
def test_per_core_default_is_bit_identical_to_pre_domain_results(scheme):
    result = run_pin(scheme)
    assert (result.avg_power_watts, result.failure_rate, result.missed,
            result.cpu_energy_joules,
            result.wall_energy_joules) == PER_CORE_PINS[scheme]


def run_pin(scheme, **overrides):
    from repro.harness.experiment import ExperimentConfig, run_experiment
    params = dict(PIN_SCALE)
    params.update(overrides)
    return run_experiment(ExperimentConfig(scheme=scheme, **params))


def test_per_socket_run_is_seed_deterministic():
    """Same seed, same per-socket topology -> identical results, and
    the coarse domain never beats per-core on power (max-of-votes only
    ever raises frequencies)."""
    first = run_pin("polaris", topology="per-socket")
    second = run_pin("polaris", topology="per-socket")
    assert (first.avg_power_watts, first.failure_rate, first.missed) == \
        (second.avg_power_watts, second.failure_rate, second.missed)
    per_core = PER_CORE_PINS["polaris"]
    assert first.avg_power_watts >= per_core[0]


def test_per_socket_run_passes_simsan(monkeypatch):
    """The domain-coherence and domain-max-rule invariants hold over a
    full experiment with every sanitizer check armed."""
    monkeypatch.setenv("REPRO_SIMSAN", "1")
    result = run_pin("polaris", topology="per-socket")
    assert result.completed > 0


def test_per_socket_switch_latency_costs_time():
    """A 200us shared-PLL re-lock per domain transition is pure
    overhead: energy consumed cannot drop."""
    free = run_pin("polaris", topology="per-socket")
    slow = run_pin("polaris", topology="per-socket",
                   topology_switch_latency=200e-6)
    assert slow.wall_energy_joules >= free.wall_energy_joules - 1e-9
