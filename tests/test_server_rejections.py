"""The server's rejection path and the recorder's failure accounting.

A rejected request is offered-but-failed (the paper's Section 1 option
to "reject low value requests when load is high"): it must count exactly
once in the failure books, never also as a completion, and rejection
listeners must see every rejection in order.
"""

import pytest

from repro.core.request import Request, RequestState
from repro.core.workload import Workload
from repro.db.server import DatabaseServer, ServerConfig
from repro.metrics.latency import LatencyRecorder


def make_server(sim, workers=1):
    return DatabaseServer(sim, ServerConfig(workers=workers,
                                            request_handlers=1),
                          scheduler_factory=None, initial_freq=2.8)


def request(name="gold", arrival_s=0.0, target_s=1.0) -> Request:
    return Request(Workload(name, latency_target=target_s), name,
                   arrival_s, work=0.0028)


# ----------------------------------------------------------------------
# Listener fan-out
# ----------------------------------------------------------------------
def test_notify_rejection_counts_and_fans_out_in_order(sim):
    server = make_server(sim)
    seen_a, seen_b = [], []
    server.add_rejection_listener(seen_a.append)
    server.add_rejection_listener(seen_b.append)
    first, second = request(), request()
    server.notify_rejection(first)
    server.notify_rejection(second)
    assert server.rejected == 2
    assert seen_a == [first, second]
    assert seen_b == [first, second]


def test_rejection_listeners_do_not_hear_completions(sim):
    server = make_server(sim)
    rejections, completions = [], []
    server.add_rejection_listener(rejections.append)
    server.add_completion_listener(completions.append)
    server.submit(request())
    server.drain()
    assert completions and not rejections
    assert server.rejected == 0


# ----------------------------------------------------------------------
# Recorder accounting
# ----------------------------------------------------------------------
def test_rejection_counts_once_in_per_workload_failure():
    recorder = LatencyRecorder()
    recorder.recording = True
    recorder.on_rejection(request("gold"))
    finished = request("gold")
    finished.dispatch_time, finished.finish_time = 0.1, 0.5
    recorder.on_completion(finished)
    stats = recorder.per_workload["gold"]
    assert (stats.offered, stats.completed, stats.missed) == (2, 1, 1)
    assert stats.failure_rate == pytest.approx(0.5)
    assert recorder.total_rejected == 1
    assert recorder.total_offered \
        == recorder.total_completed + recorder.total_rejected


def test_rejection_outside_window_is_censored():
    recorder = LatencyRecorder()
    recorder.set_window(1.0, 2.0)
    recorder.on_rejection(request(arrival_s=0.5))   # before the window
    recorder.on_rejection(request(arrival_s=1.5))   # inside
    recorder.on_rejection(request(arrival_s=2.0))   # at end (half-open)
    assert recorder.total_rejected == 1
    assert recorder.per_workload["gold"].offered == 1


def test_lost_requests_count_like_rejections():
    recorder = LatencyRecorder()
    recorder.recording = True
    recorder.on_lost(request("gold"))
    stats = recorder.per_workload["gold"]
    assert (stats.offered, stats.missed) == (1, 1)
    assert recorder.total_lost == 1
    assert recorder.total_rejected == 0  # distinct books


def test_rejected_request_never_double_counted_end_to_end(sim):
    """Drive the server's real rejection path (resilience shedding) and
    check a shed request hits the recorder exactly once."""
    from repro.faults.plan import DegradationPolicy, FaultPlan, StallSpec
    from repro.faults.resilience import ResilienceController
    from repro.faults.injector import FaultInjector
    import random

    server = make_server(sim)
    plan = FaultPlan(
        stalls=(StallSpec(at_s=0.0, duration_s=0.05, workers=(0,)),),
        degradation=DegradationPolicy(shed_queue_depth=1))
    ResilienceController(sim, server, plan.degradation).attach()
    FaultInjector(sim, plan, random.Random(1)).attach(server)
    recorder = LatencyRecorder()
    recorder.recording = True
    server.add_completion_listener(recorder.on_completion)
    server.add_rejection_listener(recorder.on_rejection)

    def offer():
        for _ in range(3):  # stalled core: 1 queues, 2 shed
            server.submit(request(arrival_s=sim.now))

    sim.schedule_at(0.01, offer)
    sim.run(until=0.2)
    server.drain()
    assert server.rejected == 2
    assert recorder.total_rejected == 2
    assert recorder.total_completed == 1
    stats = recorder.per_workload["gold"]
    # 3 offered = 1 completed + 2 missed-by-rejection; nothing twice.
    assert (stats.offered, stats.completed, stats.missed) == (3, 1, 2)
    server.sanitize_accounting()
