"""Driver, baseline ratchet, SARIF export, autofixes, incremental cache.

These exercise the v2 enforcement surface end to end on synthetic
trees: suppression accounting (incl. the driver-synthesized unused-
suppression findings), baseline add/ratchet/expire semantics, SARIF
2.1.0 shape, ``--fix`` rewrites, and cache reuse/invalidation.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.cli import main as cli_main
from repro.analysis.driver import run_analysis
from repro.analysis.fixes import fix_source
from repro.analysis.linter import (
    Finding, parse_suppressions, suppression_covers,
)
from repro.analysis.sarif import FINGERPRINT_KEY, sarif_log

DIRTY = "import time\n\ndef now_s():\n    return time.time()\n"


def write_tree(tmp_path, files):
    root = tmp_path / "repro"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        for parent in target.parents:
            if parent == tmp_path:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
    return root


# ----------------------------------------------------------------------
# Suppression parsing (tokenize-based)
# ----------------------------------------------------------------------
def test_parse_suppressions_reads_real_comments_only():
    source = (
        '"""Docs show `x  # reprolint: disable=RL001 - example`."""\n'
        "#: doc comment citing ``# reprolint: disable=RL002 - ex``\n"
        "x = 1  # reprolint: disable=RL003 - the real one\n")
    sups = parse_suppressions(source)
    assert list(sups) == [3]
    assert sups[3].codes == frozenset({"RL003"})
    assert sups[3].reason == "the real one"


def test_suppression_covers_rl009_needs_explicit_listing():
    sups = parse_suppressions(
        "a = 1  # reprolint: disable\n"
        "b = 2  # reprolint: disable=RL009\n")
    assert suppression_covers(sups[1], "RL001")
    assert not suppression_covers(sups[1], "RL009")
    assert suppression_covers(sups[2], "RL009")


# ----------------------------------------------------------------------
# Driver: unused suppressions, program-finding suppression
# ----------------------------------------------------------------------
def test_driver_reports_unused_suppression(tmp_path):
    write_tree(tmp_path, {
        "sim/x.py": "def f():  # reprolint: disable=RL001 - stale\n"
                    "    return 1\n",
    })
    result = run_analysis([tmp_path])
    assert [f.code for f in result.findings] == ["RL009"]
    assert "unused" in result.findings[0].message


def test_driver_used_suppression_is_not_flagged(tmp_path):
    write_tree(tmp_path, {
        "sim/x.py": "import time\n"
                    "def f():\n"
                    "    return time.time()  "
                    "# reprolint: disable=RL001 - fixture\n",
    })
    result = run_analysis([tmp_path])
    assert result.findings == []
    assert [f.code for f in result.suppressed] == ["RL001"]


def test_driver_suppresses_program_findings_inline(tmp_path):
    shared = ("def setup(streams):\n"
              "    return streams.get('arrivals')  "
              "# reprolint: disable=RL111 - paired on purpose\n")
    write_tree(tmp_path, {
        "sim/a.py": shared,
        "harness/b.py": ("def measure(streams):\n"
                         "    return streams.get('arrivals')  "
                         "# reprolint: disable=RL111 - paired on "
                         "purpose\n"),
    })
    result = run_analysis([tmp_path])
    assert "RL111" not in {f.code for f in result.findings}
    assert "RL111" in {f.code for f in result.suppressed}


def test_driver_select_skips_unused_detection(tmp_path):
    write_tree(tmp_path, {
        "sim/x.py": "def f():  # reprolint: disable=RL001 - stale\n"
                    "    return 1\n",
    })
    result = run_analysis([tmp_path], select=["RL001"])
    assert result.findings == []


# ----------------------------------------------------------------------
# Baseline: add / ratchet / expire
# ----------------------------------------------------------------------
def finding(code="RL001", path="src/repro/sim/x.py", line=1,
            message="msg"):
    return Finding(code, "rule", path, line, 0, message)


def test_baseline_partition_new_vs_known(tmp_path):
    known = finding(message="known")
    fresh = finding(message="fresh")
    baseline = Baseline().updated([known])
    new, baselined, stale = baseline.partition([known, fresh])
    assert new == [fresh]
    assert baselined == [known]
    assert stale == []


def test_baseline_counts_ratchet(tmp_path):
    # Two identical occurrences baselined; a third is a new finding.
    twice = [finding(line=1), finding(line=9)]
    baseline = Baseline().updated(twice)
    new, baselined, _ = baseline.partition(twice + [finding(line=30)])
    assert len(baselined) == 2
    assert len(new) == 1


def test_baseline_stale_entries_expire(tmp_path):
    gone = finding(message="fixed meanwhile")
    kept = finding(message="still here")
    baseline = Baseline().updated([gone, kept])
    new, baselined, stale = baseline.partition([kept])
    assert new == [] and baselined == [kept]
    assert stale == [fingerprint(gone)]
    refreshed = baseline.updated([kept])
    assert fingerprint(gone) not in refreshed.entries
    assert fingerprint(kept) in refreshed.entries


def test_baseline_preserves_reasons_and_roundtrips(tmp_path):
    kept = finding(message="audited")
    baseline = Baseline().updated([kept])
    fp = fingerprint(kept)
    baseline.entries[fp]["reason"] = "intentional: documented in README"
    target = tmp_path / "bl.json"
    baseline.save(target)
    loaded = Baseline.load(target)
    updated = loaded.updated([kept])
    assert updated.entries[fp]["reason"] == \
        "intentional: documented in README"
    assert loaded.reason_for(kept) == "intentional: documented in README"


def test_baseline_fingerprint_is_line_independent():
    a = finding(line=10)
    b = finding(line=99)
    assert fingerprint(a) == fingerprint(b)
    assert fingerprint(a) != fingerprint(finding(message="other"))


def test_baseline_load_missing_and_bad_version(tmp_path):
    assert len(Baseline.load(tmp_path / "absent.json")) == 0
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(ValueError):
        Baseline.load(bad)


# ----------------------------------------------------------------------
# SARIF 2.1.0 shape
# ----------------------------------------------------------------------
def test_sarif_log_schema_shape():
    new = [finding(message="fresh")]
    old = [finding(message="known")]
    log = sarif_log(new, old, baseline_applied=True)
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    run = log["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    rule_ids = [r["id"] for r in rules]
    assert rule_ids == sorted(rule_ids)
    assert "RL001" in rule_ids and "RL111" in rule_ids
    assert all(r["shortDescription"]["text"] for r in rules)
    results = run["results"]
    assert [r["baselineState"] for r in results] == ["new", "unchanged"]
    for result in results:
        assert result["ruleId"] == "RL001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert FINGERPRINT_KEY in result["partialFingerprints"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_sarif_without_baseline_has_no_baseline_state():
    log = sarif_log([finding()], baseline_applied=False)
    assert all("baselineState" not in r
               for r in log["runs"][0]["results"])


# ----------------------------------------------------------------------
# Autofixes
# ----------------------------------------------------------------------
def test_fix_wraps_set_iteration():
    source = "for x in {2, 1}:\n    use(x)\n"
    f = Finding("RL003", "set-iteration-order", "x.py", 1, 9, "iter")
    fixed, descriptions = fix_source(source, [f])
    assert fixed == "for x in sorted({2, 1}):\n    use(x)\n"
    assert any("sorted" in d for d in descriptions)


def test_fix_removes_unused_suppression_comment():
    source = "x = 1  # reprolint: disable=RL001 - stale\n"
    f = Finding("RL009", "suppression-hygiene", "x.py", 1, 7,
                "unused suppression of RL001: ...")
    fixed, _ = fix_source(source, [f])
    assert fixed == "x = 1\n"


def test_fix_leaves_missing_reason_alone():
    source = "import time\nt = time.time()  # reprolint: disable\n"
    f = Finding("RL009", "suppression-hygiene", "x.py", 2, 17,
                "blanket suppression has no reason; ...")
    fixed, descriptions = fix_source(source, [f])
    assert fixed == source and descriptions == []


def test_fix_skips_stale_locations():
    source = "x = 1\n"
    f = Finding("RL003", "set-iteration-order", "x.py", 1, 9, "moved")
    fixed, descriptions = fix_source(source, [f])
    assert fixed == source and descriptions == []


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
def test_incremental_cache_reuses_unchanged_files(tmp_path):
    root = write_tree(tmp_path, {"sim/x.py": DIRTY,
                                 "sim/y.py": "y = 1\n"})
    cache = tmp_path / "cache.json"
    cold = run_analysis([root], cache_path=cache)
    assert cold.files_from_cache == 0
    warm = run_analysis([root], cache_path=cache)
    assert warm.files_from_cache == warm.files_checked
    assert [f.to_dict() for f in warm.findings] == \
        [f.to_dict() for f in cold.findings]


def test_incremental_cache_invalidates_on_edit(tmp_path):
    root = write_tree(tmp_path, {"sim/x.py": DIRTY})
    cache = tmp_path / "cache.json"
    before = run_analysis([root], cache_path=cache)
    assert {f.code for f in before.findings} >= {"RL001"}
    (root / "sim/x.py").write_text("def now_s():\n    return 0.0\n")
    after = run_analysis([root], cache_path=cache)
    assert all(f.code != "RL001" for f in after.findings)


def test_incremental_cache_survives_corruption(tmp_path):
    root = write_tree(tmp_path, {"sim/x.py": DIRTY})
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    result = run_analysis([root], cache_path=cache)
    assert {f.code for f in result.findings} >= {"RL001"}


# ----------------------------------------------------------------------
# CLI end to end
# ----------------------------------------------------------------------
def test_cli_baseline_gates_exit_code(tmp_path, capsys):
    root = write_tree(tmp_path, {"sim/x.py": DIRTY})
    baseline = tmp_path / "bl.json"
    args = [str(root), "--baseline", str(baseline)]
    assert cli_main(args) == 1  # new finding, no baseline yet
    assert cli_main(args + ["--update-baseline"]) == 0
    capsys.readouterr()
    assert cli_main(args) == 0  # baselined now
    out = capsys.readouterr().out
    assert "baselined" in out


def test_cli_sarif_writes_file(tmp_path, capsys):
    root = write_tree(tmp_path, {"sim/x.py": DIRTY})
    sarif_path = tmp_path / "out.sarif"
    assert cli_main([str(root), "--sarif", str(sarif_path)]) == 1
    payload = json.loads(sarif_path.read_text())
    assert payload["version"] == "2.1.0"
    assert any(r["ruleId"] == "RL001"
               for r in payload["runs"][0]["results"])


def test_cli_fix_rewrites_and_reexits(tmp_path, capsys):
    root = write_tree(tmp_path, {
        "sim/x.py": "names = ['b', 'a']\n"
                    "def f():\n"
                    "    return [x for x in set(names)]\n",
    })
    assert cli_main([str(root), "--fix"]) == 0
    assert "sorted(set(names))" in (root / "sim/x.py").read_text()


def test_cli_update_baseline_requires_baseline(tmp_path):
    with pytest.raises(SystemExit):
        cli_main([str(tmp_path), "--update-baseline"])


def test_cli_select_accepts_program_codes(tmp_path, capsys):
    root = write_tree(tmp_path, {"sim/x.py": "x = 1\n"})
    assert cli_main([str(root), "--select", "RL111"]) == 0
    with pytest.raises(SystemExit):
        cli_main([str(root), "--select", "RL999"])
