"""Request-routing policies (the Section 8 extension)."""

import pytest

from repro.core.routing import (
    LeastLoadedRouting, PackingRouting, ROUTING_POLICIES, RoundRobinRouting,
    RoutingPolicy, make_routing,
)


class FakeWorker:
    def __init__(self, idle=True, queued=0):
        self.idle = idle
        self._queued = queued

    def queue_length(self):
        return self._queued


def test_round_robin_cycles():
    policy = RoundRobinRouting()
    workers = [FakeWorker() for _ in range(3)]
    picks = [policy.choose_worker(workers, None, 0.0) for _ in range(7)]
    assert picks == [0, 1, 2, 0, 1, 2, 0]


def test_least_loaded_prefers_idle():
    policy = LeastLoadedRouting()
    workers = [FakeWorker(idle=False, queued=0),
               FakeWorker(idle=True, queued=0),
               FakeWorker(idle=False, queued=3)]
    assert policy.choose_worker(workers, None, 0.0) == 1


def test_least_loaded_breaks_ties_by_queue_then_index():
    policy = LeastLoadedRouting()
    workers = [FakeWorker(idle=False, queued=2),
               FakeWorker(idle=False, queued=1),
               FakeWorker(idle=False, queued=1)]
    assert policy.choose_worker(workers, None, 0.0) == 1


def test_packing_fills_low_indices_first():
    policy = PackingRouting(max_backlog=2)
    workers = [FakeWorker(idle=False, queued=0),  # backlog 1 -> room
               FakeWorker(idle=True, queued=0),
               FakeWorker(idle=True, queued=0)]
    assert policy.choose_worker(workers, None, 0.0) == 0


def test_packing_spills_when_saturated():
    policy = PackingRouting(max_backlog=2)
    workers = [FakeWorker(idle=False, queued=1),  # backlog 2 -> full
               FakeWorker(idle=False, queued=1),  # full
               FakeWorker(idle=True, queued=0)]   # room
    assert policy.choose_worker(workers, None, 0.0) == 2


def test_packing_falls_back_to_least_backlogged():
    policy = PackingRouting(max_backlog=1)
    workers = [FakeWorker(idle=False, queued=5),
               FakeWorker(idle=False, queued=2),
               FakeWorker(idle=False, queued=9)]
    assert policy.choose_worker(workers, None, 0.0) == 1


def test_packing_validation():
    with pytest.raises(ValueError):
        PackingRouting(max_backlog=0)


def test_make_routing():
    assert isinstance(make_routing("round-robin"), RoundRobinRouting)
    assert isinstance(make_routing("least-loaded"), LeastLoadedRouting)
    assert isinstance(make_routing("packing"), PackingRouting)
    with pytest.raises(KeyError):
        make_routing("bogus")
    assert set(ROUTING_POLICIES) == {"round-robin", "least-loaded",
                                     "packing"}


def test_base_policy_abstract():
    with pytest.raises(NotImplementedError):
        RoutingPolicy().choose_worker([], None, 0.0)


# ----------------------------------------------------------------------
# Eligible-worker sets (quarantine visibility)
# ----------------------------------------------------------------------
def test_round_robin_rotates_over_eligible_only():
    """The pointer counts dispatches over the eligible set: worker 1
    never appears, and the survivors each get every other request ---
    a skipped dead slot must not double-load its successor."""
    policy = RoundRobinRouting()
    workers = [FakeWorker() for _ in range(3)]
    picks = [policy.choose_worker(workers, None, 0.0, eligible=[0, 2])
             for _ in range(6)]
    assert picks == [0, 2, 0, 2, 0, 2]


def test_round_robin_empty_eligible_means_all():
    policy = RoundRobinRouting()
    workers = [FakeWorker() for _ in range(3)]
    picks = [policy.choose_worker(workers, None, 0.0, eligible=None)
             for _ in range(4)]
    assert picks == [0, 1, 2, 0]


def test_least_loaded_ignores_ineligible_idle_worker():
    """Worker 1 is idle (the tempting choice) but quarantined; the
    policy must pick the best *eligible* worker instead."""
    policy = LeastLoadedRouting()
    workers = [FakeWorker(idle=False, queued=2),
               FakeWorker(idle=True, queued=0),
               FakeWorker(idle=False, queued=1)]
    assert policy.choose_worker(workers, None, 0.0, eligible=[0, 2]) == 2


def test_packing_prefix_skips_quarantined_worker():
    """Packing's active prefix is the eligible order: with worker 0
    dead, worker 1 becomes the pack target even though 0 has 'room'."""
    policy = PackingRouting(max_backlog=2)
    workers = [FakeWorker(idle=True, queued=0),
               FakeWorker(idle=False, queued=0),
               FakeWorker(idle=True, queued=0)]
    assert policy.choose_worker(workers, None, 0.0, eligible=[1, 2]) == 1


def test_packing_fallback_restricted_to_eligible():
    policy = PackingRouting(max_backlog=1)
    workers = [FakeWorker(idle=False, queued=1),   # dead, least backlog
               FakeWorker(idle=False, queued=5),
               FakeWorker(idle=False, queued=3)]
    assert policy.choose_worker(workers, None, 0.0, eligible=[1, 2]) == 2


# ----------------------------------------------------------------------
# End-to-end through the server
# ----------------------------------------------------------------------
def test_server_packing_parks_workers(sim):
    from repro.core.request import Request
    from repro.core.workload import Workload
    from repro.db.server import DatabaseServer, ServerConfig

    server = DatabaseServer(sim, ServerConfig(workers=4, routing="packing"))
    workload = Workload("w", 1.0)
    # One 1 ms job every 2 ms: worker 0 is always free again in time,
    # so packing parks workers 1-3 entirely.
    for i in range(12):
        sim.schedule_at(i * 2e-3, lambda: server.submit(
            Request(workload, "t", sim.now, 2.8e-3)))
    sim.run()
    completions = [w.completed for w in server.workers]
    assert completions[0] == 12
    assert completions[1:] == [0, 0, 0]


def test_server_least_loaded_spreads(sim):
    from repro.core.request import Request
    from repro.core.workload import Workload
    from repro.db.server import DatabaseServer, ServerConfig

    server = DatabaseServer(sim, ServerConfig(workers=4,
                                              routing="least-loaded"))
    workload = Workload("w", 1.0)
    for i in range(4):
        server.submit(Request(workload, "t", sim.now, 28.0))
    assert [w.idle for w in server.workers] == [False] * 4


def test_server_packing_reroutes_around_quarantined_prefix(sim):
    """Dying-core x packing interplay: once the watchdog quarantines
    worker 0, packing's active prefix starts at worker 1 --- the dead
    worker receives nothing and the pack target is not chosen by the
    old choose-then-probe fall-through (which skewed backlog checks by
    consulting the dead worker's queue)."""
    from repro.core.request import Request
    from repro.core.workload import Workload
    from repro.db.server import DatabaseServer, ServerConfig

    server = DatabaseServer(sim, ServerConfig(workers=4, routing="packing"))
    server.quarantined.add(0)
    workload = Workload("w", 1.0)
    for i in range(8):
        sim.schedule_at(i * 2e-3, lambda: server.submit(
            Request(workload, "t", sim.now, 2.8e-3)))
    sim.run()
    completions = [w.completed for w in server.workers]
    assert completions == [0, 8, 0, 0]


def test_server_round_robin_spreads_evenly_past_quarantine(sim):
    """Dying-core x round-robin interplay: with worker 2 of 4 dead, the
    rotation covers the three survivors evenly.  Under the old pointer
    arithmetic the probe remapped worker 2's slot onto worker 3, which
    then took twice the load of workers 0 and 1."""
    from repro.core.request import Request
    from repro.core.workload import Workload
    from repro.db.server import DatabaseServer, ServerConfig

    server = DatabaseServer(sim, ServerConfig(workers=4,
                                              routing="round-robin"))
    server.quarantined.add(2)
    workload = Workload("w", 1000.0)
    for _ in range(9):
        server.submit(Request(workload, "t", sim.now, 28.0))
    backlog = [w.queue_length() + (0 if w.idle else 1)
               for w in server.workers]
    assert backlog == [3, 3, 0, 3]


def test_server_least_loaded_avoids_quarantined_idle_worker(sim):
    """Dying-core x least-loaded interplay: a quarantined worker is
    always idle (nothing dispatches), making it the policy's favorite
    target forever unless the eligible set hides it."""
    from repro.core.request import Request
    from repro.core.workload import Workload
    from repro.db.server import DatabaseServer, ServerConfig

    server = DatabaseServer(sim, ServerConfig(workers=3,
                                              routing="least-loaded"))
    server.quarantined.add(1)
    workload = Workload("w", 1000.0)
    for _ in range(6):
        server.submit(Request(workload, "t", sim.now, 28.0))
    backlog = [w.queue_length() + (0 if w.idle else 1)
               for w in server.workers]
    assert backlog == [3, 0, 3]


def test_server_rejects_unknown_routing(sim):
    from repro.db.server import DatabaseServer, ServerConfig

    with pytest.raises(KeyError):
        DatabaseServer(sim, ServerConfig(workers=2, routing="bogus"))


def test_server_deep_cstates_configured(sim):
    from repro.db.server import DatabaseServer, ServerConfig

    server = DatabaseServer(sim, ServerConfig(workers=2,
                                              cstate_ladder="deep"))
    assert len(server.cores[0].cstates.ladder) == 3
    with pytest.raises(ValueError):
        DatabaseServer(sim, ServerConfig(workers=2, cstate_ladder="bogus"))


def test_scheduler_cores_start_at_floor(sim):
    from repro.core.estimator import ExecutionTimeEstimator
    from repro.core.polaris import PolarisScheduler
    from repro.db.server import DatabaseServer, ServerConfig

    config = ServerConfig(workers=2)
    estimator = ExecutionTimeEstimator()
    server = DatabaseServer(
        sim, config,
        scheduler_factory=lambda: PolarisScheduler(
            config.scheduler_frequencies, estimator))
    assert all(core.freq == 1.2 for core in server.cores)
    baseline = DatabaseServer(sim, ServerConfig(workers=2))
    assert all(core.freq == 2.8 for core in baseline.cores)
