"""Tables: schema checks, CRUD, secondary-index maintenance."""

import pytest

from repro.db.storage.errors import DuplicateKeyError, NoSuchRowError, SchemaError
from repro.db.storage.table import Table


@pytest.fixture
def items():
    table = Table("item", ("i_id", "i_name", "i_price"), ("i_id",))
    table.create_index("by_name", ("i_name",), ordered=True)
    for i in range(1, 6):
        table.insert({"i_id": i, "i_name": f"n{i}", "i_price": float(i)})
    return table


def test_insert_and_get(items):
    assert items.get((3,))["i_name"] == "n3"
    assert len(items) == 5
    assert (3,) in items
    assert (99,) not in items


def test_get_returns_copy(items):
    row = items.get((1,))
    row["i_price"] = 999.0
    assert items.get((1,))["i_price"] == 1.0


def test_get_missing_raises(items):
    with pytest.raises(NoSuchRowError):
        items.get((42,))
    assert items.get_or_none((42,)) is None


def test_duplicate_pk_rejected(items):
    with pytest.raises(DuplicateKeyError):
        items.insert({"i_id": 1, "i_name": "x", "i_price": 0.0})


def test_insert_requires_all_columns(items):
    with pytest.raises(SchemaError):
        items.insert({"i_id": 9, "i_name": "x"})


def test_unknown_column_rejected(items):
    with pytest.raises(SchemaError):
        items.insert({"i_id": 9, "i_name": "x", "i_price": 1.0, "bogus": 1})
    with pytest.raises(SchemaError):
        items.update((1,), {"bogus": 2})


def test_update_returns_before_after(items):
    before, after = items.update((2,), {"i_price": 20.0})
    assert before["i_price"] == 2.0
    assert after["i_price"] == 20.0
    assert items.get((2,))["i_price"] == 20.0


def test_update_cannot_change_pk(items):
    with pytest.raises(SchemaError):
        items.update((2,), {"i_id": 7})


def test_update_missing_row(items):
    with pytest.raises(NoSuchRowError):
        items.update((42,), {"i_price": 1.0})


def test_delete_and_restore(items):
    before = items.delete((4,))
    assert before["i_name"] == "n4"
    assert (4,) not in items
    assert items.lookup("by_name", ("n4",)) == []
    items.restore(before)
    assert items.get((4,))["i_name"] == "n4"
    assert len(items.lookup("by_name", ("n4",))) == 1


def test_restore_clash(items):
    with pytest.raises(DuplicateKeyError):
        items.restore({"i_id": 1, "i_name": "dup", "i_price": 0.0})


def test_secondary_index_follows_updates(items):
    items.update((1,), {"i_name": "renamed"})
    assert items.lookup("by_name", ("n1",)) == []
    assert items.lookup("by_name", ("renamed",))[0]["i_id"] == 1


def test_ordered_range_scan(items):
    names = [r["i_name"] for r in items.range_scan("by_name", ("n2",),
                                                   ("n4",))]
    assert names == ["n2", "n3", "n4"]


def test_range_scan_requires_ordered_index():
    table = Table("t", ("a", "b"), ("a",))
    table.create_index("hash_b", ("b",))
    table.insert({"a": 1, "b": 2})
    with pytest.raises(SchemaError):
        list(table.range_scan("hash_b", None, None))


def test_nonunique_index_groups_rows():
    table = Table("t", ("a", "b"), ("a",))
    table.create_index("by_b", ("b",), ordered=True)
    table.create_index("by_b_hash", ("b",))
    for a in range(6):
        table.insert({"a": a, "b": a % 2})
    evens = table.lookup("by_b", (0,))
    assert sorted(r["a"] for r in evens) == [0, 2, 4]
    assert sorted(r["a"] for r in table.lookup("by_b_hash", (0,))) == [0, 2, 4]
    scanned = [r["a"] for r in table.range_scan("by_b", (0,), (0,))]
    assert sorted(scanned) == [0, 2, 4]


def test_unique_secondary_index_enforced():
    table = Table("t", ("a", "b"), ("a",))
    table.create_index("uniq_b", ("b",), unique=True, ordered=True)
    table.insert({"a": 1, "b": 10})
    with pytest.raises(DuplicateKeyError):
        table.insert({"a": 2, "b": 10})
    # Failed insert must leave no trace in the table or other indexes.
    assert len(table) == 1
    assert (2,) not in table


def test_index_backfill_on_creation(items):
    items.create_index("by_price", ("i_price",), ordered=True)
    prices = [r["i_price"] for r in items.range_scan("by_price", None, None)]
    assert prices == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_duplicate_index_name(items):
    with pytest.raises(SchemaError):
        items.create_index("by_name", ("i_price",))


def test_index_unknown_column(items):
    with pytest.raises(SchemaError):
        items.create_index("bad", ("nope",))


def test_schema_validation():
    with pytest.raises(SchemaError):
        Table("t", (), ("a",))
    with pytest.raises(SchemaError):
        Table("t", ("a", "a"), ("a",))
    with pytest.raises(SchemaError):
        Table("t", ("a",), ("b",))
    with pytest.raises(SchemaError):
        Table("t", ("a",), ())


def test_scan_all_copies():
    table = Table("t", ("a",), ("a",))
    table.insert({"a": 1})
    for row in table.scan_all():
        row["a"] = 99
    assert table.get((1,))["a"] == 1


def test_pk_of_missing_column():
    table = Table("t", ("a", "b"), ("a", "b"))
    with pytest.raises(SchemaError):
        table.pk_of({"a": 1})
