"""simsan: every invariant violated by hand, and the end-to-end gate.

Organic simulations never violate these invariants (that is the point),
so each check is exercised by tampering with internal state exactly the
way the bug it guards against would --- a mis-banked counter, a mutated
deadline, an out-of-table frequency --- and asserting the raised
:class:`SimulationInvariantError` names the invariant and carries the
event context.  The final tests run a full experiment cell under
``REPRO_SIMSAN=1`` and require zero violations and output identical to
the unsanitized run.
"""

import dataclasses
import pickle

import pytest

from repro.analysis.sanitizer import (
    SIMSAN_ENV, SimulationInvariantError, invariant, simsan_enabled,
)
from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request
from repro.core.variants import PolarisFifoScheduler
from repro.core.workload import Workload
from repro.cpu.core import Core, Job
from repro.cpu.pstates import POLARIS_FREQUENCIES, XEON_E5_2640V3_PSTATES
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Flag resolution
# ----------------------------------------------------------------------
def test_simsan_enabled_env_spellings(monkeypatch):
    for value, expected in [("1", True), ("true", True), ("YES", True),
                            (" on ", True), ("0", False), ("", False),
                            ("off", False)]:
        monkeypatch.setenv(SIMSAN_ENV, value)
        assert simsan_enabled() is expected
    monkeypatch.delenv(SIMSAN_ENV)
    assert simsan_enabled() is False


def test_simsan_override_beats_env(monkeypatch):
    monkeypatch.setenv(SIMSAN_ENV, "1")
    assert simsan_enabled(False) is False
    monkeypatch.delenv(SIMSAN_ENV)
    assert simsan_enabled(True) is True
    assert Simulator(sanitize=True).sanitize
    assert not Simulator().sanitize


def test_invariant_error_carries_context():
    with pytest.raises(SimulationInvariantError) as exc:
        invariant(False, "edf-order", "out of order", now=1.5, seq=7)
    err = exc.value
    assert err.invariant == "edf-order"
    assert err.context == {"now": 1.5, "seq": 7}
    assert "simsan [edf-order]" in str(err)
    assert "now=1.5" in str(err) and "seq=7" in str(err)
    invariant(True, "edf-order", "fine")  # no raise


# ----------------------------------------------------------------------
# Engine invariants
# ----------------------------------------------------------------------
def test_engine_clock_monotonicity_violation():
    sim = Simulator(sanitize=True)
    event = sim.schedule(1.0, lambda: None)
    event.time = -1.0  # tamper: an event scheduled in the past
    with pytest.raises(SimulationInvariantError) as exc:
        sim.run()
    assert exc.value.invariant == "clock-monotonic"
    assert exc.value.context["event_time"] == -1.0


def test_engine_heap_integrity_violation():
    sim = Simulator(sanitize=True, queue="heap")
    for delay in (3.0, 1.0, 2.0):
        sim.schedule(delay, lambda: None)
    heap = sim._queue._heap
    heap[0], heap[-1] = heap[-1], heap[0]  # break heap
    with pytest.raises(SimulationInvariantError) as exc:
        sim.sanitize_check()
    assert exc.value.invariant == "heap-integrity"
    assert {"index", "parent"} <= set(exc.value.context)


def test_engine_bucket_integrity_violation():
    """The calendar queue's analogue of the heap tamper test: filing an
    entry under the wrong bucket must trip bucket-integrity."""
    sim = Simulator(sanitize=True)
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda: None)
    queue = sim._queue
    (idx, bucket), *_ = queue._buckets.items()
    entry = bucket.pop()
    wrong = idx + 5
    queue._buckets.setdefault(wrong, []).append(entry)
    if wrong not in queue._bucket_heap:
        queue._bucket_heap.append(wrong)
    with pytest.raises(SimulationInvariantError) as exc:
        sim.sanitize_check()
    assert exc.value.invariant == "bucket-integrity"


def test_engine_bucket_heap_map_disagreement():
    sim = Simulator(sanitize=True)
    sim.schedule(1.0, lambda: None)
    sim._queue._bucket_heap.append(999999)  # heap index with no bucket
    with pytest.raises(SimulationInvariantError) as exc:
        sim.sanitize_check()
    assert exc.value.invariant == "bucket-integrity"
    assert 999999 in exc.value.context["heap_only"]


def test_engine_live_accounting_violation():
    sim = Simulator(sanitize=True)
    sim.schedule(1.0, lambda: None)
    sim._live += 1  # tamper: pending_count now lies
    with pytest.raises(SimulationInvariantError) as exc:
        sim.sanitize_check()
    assert exc.value.invariant == "event-accounting"
    assert exc.value.context["live_counter"] == 2
    assert exc.value.context["pending_in_heap"] == 1


def test_engine_cancelled_accounting_violation():
    sim = Simulator(sanitize=True)
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancelled = True  # tamper: bypasses Event.cancel bookkeeping
    sim._live -= 1          # keep the live counter honest so the
    with pytest.raises(SimulationInvariantError) as exc:  # stale check fires
        sim.sanitize_check()
    assert exc.value.invariant == "event-accounting"
    assert exc.value.context["cancelled_in_heap"] == 1
    assert exc.value.context["stale_counter"] == 0


def test_engine_sanitized_run_is_clean():
    sim = Simulator(sanitize=True)
    fired = []
    for delay in (2.0, 1.0, 3.0):
        sim.schedule(delay, lambda d=delay: fired.append(d))
    cancelled = sim.schedule(2.5, lambda: fired.append(-1.0))
    cancelled.cancel()
    sim.run()
    assert fired == [1.0, 2.0, 3.0]
    sim.sanitize_check()  # drained engine still satisfies everything


def test_engine_compaction_checked_under_sanitizer():
    sim = Simulator(sanitize=True)
    events = [sim.schedule(1.0 + i * 1e-3, lambda: None)
              for i in range(200)]
    for event in events[:150]:
        event.cancel()  # crosses the garbage threshold -> _compact()
    assert sim.heap_size() < 200  # compaction ran (checked as it did)
    assert sim.pending_count() == 50
    sim.sanitize_check()


# ----------------------------------------------------------------------
# POLARIS invariants
# ----------------------------------------------------------------------
def _scheduler(sanitize=True, cls=PolarisScheduler):
    estimator = ExecutionTimeEstimator()
    for freq in POLARIS_FREQUENCIES:
        estimator.prime("w", freq, 0.001 * 2.8 / freq, count=10)
    return cls(POLARIS_FREQUENCIES, estimator, sanitize=sanitize)


def test_polaris_edf_pop_order_violation():
    sched = _scheduler()
    workload = Workload("w", 0.010)
    early = Request(workload, "t", 0.0, 1.0)
    late = Request(workload, "t", 0.0, 1.0, deadline=5.0)
    sched.enqueue(early)
    sched.enqueue(late)
    early.deadline = 9.0  # tamper after enqueue: sort key is now stale
    with pytest.raises(SimulationInvariantError) as exc:
        sched.next_request()
    assert exc.value.invariant == "edf-order"
    assert exc.value.context["popped_deadline"] == 9.0
    assert exc.value.context["queued_deadline"] == 5.0


def test_polaris_edf_pop_order_clean_and_fifo_exempt():
    sched = _scheduler()
    workload = Workload("w", 0.010)
    for arrival in (0.3, 0.1, 0.2):
        sched.enqueue(Request(workload, "t", arrival, 1.0))
    deadlines = [sched.next_request().deadline for _ in range(3)]
    assert deadlines == sorted(deadlines)
    # FIFO pops in arrival order; the EDF check must stay out of its way.
    fifo = _scheduler(cls=PolarisFifoScheduler)
    fifo.enqueue(Request(workload, "t", 0.0, 1.0, deadline=9.0))
    fifo.enqueue(Request(workload, "t", 0.1, 1.0, deadline=1.0))
    assert fifo.next_request().deadline == 9.0  # no violation raised


def test_polaris_selected_frequency_membership_violation():
    sched = _scheduler()
    with pytest.raises(SimulationInvariantError) as exc:
        sched._sanitize_selected(3.3, 0, now=1.0)
    assert exc.value.invariant == "pstate-membership"
    assert exc.value.context["selected"] == 3.3


def test_polaris_frequency_monotone_violation():
    sched = _scheduler()
    with pytest.raises(SimulationInvariantError) as exc:
        sched._sanitize_selected(POLARIS_FREQUENCIES[0], 2, now=1.0)
    assert exc.value.invariant == "freq-monotone"
    assert exc.value.context["floor_index"] == 2


def test_polaris_sanitized_selection_is_clean():
    sched = _scheduler()
    workload = Workload("w", 0.010)
    running = Request(workload, "t", 0.0, 1.0)
    for arrival in (0.0, 0.001, 0.002):
        sched.enqueue(Request(workload, "t", arrival, 1.0))
    selected = sched.select_frequency(0.004, running, 0.0005)
    assert selected in POLARIS_FREQUENCIES
    # And an idle-core selection (no running transaction).
    assert sched.select_frequency(0.004, None) in POLARIS_FREQUENCIES


# ----------------------------------------------------------------------
# CPU core invariants
# ----------------------------------------------------------------------
def _core(sanitize=True):
    sim = Simulator(sanitize=sanitize)
    table = XEON_E5_2640V3_PSTATES.subset(POLARIS_FREQUENCIES)
    return sim, Core(sim, core_id=0, pstates=table)


def test_core_frequency_bounds_violation():
    sim, core = _core()
    core.freq = 9.9  # tamper: outside the table entirely
    with pytest.raises(SimulationInvariantError) as exc:
        core.sanitize_check()
    assert exc.value.invariant == "freq-bounds"
    assert exc.value.context["freq"] == 9.9
    assert exc.value.context["core_id"] == 0


def test_core_negative_work_violation():
    sim, core = _core()
    core.start_job(Job(work=1.0))
    core._executed = -0.5  # tamper: banked progress went negative
    with pytest.raises(SimulationInvariantError) as exc:
        core.sanitize_check()
    assert exc.value.invariant == "work-cycles"
    assert exc.value.context["executed"] == -0.5


def test_core_missing_completion_violation():
    sim, core = _core()
    core.start_job(Job(work=1.0))
    core._completion.cancel()  # tamper: job can now never finish
    with pytest.raises(SimulationInvariantError) as exc:
        core.sanitize_check()
    assert exc.value.invariant == "work-cycles"


def test_core_power_model_consistency_violation():
    sim, core = _core()
    core.power_model.idle_power = lambda freq: 1e9  # idle above active
    with pytest.raises(SimulationInvariantError) as exc:
        core.sanitize_check()
    assert exc.value.invariant == "power-consistency"
    assert exc.value.context["idle_watts"] == 1e9


def test_core_sanitized_run_is_clean():
    sim, core = _core()
    done = []
    core.start_job(Job(work=2.8), on_complete=lambda job: done.append(job))
    sim.schedule(1e-4, lambda: core.set_frequency(1.2))
    sim.schedule(2e-4, lambda: core.set_frequency(2.8))
    sim.run()
    assert len(done) == 1
    core.sanitize_check()


# ----------------------------------------------------------------------
# End-to-end: full cell under REPRO_SIMSAN=1, byte-identical output
# ----------------------------------------------------------------------
FAST = dict(workers=2, warmup_seconds=0.3, test_seconds=1.0, seed=3)


def _comparable(result):
    """Everything except wall_seconds, the only host-dependent field."""
    return pickle.dumps(dataclasses.replace(result, wall_seconds=0.0))


@pytest.mark.parametrize("scheme", ["polaris", "ondemand"])
def test_full_cell_sanitized_and_byte_identical(monkeypatch, scheme):
    config = ExperimentConfig(scheme=scheme, slack=40.0, **FAST)
    monkeypatch.delenv(SIMSAN_ENV, raising=False)
    plain = run_experiment(config)
    monkeypatch.setenv(SIMSAN_ENV, "1")
    sanitized = run_experiment(config)  # zero violations = no raise
    assert _comparable(sanitized) == _comparable(plain)
