"""Shared fixtures for the test suite."""

import random

import pytest

from repro.cpu.pstates import POLARIS_FREQUENCIES, XEON_E5_2640V3_PSTATES
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@pytest.fixture(autouse=True)
def _hermetic_harness_paths(tmp_path, monkeypatch):
    """Keep the sweep cache and bench trajectory out of the repo during
    tests: both default to the current directory otherwise."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.setenv("REPRO_BENCH_FILE", str(tmp_path / "bench.json"))


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def streams():
    return RandomStreams(12345)


@pytest.fixture
def full_grid():
    return XEON_E5_2640V3_PSTATES


@pytest.fixture
def polaris_grid():
    return XEON_E5_2640V3_PSTATES.subset(POLARIS_FREQUENCIES)
