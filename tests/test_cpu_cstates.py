"""C-state ladder: residency split, idle energy, wake latency."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.cstates import C1_ONLY, CState, CStateModel, DEEP_LADDER


def test_default_ladder_is_c1_only():
    model = CStateModel()
    segments = model.segments(1.0)
    assert len(segments) == 1
    assert segments[0][0].name == "C1"
    assert segments[0][1] == 1.0
    assert model.wake_latency(1.0) == 0.0


def test_c1_energy_is_linear():
    model = CStateModel()
    assert model.idle_energy(2.0, 0.5) == pytest.approx(1.0)
    assert model.average_idle_power(2.0, 0.5) == pytest.approx(2.0)


def test_deep_ladder_residency_split():
    model = CStateModel(DEEP_LADDER)
    segments = model.segments(1e-3)
    names = [s.name for s, _ in segments]
    assert names == ["C1", "C3", "C6"]
    assert segments[0][1] == pytest.approx(50e-6)
    assert segments[1][1] == pytest.approx(500e-6)
    assert segments[2][1] == pytest.approx(1e-3 - 550e-6)


def test_deep_ladder_short_idle_stays_shallow():
    model = CStateModel(DEEP_LADDER)
    segments = model.segments(30e-6)
    assert [s.name for s, _ in segments] == ["C1"]
    assert model.wake_latency(30e-6) == pytest.approx(2e-6)


def test_deep_ladder_wake_latency_from_deepest():
    model = CStateModel(DEEP_LADDER)
    assert model.wake_latency(10e-3) == pytest.approx(133e-6)


def test_deep_idle_saves_energy():
    shallow = CStateModel(C1_ONLY)
    deep = CStateModel(DEEP_LADDER)
    duration = 10e-3
    assert deep.idle_energy(2.0, duration) < shallow.idle_energy(2.0, duration)


def test_zero_duration():
    model = CStateModel(DEEP_LADDER)
    assert model.segments(0.0) == []
    assert model.idle_energy(2.0, 0.0) == 0.0
    assert model.wake_latency(0.0) == 0.0
    assert model.average_idle_power(2.0, 0.0) == pytest.approx(2.0)


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        CStateModel().segments(-1.0)


def test_empty_ladder_rejected():
    with pytest.raises(ValueError):
        CStateModel(())


def test_nonpositive_threshold_rejected():
    bad = (CState("C1", 1.0, 0.0, 0.0), CState("C6", 0.1, float("inf"), 1e-4))
    with pytest.raises(ValueError):
        CStateModel(bad)


@given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
def test_property_energy_bounded_by_c1(duration):
    """Deeper states only shed power: energy <= C1-rate * duration and
    residencies sum to the full interval."""
    model = CStateModel(DEEP_LADDER)
    c1_watts = 2.0
    energy = model.idle_energy(c1_watts, duration)
    assert energy <= c1_watts * duration + 1e-12
    assert energy >= 0.0
    total = sum(res for _, res in model.segments(duration))
    assert total == pytest.approx(duration)
