"""Property-based guarantees of the fault-injection subsystem.

* Same ``(config, seed, plan)`` -> identical results (chaos is exactly
  as reproducible as health).
* An empty plan is indistinguishable from no plan at all.
* Request accounting balances at end of run, whatever the scenario.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.plan import DegradationPolicy, FaultPlan
from repro.faults.scenarios import scenario_names
from repro.harness.experiment import ExperimentConfig, run_experiment

#: Small-but-real cell: every scenario window (0.5 s) lands inside the
#: test phase, and a run takes a fraction of a second.
_BASE = dict(benchmark="tpcc", scheme="polaris", load_fraction=0.6,
             slack=40.0, workers=2, warmup_seconds=0.3, test_seconds=0.6)


def _metrics(result):
    return (result.avg_power_watts, result.failure_rate, result.offered,
            result.completed, result.missed, result.rejected, result.lost,
            result.faults_injected,
            tuple(sorted(result.degradation_actions.items())),
            result.sim_events, result.cpu_energy_joules,
            tuple(sorted(result.per_workload_failure.items())))


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       scenario=st.sampled_from(scenario_names()))
def test_same_seed_and_plan_give_identical_results(seed, scenario):
    config = ExperimentConfig(seed=seed, faults=scenario, **_BASE)
    assert _metrics(run_experiment(config)) \
        == _metrics(run_experiment(config))


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_empty_plan_is_bit_identical_to_no_faults(seed):
    baseline = run_experiment(ExperimentConfig(seed=seed, **_BASE))
    empty = run_experiment(
        ExperimentConfig(seed=seed, faults=FaultPlan(), **_BASE))
    assert _metrics(empty) == _metrics(baseline)
    assert empty.faults_injected == 0
    assert empty.degradation_actions == {}


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       scenario=st.sampled_from(scenario_names()))
def test_accounting_balances_under_chaos(seed, scenario):
    # simsan on: run_experiment audits server.sanitize_accounting() at
    # the end of every faulted run (and the EDF/throttle invariants run
    # throughout); any imbalance raises SimulationInvariantError.
    # (pytest's monkeypatch is function-scoped, which hypothesis
    # forbids, so flip the env var with a context manager instead.)
    with pytest.MonkeyPatch.context() as patcher:
        patcher.setenv("REPRO_SIMSAN", "1")
        config = ExperimentConfig(seed=seed, faults=scenario, **_BASE)
        result = run_experiment(config)
    # The recorder's in-window books must balance too: every offered
    # request either completed, was rejected/shed, or was lost.
    assert result.offered \
        == result.completed + result.rejected + result.lost


def test_degradation_only_plan_changes_nothing_when_nothing_fails():
    """Armed mechanisms with no faults to react to stay dormant (the
    retry path, watchdog, and panic mode never trigger on their own)."""
    policy = DegradationPolicy(msr_retry_limit=3,
                               watchdog_interval_s=0.05,
                               panic_enter_miss_rate=0.9,
                               panic_exit_miss_rate=0.05)
    baseline = run_experiment(ExperimentConfig(seed=11, **_BASE))
    armed = run_experiment(ExperimentConfig(
        seed=11, faults=FaultPlan(degradation=policy), **_BASE))
    assert armed.degradation_actions == {}
    assert armed.faults_injected == 0
    assert (armed.avg_power_watts, armed.failure_rate, armed.offered) \
        == (baseline.avg_power_watts, baseline.failure_rate,
            baseline.offered)
