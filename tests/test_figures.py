"""Figure-reproduction functions: structure smoke tests at tiny scale.

The full-size shape assertions live in benchmarks/; here we only check
that each figure function produces well-formed results quickly.
"""

import pytest

from repro.harness import figures

TINY = figures.FigureOptions(workers=2, warmup_seconds=0.3,
                             test_seconds=0.8, trace_seconds=10,
                             seed=5, slacks=(10, 70))


def test_slack_sweep_structure():
    result = figures.slack_sweep("tpcc", 0.6, ("polaris", "static-2.8"),
                                 TINY, "test sweep")
    assert set(result.series) == {"POLARIS", "2.8 GHz"}
    assert result.slacks == (10, 70)
    assert len(result.power("POLARIS")) == 2
    assert all(p > 0 for p in result.power("POLARIS"))
    assert all(0 <= f <= 1 for f in result.failure("2.8 GHz"))
    text = result.render()
    assert "slack=10" in text and "POLARIS" in text


def test_fig3_structure():
    result = figures.fig3_exec_times(TINY)
    assert set(result.rows) == {"NewOrder", "Payment", "OrderStatus",
                                "StockLevel", "Combined"}
    for name, (m28, p28, m12, p12) in result.rows.items():
        assert 0 < m28 <= p28, name
        assert m28 < m12, name  # slower at 1.2 GHz
    assert "Figure 3" in result.render()


def test_fig10_structure():
    result = figures.fig10_worldcup(TINY)
    assert set(result.summary) == {"POLARIS", "OnDemand", "Conservative"}
    assert len(result.trace) == TINY.trace_seconds
    for label, series in result.timelines.items():
        assert series, label
    rendered = result.render()
    assert "Failure Rate" in rendered


def test_fleet_frontier_structure():
    result = figures.fleet_elastic_frontier(TINY)
    labels = set(result.summary)
    assert any("elastic" in label for label in labels)
    assert any("static" in label for label in labels)
    assert len(result.trace) == TINY.trace_seconds
    assert result.peak_rate_tps > 100.0  # 1000x-scaled diurnal peak
    for label in labels:
        assert result.power(label) > 0
        assert 0 <= result.failure(label) <= 1
        assert set(result.per_shard[label]) == {"shard0", "shard1"}
    rendered = result.render()
    assert "provisioning frontier" in rendered
    assert "Stale Bounces" in rendered


def test_fig11_structure():
    result = figures.fig11_differentiation(TINY)
    assert ("POLARIS", "gold") in result.failures
    assert ("POLARIS", "silver") in result.failures
    assert result.power["POLARIS"] > 0
    assert isinstance(result.gap("POLARIS"), float)
    assert "gold" in result.render()


def test_theory_competitive_structure():
    result = figures.theory_competitive(trials=2, jobs=6)
    assert len(result.agreeable_polaris_vs_oa) == 2
    assert len(result.oa_vs_yds) == 2
    for ratio in result.agreeable_polaris_vs_oa:
        assert ratio == pytest.approx(1.0, rel=1e-6)
    assert "Thm 4.3" in result.render()


def test_overhead_structure():
    result = figures.polaris_overhead(queue_lengths=(0, 8), repeats=20)
    assert set(result.micros) == {0, 8}
    assert all(us > 0 for us in result.micros.values())
    assert "queue length" in result.render()


def test_figure_options_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "8")
    options = figures.FigureOptions.from_env()
    assert options.test_seconds == pytest.approx(8.0)
    assert options.workers == 8
    monkeypatch.delenv("REPRO_BENCH_SCALE")
    monkeypatch.delenv("REPRO_BENCH_WORKERS")
    assert figures.FigureOptions.from_env().workers == 16


def test_cli_parser():
    from repro.harness.cli import COMMANDS, build_parser
    parser = build_parser()
    args = parser.parse_args(["theory", "--workers", "4"])
    assert args.figure == "theory"
    assert args.workers == 4
    assert set(COMMANDS) >= {"fig3", "fig6", "fig7", "fig8", "fig9",
                             "fig10", "fig11", "fig12", "theory",
                             "overhead", "fleet"}


def test_cli_runs_theory(capsys):
    from repro.harness.cli import main
    assert main(["theory"]) == 0
    out = capsys.readouterr().out
    assert "Thm 4.3" in out
