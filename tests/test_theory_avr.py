"""AVR: the density-sum online algorithm."""

import random

import pytest

from repro.theory.avr import avr_energy, avr_schedule, avr_speed_profile
from repro.theory.instances import random_instance
from repro.theory.model import Job, ProblemInstance
from repro.theory.yds import yds_energy

ALPHA = 3.0


def test_profile_sums_densities():
    instance = ProblemInstance([
        Job(1, 0.0, 4.0, 2.0),   # density 0.5 over [0, 4]
        Job(2, 1.0, 3.0, 1.0),   # density 0.5 over [1, 3]
    ])
    profile = avr_speed_profile(instance)
    assert profile == [
        (0.0, 1.0, pytest.approx(0.5)),
        (1.0, 3.0, pytest.approx(1.0)),
        (3.0, 4.0, pytest.approx(0.5)),
    ]


def test_single_job_matches_yds():
    instance = ProblemInstance([Job(1, 0.0, 2.0, 3.0)])
    assert avr_energy(instance, ALPHA) == pytest.approx(
        yds_energy(instance, ALPHA))


def test_avr_feasible_on_random_instances():
    rng = random.Random(0)
    for _ in range(10):
        instance = random_instance(12, rng)
        schedule = avr_schedule(instance)
        schedule.check_feasible(instance)
        assert schedule.energy(ALPHA) == pytest.approx(
            avr_energy(instance, ALPHA), rel=1e-6)


def test_avr_within_its_competitive_bound():
    rng = random.Random(1)
    bound = 2 ** (ALPHA - 1) * ALPHA ** ALPHA
    for _ in range(10):
        instance = random_instance(10, rng)
        ratio = avr_energy(instance, ALPHA) / yds_energy(instance, ALPHA)
        assert 1.0 - 1e-9 <= ratio <= bound


def test_avr_weaker_than_oa_on_staggered_instance():
    """The classic AVR pathology: overlapping windows make it stack
    densities where smarter planning would flatten them."""
    jobs = [Job(i + 1, float(i), float(i) + 10.0, 1.0) for i in range(10)]
    instance = ProblemInstance(jobs)
    from repro.theory.oa import oa_schedule
    avr = avr_energy(instance, ALPHA)
    oa = oa_schedule(instance).energy(ALPHA)
    yds = yds_energy(instance, ALPHA)
    assert avr >= oa - 1e-9 >= yds - 1e-9
