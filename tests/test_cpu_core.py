"""The DVFS-capable core: execution timing, mid-run scaling, accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.core import Core, Job
from repro.cpu.cstates import CStateModel, DEEP_LADDER
from repro.cpu.pstates import PStateTable
from repro.sim.engine import Simulator


def make_core(sim, freq=2.8, **kwargs):
    table = PStateTable.from_frequencies([1.2, 1.4, 1.6, 2.0, 2.4, 2.8])
    return Core(sim, 0, table, initial_freq=freq, **kwargs)


def test_job_duration_scales_inversely_with_frequency(sim):
    for freq in (1.2, 2.0, 2.8):
        core = make_core(sim, freq=freq)
        done = []
        core.start_job(Job(5.6e-3), done.append)
        sim.run()
        assert done[0].elapsed == pytest.approx(5.6e-3 / freq)


def test_mid_run_speedup_shortens_completion(sim):
    core = make_core(sim, freq=1.4)
    done = []
    core.start_job(Job(2.8e-3), done.append)  # 2 ms at 1.4 GHz
    sim.schedule(0.5e-3, lambda: core.set_frequency(2.8))
    sim.run()
    # 0.5 ms at 1.4 (0.7 Gcycles done), 2.1 remaining at 2.8 = 0.75 ms.
    assert done[0].elapsed == pytest.approx(0.5e-3 + 0.75e-3)


def test_mid_run_slowdown_stretches_completion(sim):
    core = make_core(sim, freq=2.8)
    done = []
    core.start_job(Job(2.8e-3), done.append)  # 1 ms at 2.8
    sim.schedule(0.5e-3, lambda: core.set_frequency(1.4))
    sim.run()
    # 1.4 Gcycles done, 1.4 left at 1.4 GHz = 1 ms more.
    assert done[0].elapsed == pytest.approx(1.5e-3)


def test_multiple_frequency_changes_conserve_work(sim):
    core = make_core(sim, freq=2.8)
    done = []
    core.start_job(Job(2.8e-3), done.append)
    sim.schedule(0.2e-3, lambda: core.set_frequency(1.2))
    sim.schedule(0.6e-3, lambda: core.set_frequency(2.0))
    sim.schedule(0.9e-3, lambda: core.set_frequency(2.8))
    sim.run()
    # Work executed: 0.2ms*2.8 + 0.4ms*1.2 + 0.3ms*2.0 = 1.64 Gc;
    # remaining 1.16 Gc at 2.8 = 0.4142857 ms after t=0.9 ms.
    assert done[0].elapsed == pytest.approx(0.9e-3 + 1.16e-3 / 2.8)


def test_setting_same_frequency_is_noop(sim):
    core = make_core(sim)
    core.set_frequency(2.8)
    assert core.freq_transitions == 0


def test_frequency_must_be_on_grid(sim):
    core = make_core(sim)
    with pytest.raises(ValueError):
        core.set_frequency(2.5)


def test_busy_core_rejects_second_job(sim):
    core = make_core(sim)
    core.start_job(Job(1.0))
    with pytest.raises(RuntimeError):
        core.start_job(Job(1.0))


def test_energy_integration_busy_and_idle(sim):
    core = make_core(sim, freq=2.8)
    active = core.power_model.active_power(2.8)
    idle = core.power_model.idle_power(2.8)
    core.start_job(Job(2.8))  # exactly 1 s at 2.8 GHz
    sim.run()
    assert core.energy_at(1.0) == pytest.approx(active * 1.0)
    # One second of idle afterwards.
    assert core.energy_at(2.0) == pytest.approx(active + idle)


def test_energy_split_across_frequencies(sim):
    core = make_core(sim, freq=1.2)
    p12 = core.power_model.active_power(1.2)
    p28 = core.power_model.active_power(2.8)
    core.start_job(Job(1.2 * 1.0 + 2.8 * 0.5))  # 1 s at 1.2 then 0.5 s at 2.8
    sim.schedule(1.0, lambda: core.set_frequency(2.8))
    sim.run()
    assert sim.now == pytest.approx(1.5)
    assert core.energy_at(1.5) == pytest.approx(p12 * 1.0 + p28 * 0.5)


def test_busy_seconds_accounting(sim):
    core = make_core(sim)
    core.start_job(Job(2.8))  # 1 s
    sim.run()
    assert core.busy_seconds_at(sim.now) == pytest.approx(1.0)
    assert core.busy_seconds_at(sim.now + 5.0) == pytest.approx(1.0)
    core.start_job(Job(1.4))  # 0.5 s more
    sim.run()
    assert core.busy_seconds_at(sim.now) == pytest.approx(1.5)


def test_busy_seconds_includes_open_segment(sim):
    core = make_core(sim)
    core.start_job(Job(28.0))  # 10 s job
    sim.schedule(2.0, sim.stop)
    sim.run()
    assert core.busy_seconds_at(2.0) == pytest.approx(2.0)


def test_freq_residency(sim):
    core = make_core(sim, freq=1.2)
    core.start_job(Job(1.2))  # 1 s at 1.2
    sim.run()
    core.set_frequency(2.8)
    sim.schedule(1.0, lambda: None)
    sim.run()
    core.flush_accounting()
    assert core.freq_residency[1.2] == pytest.approx(1.0)
    assert core.freq_residency[2.8] == pytest.approx(1.0)


def test_transition_latency_stalls_job(sim):
    core = make_core(sim, freq=1.4, transition_latency=100e-6)
    done = []
    core.start_job(Job(2.8e-3), done.append)
    sim.schedule(0.5e-3, lambda: core.set_frequency(2.8))
    sim.run()
    assert done[0].elapsed == pytest.approx(0.5e-3 + 100e-6 + 0.75e-3)


def test_wake_latency_after_deep_idle(sim):
    core = make_core(sim, cstates=CStateModel(DEEP_LADDER))
    sim.schedule(1.0, lambda: core.start_job(Job(2.8e-3)))
    sim.run()
    # 1 s idle reaches C6 (133 us wake) before the 1 ms job.
    assert sim.now == pytest.approx(1.0 + 133e-6 + 1e-3)


def test_running_elapsed(sim):
    core = make_core(sim)
    core.start_job(Job(28.0))
    sim.schedule(3.0, sim.stop)
    sim.run()
    assert core.running_elapsed() == pytest.approx(3.0)


def test_job_records_dispatch_freq(sim):
    core = make_core(sim, freq=2.0)
    job = Job(2.0e-3)
    core.start_job(job)
    sim.run()
    assert job.dispatch_freq == 2.0


def test_zero_work_job_completes_immediately(sim):
    core = make_core(sim)
    done = []
    core.start_job(Job(0.0), done.append)
    sim.run()
    assert done and done[0].elapsed == 0.0


def test_negative_work_rejected():
    with pytest.raises(ValueError):
        Job(-1.0)


@settings(max_examples=50, deadline=None)
@given(
    work=st.floats(min_value=1e-6, max_value=10.0),
    switches=st.lists(
        st.tuples(st.floats(min_value=1e-6, max_value=0.5),
                  st.sampled_from([1.2, 1.6, 2.0, 2.4, 2.8])),
        max_size=5))
def test_property_work_conservation_under_dvfs(work, switches):
    """However the frequency changes mid-run, integrating frequency over
    the execution interval recovers exactly the job's work."""
    sim = Simulator()
    core = make_core(sim, freq=2.0)
    done = []
    core.start_job(Job(work), done.append)
    t = 0.0
    for delay, freq in switches:
        t += delay
        sim.schedule(t, lambda f=freq: core.set_frequency(f)
                     if core.busy else None)
    sim.run()
    job = done[0]
    # Reconstruct executed work from the residency deltas is complex;
    # instead check the invariant endpoint: the completion callback
    # fired, and elapsed time is consistent with min/max frequency.
    assert job.finish_time is not None
    assert job.elapsed >= work / 2.8 - 1e-12
    assert job.elapsed <= work / 1.2 + 1e-12
