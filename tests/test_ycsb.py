"""YCSB-style key-value workload."""

import random

import pytest

from repro.workloads import ycsb


@pytest.fixture(scope="module")
def loaded():
    config = ycsb.YcsbConfig(record_count=200)
    db = ycsb.build_database(config, seed=1)
    return db, config


def test_loader(loaded):
    db, config = loaded
    assert len(db.table("usertable")) == config.record_count
    row = db.table("usertable").get((ycsb._key(0),))
    assert len(row["field0"]) == config.field_length


def test_zipfian_skew():
    generator = ycsb.ZipfianGenerator(1000, theta=0.99)
    rng = random.Random(2)
    draws = [generator.next(rng) for _ in range(20000)]
    assert all(0 <= d < 1000 for d in draws)
    # Heavy head: the single most popular item gets a large share.
    head = sum(1 for d in draws if d == 0) / len(draws)
    assert head > 0.05
    # And the top decile dominates the bottom decile.
    top = sum(1 for d in draws if d < 100)
    bottom = sum(1 for d in draws if d >= 900)
    assert top > 5 * max(bottom, 1)


def test_zipfian_validation():
    with pytest.raises(ValueError):
        ycsb.ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ycsb.ZipfianGenerator(10, theta=1.0)


def test_latest_distribution_tracks_growth():
    generator = ycsb.LatestGenerator(100)
    rng = random.Random(3)
    early = [generator.next(rng) for _ in range(2000)]
    assert all(0 <= d < 100 for d in early)
    # Skewed toward the most recent (highest) ids.
    assert sum(1 for d in early if d >= 90) > sum(
        1 for d in early if d < 10)
    generator.grew_to(200)
    late = [generator.next(rng) for _ in range(2000)]
    assert max(late) > 150


def test_operations_functional(loaded):
    db, config = loaded
    state = ycsb.YcsbState(config)
    rng = random.Random(4)
    read = ycsb.op_read(db, rng, state)
    assert read["found"]
    update = ycsb.op_update(db, rng, state)
    assert update["found"]
    scan = ycsb.op_scan(db, rng, state)
    assert scan["scanned"] >= 1
    rmw = ycsb.op_read_modify_write(db, rng, state)
    assert rmw["found"]


def test_insert_extends_keyspace():
    config = ycsb.YcsbConfig(record_count=50)
    db = ycsb.build_database(config, seed=5)
    state = ycsb.YcsbState(config)
    rng = random.Random(6)
    before = len(db.table("usertable"))
    result = ycsb.op_insert(db, rng, state)
    assert len(db.table("usertable")) == before + 1
    assert state.record_count == 51
    # The new key is immediately readable.
    assert db.table("usertable").get_or_none((result["key"],)) is not None


def test_rmw_actually_modifies():
    config = ycsb.YcsbConfig(record_count=20)
    db = ycsb.build_database(config, seed=7)
    state = ycsb.YcsbState(config, distribution="uniform")
    rng = random.Random(8)
    snapshot = {r["y_id"]: dict(r) for r in db.table("usertable").scan_all()}
    changed = 0
    for _ in range(30):
        ycsb.op_read_modify_write(db, rng, state)
    for row in db.table("usertable").scan_all():
        if snapshot[row["y_id"]] != row:
            changed += 1
    assert changed >= 1


def test_make_spec_mixes():
    spec_a = ycsb.make_spec("a")
    assert {t.name for t in spec_a.types} == {"Read", "Update"}
    assert spec_a.mix_fraction("Read") == pytest.approx(0.5)
    spec_c = ycsb.make_spec("C")  # case-insensitive
    assert [t.name for t in spec_c.types] == ["Read"]
    spec_e = ycsb.make_spec("e", include_bodies=False)
    assert spec_e.type_named("Scan").body is None
    with pytest.raises(ValueError):
        ycsb.make_spec("z")


def test_request_distribution():
    assert ycsb.request_distribution("d") == "latest"
    assert ycsb.request_distribution("a") == "zipfian"


def test_harness_integration():
    from repro.harness import ExperimentConfig, run_experiment
    result = run_experiment(ExperimentConfig(
        benchmark="ycsb-b", scheme="polaris", slack=40.0,
        workers=2, warmup_seconds=0.3, test_seconds=1.0, seed=9))
    assert result.offered > 0
    assert set(result.per_workload_failure) <= {"Read", "Update"}


def test_state_choose_key_distributions():
    config = ycsb.YcsbConfig(record_count=100)
    rng = random.Random(10)
    zipf_state = ycsb.YcsbState(config, "zipfian")
    latest_state = ycsb.YcsbState(config, "latest")
    uniform_state = ycsb.YcsbState(config, "uniform")
    for state in (zipf_state, latest_state, uniform_state):
        keys = {state.choose_key(rng) for _ in range(50)}
        assert all(k.startswith("user") for k in keys)
