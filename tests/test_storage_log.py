"""WAL: group commit policy, crash semantics, redo-only replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.storage import log as wal
from repro.db.storage.log import LogManager, replay


def test_records_get_monotonic_lsns():
    log = LogManager()
    r1 = log.append(1, wal.KIND_INSERT, "t", (1,), after={"a": 1})
    r2 = log.append(1, wal.KIND_COMMIT)
    assert r2.lsn == r1.lsn + 1


def test_group_commit_forces_every_n_commits():
    log = LogManager(group_commit_size=3)
    for txn in range(1, 7):
        log.append(txn, wal.KIND_INSERT, "t", (txn,), after={"a": txn})
        log.append(txn, wal.KIND_COMMIT)
    # 6 commits with threshold 3 -> exactly 2 group forces.
    assert log.stats.group_forces == 2
    assert log.buffered_count == 0


def test_paper_default_is_100():
    assert LogManager().group_commit_size == 100


def test_buffer_not_durable_until_force():
    log = LogManager(group_commit_size=100)
    log.append(1, wal.KIND_INSERT, "t", (1,), after={"a": 1})
    log.append(1, wal.KIND_COMMIT)
    assert log.durable_records == []
    assert log.buffered_count == 2
    log.force()
    assert len(log.durable_records) == 2
    assert log.buffered_count == 0


def test_crash_drops_buffered_tail():
    log = LogManager(group_commit_size=100)
    log.append(1, wal.KIND_INSERT, "t", (1,), after={"a": 1})
    log.append(1, wal.KIND_COMMIT)
    log.force()
    log.append(2, wal.KIND_INSERT, "t", (2,), after={"a": 2})
    log.append(2, wal.KIND_COMMIT)
    survivors = log.crash()
    assert [r.txn_id for r in survivors] == [1, 1]


def test_replay_applies_only_committed():
    log = LogManager(group_commit_size=1)
    log.append(1, wal.KIND_INSERT, "t", (1,), after={"k": 1, "v": "a"})
    log.append(1, wal.KIND_COMMIT)
    log.append(2, wal.KIND_INSERT, "t", (2,), after={"k": 2, "v": "b"})
    # txn 2 never commits
    log.force()
    state = replay(log.durable_records)
    assert state == {"t": {(1,): {"k": 1, "v": "a"}}}


def test_replay_update_and_delete():
    log = LogManager(group_commit_size=1)
    log.append(1, wal.KIND_INSERT, "t", (1,), after={"k": 1, "v": "a"})
    log.append(1, wal.KIND_UPDATE, "t", (1,),
               before={"k": 1, "v": "a"}, after={"k": 1, "v": "b"})
    log.append(1, wal.KIND_INSERT, "t", (2,), after={"k": 2, "v": "x"})
    log.append(1, wal.KIND_DELETE, "t", (2,), before={"k": 2, "v": "x"})
    log.append(1, wal.KIND_COMMIT)
    log.force()
    state = replay(log.durable_records)
    assert state == {"t": {(1,): {"k": 1, "v": "b"}}}


def test_append_copies_row_images():
    log = LogManager()
    row = {"k": 1}
    record = log.append(1, wal.KIND_INSERT, "t", (1,), after=row)
    row["k"] = 99
    assert record.after == {"k": 1}


def test_abort_counted():
    log = LogManager()
    log.append(1, wal.KIND_ABORT)
    assert log.stats.aborts == 1


def test_group_commit_size_validation():
    with pytest.raises(ValueError):
        LogManager(group_commit_size=0)


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=5),   # txn id
              st.integers(min_value=0, max_value=9),   # key
              st.integers(min_value=0, max_value=99),  # value
              st.booleans()),                          # commit after?
    max_size=30))
def test_property_replay_equals_committed_effects(ops):
    """Replaying the forced log reproduces exactly the writes of the
    transactions that committed."""
    log = LogManager(group_commit_size=10)
    committed = set()
    last_write = {}
    for txn, key, value, commit in ops:
        log.append(txn, wal.KIND_INSERT if (key,) not in last_write
                   else wal.KIND_UPDATE, "t", (key,),
                   after={"k": key, "v": (txn, value)})
        last_write[(key,)] = (txn, key, value)
        if commit:
            log.append(txn, wal.KIND_COMMIT)
            committed.add(txn)
    log.force()
    state = replay(log.durable_records).get("t", {})
    # Recompute expected: apply writes in order, only committed txns.
    expected = {}
    for txn, key, value, commit in ops:
        if txn in committed:
            expected[(key,)] = {"k": key, "v": (txn, value)}
    assert state == expected
