"""Admission control: the PolarisShedScheduler and its server wiring."""

import pytest

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.request import Request, RequestState
from repro.core.variants import PolarisShedScheduler
from repro.core.workload import Workload
from repro.db.server import DatabaseServer, ServerConfig
from repro.metrics.latency import LatencyRecorder

FREQS = (1.2, 1.6, 2.0, 2.4, 2.8)


def primed_scheduler():
    estimator = ExecutionTimeEstimator(window=4)
    for freq in FREQS:
        estimator.prime("w", freq, 1e-3 * 2.8 / freq, count=4)
    return PolarisShedScheduler(FREQS, estimator)


def test_feasible_request_admitted():
    scheduler = primed_scheduler()
    request = Request(Workload("w", 0.010), "w", 0.0, 1.0)
    assert scheduler.admits(0.0, None, 0.0, request)


def test_hopeless_request_rejected():
    scheduler = primed_scheduler()
    # Deadline shorter than the request's own p95 at max frequency.
    request = Request(Workload("w", 0.5e-3), "w", 0.0, 1.0)
    assert not scheduler.admits(0.0, None, 0.0, request)


def test_rejection_considers_running_and_queue():
    scheduler = primed_scheduler()
    workload = Workload("w", 2.5e-3)
    running = Request(workload, "w", 0.0, 1.0)
    # Alone behind the running transaction (1 ms left): 2 ms < 2.5 ms.
    assert scheduler.admits(0.0, running, 0.0, Request(workload, "w",
                                                       0.0, 1.0))
    # Behind the running transaction plus two queued earlier-deadline
    # requests: 4 ms > 2.5 ms -> reject.
    scheduler.enqueue(Request(Workload("w", 1e-3), "w", 0.0, 1.0))
    scheduler.enqueue(Request(Workload("w", 1.5e-3), "w", 0.0, 1.0))
    assert not scheduler.admits(0.0, running, 0.0,
                                Request(workload, "w", 0.0, 1.0))


def test_later_deadline_queue_entries_ignored():
    scheduler = primed_scheduler()
    # A queued request with a *later* deadline does not delay this one
    # (EDF runs the earlier deadline first).
    scheduler.enqueue(Request(Workload("w", 1.0), "w", 0.0, 1.0))
    request = Request(Workload("w", 2.5e-3), "w", 0.0, 1.0)
    assert scheduler.admits(0.0, None, 0.0, request)


def test_base_polaris_admits_everything():
    from repro.core.polaris import PolarisScheduler
    scheduler = PolarisScheduler(FREQS, ExecutionTimeEstimator())
    doomed = Request(Workload("w", 1e-9), "w", 0.0, 1.0)
    assert scheduler.admits(0.0, None, 0.0, doomed)


def test_server_routes_rejections_to_listeners(sim):
    config = ServerConfig(workers=1)
    estimator = ExecutionTimeEstimator(window=4)
    for freq in FREQS:
        estimator.prime("w", freq, 1e-3 * 2.8 / freq, count=4)
    server = DatabaseServer(
        sim, config,
        scheduler_factory=lambda: PolarisShedScheduler(
            config.scheduler_frequencies, estimator))
    recorder = LatencyRecorder()
    recorder.recording = True
    server.add_completion_listener(recorder.on_completion)
    server.add_rejection_listener(recorder.on_rejection)

    accepted = Request(Workload("w", 0.050), "w", 0.0, 2.8e-3)
    hopeless = Request(Workload("w", 0.3e-3), "w", 0.0, 2.8e-3)
    server.submit(accepted)
    server.submit(hopeless)
    sim.run()

    assert accepted.state is RequestState.DONE
    assert hopeless.state is RequestState.REJECTED
    assert server.rejected == 1
    assert recorder.total_offered == 2
    assert recorder.total_missed == 1
    assert recorder.total_rejected == 1
    assert recorder.failure_rate == pytest.approx(0.5)


def test_rejected_requests_respect_recorder_window():
    recorder = LatencyRecorder()
    recorder.set_window(1.0, 2.0)
    outside = Request(Workload("w", 0.01), "w", 0.5, 1.0)
    inside = Request(Workload("w", 0.01), "w", 1.5, 1.0)
    recorder.on_rejection(outside)
    recorder.on_rejection(inside)
    assert recorder.total_rejected == 1
    assert recorder.total_offered == 1


def test_shed_scheme_registered():
    from repro.harness.schemes import scheme_named
    scheme = scheme_named("polaris-shed")
    assert scheme.uses_scheduler
    assert scheme.label == "POLARIS-SHED"
