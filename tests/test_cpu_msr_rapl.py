"""MSR register file and RAPL package counters."""

import pytest

from repro.cpu.core import Core, Job
from repro.cpu.msr import (
    IA32_PERF_CTL, IA32_PERF_STATUS, MSR_PKG_ENERGY_STATUS,
    MSR_RAPL_POWER_UNIT, MsrError, MsrFile, decode_perf_ctl, encode_perf_ctl,
)
from repro.cpu.pstates import PStateTable
from repro.cpu.rapl import RaplPackage
from repro.sim.engine import Simulator


@pytest.fixture
def core(sim):
    table = PStateTable.from_frequencies([1.2, 1.6, 2.0, 2.4, 2.8])
    return Core(sim, 0, table, initial_freq=1.2)


def test_perf_ctl_roundtrip():
    for freq in (1.2, 1.6, 2.0, 2.4, 2.8):
        assert decode_perf_ctl(encode_perf_ctl(freq)) == freq


def test_perf_ctl_encoding_matches_sdm():
    # ratio in bits 15:8; 2.8 GHz = ratio 28.
    assert encode_perf_ctl(2.8) == 28 << 8
    assert decode_perf_ctl(28 << 8) == 2.8


def test_write_perf_ctl_changes_core_frequency(core):
    msr = MsrFile(core)
    msr.write(IA32_PERF_CTL, encode_perf_ctl(2.4))
    assert core.freq == 2.4
    assert msr.read(IA32_PERF_STATUS) == encode_perf_ctl(2.4)


def test_write_unsupported_msr_rejected(core):
    with pytest.raises(MsrError):
        MsrFile(core).write(0x123, 1)


def test_decode_rejects_reserved_low_bits():
    # Ratio 28 plus junk in bits 7:0 is a corrupted write, not 2.8 GHz.
    with pytest.raises(MsrError):
        decode_perf_ctl((28 << 8) | 0x01)


def test_decode_rejects_bits_above_ratio_field():
    # The SDM's IDA-disengage bit (and anything else above bit 15) is
    # unimplemented here; setting it must not decode silently.
    with pytest.raises(MsrError):
        decode_perf_ctl((28 << 8) | (1 << 16))


def test_decode_rejects_negative_and_ratio_zero():
    with pytest.raises(MsrError):
        decode_perf_ctl(-1)
    with pytest.raises(MsrError):
        decode_perf_ctl(0)


def test_encode_rejects_out_of_range_frequency():
    with pytest.raises(MsrError):
        encode_perf_ctl(0.0)
    with pytest.raises(MsrError):
        encode_perf_ctl(26.0)  # ratio 260 > 0xFF


def test_encode_decode_roundtrip_over_encodable_ratios():
    for ratio in (1, 12, 28, 255):
        freq = round(ratio * 0.1, 1)
        assert decode_perf_ctl(encode_perf_ctl(freq)) == freq


def test_write_garbage_perf_ctl_rejected_before_core_touched(core):
    msr = MsrFile(core)
    before = core.freq
    for value in (-1, 0, (28 << 8) | 0x40, 1 << 20):
        with pytest.raises(MsrError):
            msr.write(IA32_PERF_CTL, value)
    assert core.freq == before


def test_write_off_table_frequency_rejected(core):
    # Ratio 5 (0.5 GHz) encodes fine but is not a P-state of this core.
    with pytest.raises(MsrError):
        MsrFile(core).write(IA32_PERF_CTL, encode_perf_ctl(0.5))


def test_malformed_write_raises_without_consulting_fault_hook(core):
    msr = MsrFile(core)
    calls = []
    msr.fault_hook = lambda addr, value: calls.append(value)
    with pytest.raises(MsrError):
        msr.write(IA32_PERF_CTL, (28 << 8) | 0x01)
    assert calls == []  # validation precedes injection


def test_fault_hook_sees_well_formed_writes(core):
    msr = MsrFile(core)
    seen = []

    def hook(address, value):
        seen.append((address, value))
        return None

    msr.fault_hook = hook
    msr.write(IA32_PERF_CTL, encode_perf_ctl(2.0))
    assert seen == [(IA32_PERF_CTL, encode_perf_ctl(2.0))]
    assert core.freq == 2.0


def test_read_unsupported_msr_rejected(core):
    with pytest.raises(MsrError):
        MsrFile(core).read(0x123)


def test_rapl_energy_status_counts(sim, core):
    package = RaplPackage(0, [core])
    msr = MsrFile(core, rapl=package)
    unit = msr.energy_unit_joules()
    assert unit == pytest.approx(1.0 / 65536)
    core.start_job(Job(1.2))  # 1 s at 1.2 GHz
    sim.run()
    counts = msr.read(MSR_PKG_ENERGY_STATUS)
    expected = core.power_model.active_power(1.2) * 1.0
    assert counts * unit == pytest.approx(expected, rel=1e-4)


def test_rapl_counter_wraps_32bit(sim, core):
    package = RaplPackage(0, [core])
    msr = MsrFile(core, rapl=package)
    # 2^32 counts at 2^-16 J/count = 65536 J; force enough idle time.
    hours = 70000 / core.power_model.idle_power(1.2)
    sim.schedule(hours, lambda: None)
    sim.run()
    raw = msr.read(MSR_PKG_ENERGY_STATUS)
    assert 0 <= raw < 1 << 32
    true_counts = int(package.energy_joules(sim.now) * 65536)
    assert raw == true_counts & 0xFFFFFFFF
    assert true_counts >= 1 << 32  # it really did wrap


def test_energy_status_requires_rapl(core):
    with pytest.raises(MsrError):
        MsrFile(core).read(MSR_PKG_ENERGY_STATUS)


def test_rapl_power_unit_register(core):
    msr = MsrFile(core)
    assert (msr.read(MSR_RAPL_POWER_UNIT) >> 8) & 0x1F == 16


def test_rapl_package_average_power(sim, core):
    package = RaplPackage(0, [core])
    e0 = package.energy_joules(0.0)
    core.start_job(Job(2.4))  # 2 s at 1.2
    sim.run()
    avg = package.average_power(0.0, e0, 2.0)
    assert avg == pytest.approx(core.power_model.active_power(1.2))


def test_rapl_power_limit_steps_cores_down(sim, core):
    core.set_frequency(2.8)
    package = RaplPackage(0, [core])
    core.start_job(Job(28.0))  # long job, active at 2.8
    limit = core.power_model.active_power(2.0) + 0.01
    package.set_power_limit(limit)
    package.enforce_limit()
    assert core.freq <= 2.0
    assert package.power_watts() <= limit


def test_rapl_limit_validation(sim, core):
    package = RaplPackage(0, [core])
    with pytest.raises(ValueError):
        package.set_power_limit(0.0)
    package.set_power_limit(5.0)
    assert package.power_limit == 5.0
    package.set_power_limit(None)
    assert package.power_limit is None


def test_rapl_needs_cores():
    with pytest.raises(ValueError):
        RaplPackage(0, [])


def test_rapl_average_power_interval_validation(sim, core):
    package = RaplPackage(0, [core])
    with pytest.raises(ValueError):
        package.average_power(1.0, 0.0, 1.0)
