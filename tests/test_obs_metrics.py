"""repro.obs.metrics: instruments, registry, virtual-time sampler."""

import pytest

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricRegistry, MetricsSampler,
)
from repro.obs.trace import Tracer
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_monotone():
    c = Counter("txn_completed")
    c.inc()
    c.inc(2.5)
    assert c.sample() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_set_and_callback():
    g = Gauge("queue_depth")
    g.set(4)
    assert g.sample() == 4.0
    state = {"depth": 7}
    live = Gauge("live", fn=lambda: state["depth"])
    assert live.sample() == 7.0
    state["depth"] = 2
    assert live.sample() == 2.0


def test_histogram_buckets_and_quantile():
    h = Histogram("lat", bounds=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count == 5
    assert h.bucket_counts == [1, 2, 1, 1]
    assert h.sample() == pytest.approx(sum((0.005, 0.05, 0.05, 0.5, 5.0)) / 5)
    assert h.quantile(0.5) == 0.1
    assert h.quantile(1.0) == float("inf")
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_empty():
    h = Histogram("lat")
    assert h.sample() == 0.0
    assert h.quantile(0.5) == 0.0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_registration_and_sampling():
    reg = MetricRegistry()
    c = reg.counter("b_counter")
    reg.gauge("a_gauge", fn=lambda: 9.0)
    c.inc(3)
    assert reg.names() == ["a_gauge", "b_counter"]
    assert reg.sample_all() == [("a_gauge", 9.0), ("b_counter", 3.0)]
    assert "a_gauge" in reg and len(reg) == 2
    assert reg.get("b_counter") is c


def test_registry_rejects_duplicates():
    reg = MetricRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
def test_sampler_samples_on_virtual_cadence():
    sim = Simulator()
    reg = MetricRegistry()
    reg.gauge("clock", fn=lambda: sim.now)
    sampler = MetricsSampler(sim, reg, interval_s=1.0)
    sampler.start()
    sim.schedule(3.5, sim.stop)
    sim.run()
    points = sampler.series["clock"]
    assert [t for t, _ in points] == [0.0, 1.0, 2.0, 3.0]
    assert [v for _, v in points] == [0.0, 1.0, 2.0, 3.0]


def test_sampler_stop_and_final_sample():
    sim = Simulator()
    reg = MetricRegistry()
    counter = reg.counter("done")
    sampler = MetricsSampler(sim, reg, interval_s=1.0)
    sampler.start()
    sim.schedule(2.5, sim.stop)
    sim.run()
    sampler.stop()
    counter.inc(5)
    sampler.sample_once()
    points = sampler.series["done"]
    assert points[-1] == (2.5, 5.0)
    # sample_once at an already-sampled time is a no-op.
    sampler.sample_once()
    assert points[-1] == (2.5, 5.0)
    # Stopping cancelled the pending event: nothing fires afterwards.
    sim.schedule(5.0, sim.stop)
    sim.run()
    assert len(sampler.series["done"]) == len(points)


def test_sampler_mirrors_onto_tracer():
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    reg = MetricRegistry()
    reg.gauge("power_watts", fn=lambda: 42.0)
    sampler = MetricsSampler(sim, reg, interval_s=1.0, tracer=tracer)
    sampler.start()
    sim.schedule(1.5, sim.stop)
    sim.run()
    counters = [e for e in tracer.events if e.ph == "C"]
    assert len(counters) == 2
    assert all(e.name == "power_watts" and e.args == {"value": 42.0}
               for e in counters)


def test_sampler_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        MetricsSampler(sim, MetricRegistry(), interval_s=0.0)
