"""Functional TPC-C: loader, transaction bodies, consistency conditions."""

import random

import pytest

from repro.db.storage.errors import Rollback
from repro.workloads import tpcc


@pytest.fixture(scope="module")
def loaded():
    config = tpcc.TpccConfig(warehouses=1, customers_per_district=20,
                             items=50)
    db = tpcc.build_database(config, seed=1)
    return db, config


def test_loader_row_counts(loaded):
    db, config = loaded
    counts = db.checkpoint_rowcounts()
    assert counts["warehouse"] == 1
    assert counts["district"] == config.districts_per_warehouse
    assert counts["customer"] == (config.districts_per_warehouse
                                  * config.customers_per_district)
    assert counts["item"] == config.items
    assert counts["stock"] == config.items
    assert counts["orders"] == (config.districts_per_warehouse
                                * config.initial_orders_per_district)


def test_initial_state_is_consistent(loaded):
    db, config = loaded
    assert tpcc.check_consistency(db, config) == []


def test_new_order_places_order():
    config = tpcc.TpccConfig(new_order_rollback_rate=0.0)
    db = tpcc.build_database(config, seed=2)
    district_before = {
        (d["d_w_id"], d["d_id"]): d["d_next_o_id"]
        for d in db.table("district").scan_all()}
    result = tpcc.new_order(db, random.Random(3), config, now=1.0)
    key = next((k for k, v in district_before.items()), None)
    del key
    # The order exists with its lines and the district counter advanced.
    orders = [o for o in db.table("orders").scan_all()
              if o["o_id"] == result["o_id"] and o["o_carrier_id"] is None]
    assert len(orders) == 1
    order = orders[0]
    lines = db.table("order_line").lookup(
        "by_order", (order["o_w_id"], order["o_d_id"], order["o_id"]))
    assert len(lines) == order["o_ol_cnt"]
    assert result["total"] > 0
    district = db.table("district").get((order["o_w_id"], order["o_d_id"]))
    assert district["d_next_o_id"] == order["o_id"] + 1
    new_order_row = (order["o_w_id"], order["o_d_id"], order["o_id"])
    assert new_order_row in db.table("new_order")


def test_new_order_rollback_leaves_no_trace():
    config = tpcc.TpccConfig(new_order_rollback_rate=1.0)
    db = tpcc.build_database(config, seed=2)
    orders_before = len(db.table("orders"))
    district_before = [d["d_next_o_id"]
                       for d in db.table("district").scan_all()]
    with pytest.raises(Rollback):
        tpcc.new_order(db, random.Random(3), config, now=1.0)
    assert len(db.table("orders")) == orders_before
    assert [d["d_next_o_id"] for d in db.table("district").scan_all()] \
        == district_before
    assert tpcc.check_consistency(db, config) == []


def test_payment_updates_balances():
    config = tpcc.TpccConfig()
    db = tpcc.build_database(config, seed=4)
    warehouse_before = db.table("warehouse").get((1,))["w_ytd"]
    result = tpcc.payment(db, random.Random(5), config, now=2.0)
    warehouse_after = db.table("warehouse").get((1,))["w_ytd"]
    assert warehouse_after == pytest.approx(warehouse_before
                                            + result["amount"])
    history = list(db.table("history").scan_all())
    assert len(history) == 1
    assert history[0]["h_amount"] == result["amount"]


def test_payment_by_last_name_uses_index():
    config = tpcc.TpccConfig()
    db = tpcc.build_database(config, seed=4)
    rng = random.Random(11)
    # Force the by-last-name path by running until one resolves by name.
    for _ in range(30):
        result = tpcc.payment(db, rng, config)
        assert 1 <= result["c_id"] <= config.customers_per_district


def test_order_status_reads_latest_order():
    config = tpcc.TpccConfig(new_order_rollback_rate=0.0)
    db = tpcc.build_database(config, seed=6)
    rng = random.Random(7)
    placed = tpcc.new_order(db, rng, config, now=1.0)
    # Query the same customer via a pinned rng sequence.
    status = None
    probe = random.Random(8)
    for _ in range(200):
        status = tpcc.order_status(db, probe, config)
        if status["c_id"] == placed["c_id"] and status["last_order"]:
            break
    assert status is not None
    assert status["line_count"] >= 0


def test_stock_level_counts_low_stock():
    config = tpcc.TpccConfig()
    db = tpcc.build_database(config, seed=9)
    result = tpcc.stock_level(db, random.Random(10), config, threshold=101)
    # Threshold above max quantity: every distinct item is low.
    assert result["low_stock"] > 0
    result_none = tpcc.stock_level(db, random.Random(10), config, threshold=0)
    assert result_none["low_stock"] == 0


def test_mixed_workload_preserves_consistency():
    config = tpcc.TpccConfig(warehouses=2, customers_per_district=10,
                             items=40)
    db = tpcc.build_database(config, seed=20)
    rng = random.Random(21)
    bodies = list(tpcc.TRANSACTION_BODIES.values())
    executed = 0
    for i in range(300):
        body = bodies[i % len(bodies)]
        try:
            body(db, rng, config, now=float(i))
            executed += 1
        except Rollback:
            pass
    assert executed > 250
    assert tpcc.check_consistency(db, config) == []


def test_customer_last_name_generator():
    assert tpcc.customer_last_name(0) == "BARBARBAR"
    assert tpcc.customer_last_name(123) == "OUGHTABLEPRI"
    assert tpcc.customer_last_name(999) == "EINGEINGEING"


def test_make_spec_matches_figure3():
    spec = tpcc.make_spec()
    assert {t.name for t in spec.types} == set(tpcc.FIGURE3_CALIBRATION)
    assert spec.mix_fraction("NewOrder") == pytest.approx(0.45)
    assert spec.mix_fraction("Payment") == pytest.approx(0.47)
    new_order = spec.type_named("NewOrder")
    assert new_order.service.mean_seconds == pytest.approx(2059e-6)
    assert new_order.service.p95_seconds == pytest.approx(5414e-6)
    # Bodies attached by default, omitted on request.
    assert spec.type_named("Payment").body is tpcc.payment
    assert tpcc.make_spec(include_bodies=False).type_named("Payment").body \
        is None
