"""ElasticController: thresholds, hysteresis, and queue migration."""

import random

import pytest

from repro.core.request import Request
from repro.core.workload import Workload
from repro.db.server import DatabaseServer, ServerConfig
from repro.fleet.config import FleetConfig
from repro.fleet.controller import ElasticController
from repro.fleet.node import Fleet, Node, NodeState, PRIMARY, REPLICA
from repro.fleet.router import ClusterRouter, ShardState
from repro.sim.engine import Simulator

WORKLOAD = Workload("w", 10.0)

CONFIG = FleetConfig(
    shards=1, replicas_per_shard=2, node_workers=1,
    controller_interval_s=0.1, controller_window_ticks=2,
    scale_out_utilization=0.55, scale_in_utilization=0.2,
    controller_cooldown_ticks=1,
    boot_latency_min_s=0.2, boot_latency_max_s=0.2,
    drain_grace_s=0.1, drain_poll_s=0.05)

PER_NODE_PEAK_TPS = 100.0


def build(sim, parked_replicas=0):
    nodes = []
    for node_id in range(3):
        role = PRIMARY if node_id == 0 else REPLICA
        server = DatabaseServer(sim, ServerConfig(workers=1,
                                                  request_handlers=1))
        nodes.append(Node(sim, node_id, 0, role, server,
                          parked_floor_watts=4.0,
                          start_parked=(role == REPLICA
                                        and node_id > 2 - parked_replicas)))
    fleet = Fleet(sim, nodes)
    shard = ShardState(0, nodes[0], nodes[1:])
    router = ClusterRouter(sim, [shard], frozenset())
    controller = ElasticController(sim, fleet, router, CONFIG,
                                   PER_NODE_PEAK_TPS, random.Random(0))
    return fleet, shard, router, controller


def drive(sim, router, rate_tps, until, work=1e-6):
    """Offer ``rate_tps`` writes/s to the router until ``until``."""
    interval = 1.0 / rate_tps

    def arrival():
        router.route(Request(WORKLOAD, "Write", sim.now, work), key=0)
        if sim.now + interval < until:
            sim.schedule(interval, arrival)

    sim.schedule(interval, arrival)


def advance(sim, until):
    sim.schedule_at(until, lambda: None)
    sim.run(until=until)


def test_scale_out_under_load(sim):
    fleet, shard, router, controller = build(sim, parked_replicas=2)
    assert fleet.active_count() == 1
    controller.start()
    # 200 tps against one active node of peak 100: utilization 2.0.
    drive(sim, router, 200.0, until=2.0)
    advance(sim, 2.0)
    controller.stop()
    assert controller.actions["scale_out"] >= 1
    assert fleet.active_count() >= 2
    assert sum(n.boots for n in fleet.nodes) \
        == controller.actions["scale_out"]


def test_scale_in_when_idle(sim):
    fleet, shard, router, controller = build(sim)
    assert fleet.active_count() == 3
    controller.start()
    advance(sim, 2.0)  # no load at all
    controller.stop()
    assert controller.actions["scale_in"] == 2
    # Replicas parked; the primary never is.
    assert fleet.active_count() == 1
    assert fleet.nodes[0].state is NodeState.ACTIVE


def test_cooldown_paces_consecutive_actions(sim):
    fleet, shard, router, controller = build(sim)
    controller.start()
    # Window fills at the 0.2 s tick -> first scale-in there.  The
    # cooldown (1 tick) blanks the 0.3 s tick, so the second scale-in
    # cannot land before 0.4 s.
    advance(sim, 0.35)
    assert controller.actions["scale_in"] == 1
    advance(sim, 0.45)
    controller.stop()
    assert controller.actions["scale_in"] == 2


def test_moderate_load_is_hysteresis_stable(sim):
    fleet, shard, router, controller = build(sim)
    controller.start()
    # 120 tps over 3 active nodes: utilization 0.4, inside the band.
    drive(sim, router, 120.0, until=2.0)
    advance(sim, 2.0)
    controller.stop()
    assert controller.actions["scale_in"] == 0
    assert controller.actions["scale_out"] == 0


def test_migration_moves_queued_requests_and_credit():
    sim = Simulator(sanitize=True)  # audit fleet books at migration
    fleet, shard, router, controller = build(sim)
    victim = shard.replicas[-1]
    # Fill the victim: one executing (long) plus four queued requests.
    requests = [Request(WORKLOAD, "Write", sim.now, w)
                for w in [2.8] + [2.8e-3] * 4]
    for request in requests:
        victim.server.submit(request)
    sim.run(until=0.01)
    assert victim.server.total_queue_length() == 4
    before = sum(n.server.submitted for n in fleet.nodes)

    victim.begin_drain(controller._migrate_off, grace_s=0.1, poll_s=0.05)

    assert controller.actions["migrations"] == 1
    assert controller.actions["migrated_requests"] == 4
    assert victim.server.total_queue_length() == 0
    # Credit moved with the requests: fleet-scope sum unchanged, books
    # balanced per node (sanitize_accounting ran inside _migrate_off).
    assert sum(n.server.submitted for n in fleet.nodes) == before
    assert victim.server.submitted == 1  # the in-flight long request
    fleet.sanitize_accounting()
    # Everything completes: nothing lost, nothing double-run.
    sim.run(until=10.0)
    advance(sim, 10.0)
    assert sum(w.completed for n in fleet.nodes
               for w in n.server.workers) == 5
    assert all(r.finish_time is not None for r in requests)
    fleet.sanitize_accounting()


def test_migration_with_empty_queues_is_a_noop(sim):
    fleet, shard, router, controller = build(sim)
    victim = shard.replicas[0]
    victim.begin_drain(controller._migrate_off, grace_s=0.1, poll_s=0.05)
    assert controller.actions["migrations"] == 0
    advance(sim, 1.0)
    assert victim.state is NodeState.PARKED


def test_in_motion_shard_takes_no_further_action(sim):
    fleet, shard, router, controller = build(sim)
    shard.replicas[0]._transition(NodeState.DRAINING)
    controller.start()
    advance(sim, 1.0)
    controller.stop()
    # The draining replica never parks (no drain poll was scheduled),
    # so the shard stays in motion and the controller must hold off.
    assert controller.actions["scale_in"] == 0
    assert controller.actions["scale_out"] == 0


def test_crashed_primary_pins_the_last_active_replica(sim):
    """Regression: with the primary crashed, the shard's last active
    replica is its only serving node and only promotion candidate ---
    idle or not, scale-in must never park it."""
    fleet, shard, router, controller = build(sim)
    shard.primary.crash()
    controller.start()
    advance(sim, 2.0)  # no load: a healthy shard would park everything
    controller.stop()
    assert controller.actions["scale_in"] == 1
    survivors = [r for r in shard.replicas
                 if r.state is NodeState.ACTIVE]
    assert len(survivors) == 1


def test_warming_primary_pins_the_last_active_replica(sim):
    """Same guard while the primary is still booting (a failover spare
    that has not come active yet)."""
    fleet, shard, router, controller = build(sim)
    shard.primary._transition(NodeState.WARMING)
    controller.start()
    advance(sim, 2.0)
    controller.stop()
    assert controller.actions["scale_in"] == 1
    assert sum(r.state is NodeState.ACTIVE
               for r in shard.replicas) == 1


def test_min_active_replicas_floor(sim):
    config = FleetConfig(
        shards=1, replicas_per_shard=2, node_workers=1,
        min_active_replicas=1,
        controller_interval_s=0.1, controller_window_ticks=2,
        controller_cooldown_ticks=0,
        drain_grace_s=0.1, drain_poll_s=0.05)
    fleet, shard, router, controller = build(sim)
    controller.config = config
    controller.start()
    advance(sim, 2.0)
    controller.stop()
    assert controller.actions["scale_in"] == 1  # stopped at the floor
    assert fleet.active_count() == 2
