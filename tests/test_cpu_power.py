"""Power model and calibration curves."""

import pytest

from repro.cpu import calibration
from repro.cpu.power import CorePowerModel, ServerPowerModel
from repro.cpu.pstates import XEON_E5_2640V3_PSTATES


def test_active_power_monotone_in_frequency():
    prev = 0.0
    for freq in XEON_E5_2640V3_PSTATES.frequencies:
        watts = calibration.active_watts(freq)
        assert watts > prev
        prev = watts


def test_turbo_step_is_disproportionate():
    """The 2.6 -> 2.8 GHz step costs more than any 0.1 GHz step below it
    (the turbo-voltage cliff the paper's 2.8-vs-2.4 W gap reflects)."""
    freqs = XEON_E5_2640V3_PSTATES.frequencies
    steps = [calibration.active_watts(b) - calibration.active_watts(a)
             for a, b in zip(freqs, freqs[1:])]
    assert steps[-1] == max(steps)


def test_idle_below_active_everywhere():
    model = CorePowerModel()
    model.validate_monotone(XEON_E5_2640V3_PSTATES)  # raises on violation
    for freq in XEON_E5_2640V3_PSTATES.frequencies:
        assert model.idle_power(freq) < model.active_power(freq)


def test_idle_grows_with_frequency():
    """High-frequency idling must stay expensive, else the paper's
    low-load gap between fixed-2.8 GHz and POLARIS disappears."""
    assert calibration.idle_watts(2.8) > 2 * calibration.idle_watts(1.2)


def test_power_model_caches_and_dispatch():
    calls = []

    def active(freq):
        calls.append(freq)
        return 5.0

    model = CorePowerModel(active_fn=active, idle_fn=lambda f: 1.0)
    assert model.power(2.0, busy=True) == 5.0
    assert model.power(2.0, busy=True) == 5.0
    assert calls == [2.0]  # second call served from cache
    assert model.power(2.0, busy=False) == 1.0


def test_validate_monotone_catches_bad_model():
    model = CorePowerModel(active_fn=lambda f: 1.0, idle_fn=lambda f: 2.0)
    with pytest.raises(ValueError):
        model.validate_monotone(XEON_E5_2640V3_PSTATES)


def test_server_power_static_floor():
    model = ServerPowerModel(static_watts=100.0)

    class FakeCore:
        def current_power(self):
            return 3.0

        def energy_at(self, now):
            return 3.0 * now

    cores = [FakeCore() for _ in range(4)]
    assert model.wall_power(cores) == pytest.approx(112.0)
    assert model.wall_energy(cores, 10.0) == pytest.approx(1000.0 + 120.0)


def test_server_power_rejects_negative_floor():
    with pytest.raises(ValueError):
        ServerPowerModel(static_watts=-1.0)


def test_calibrated_16core_medium_load_level():
    """Back-of-envelope: 16 cores at 2.8 GHz and 75% busy should land
    near the paper's ~170 W medium-load wall power."""
    active = calibration.active_watts(2.8)
    idle = calibration.idle_watts(2.8)
    watts = calibration.STATIC_WATTS + 16 * (0.75 * active + 0.25 * idle)
    assert 160.0 < watts < 180.0
