"""Examples stay importable and expose a main() entry point.

Full example runs are exercised manually / in docs; these tests catch
API drift (an example referencing a renamed symbol) without paying the
full simulation cost in the unit suite.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {"quickstart", "workload_differentiation", "time_varying_load",
            "theory_competitive", "functional_database", "custom_workload",
            "worker_parking", "ycsb_keyvalue"} <= names
    assert len(EXAMPLE_FILES) >= 8


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load_example(path)
    assert callable(getattr(module, "main", None)), \
        f"{path.name} must define main()"
    assert module.__doc__, f"{path.name} needs a module docstring"


def test_theory_example_runs_quickly(capsys):
    """The theory example is pure computation --- run it outright."""
    module = load_example(EXAMPLES_DIR / "theory_competitive.py")
    module.main()
    out = capsys.readouterr().out
    assert "POLARIS/OA = 1.000000" in out
    assert "c^alpha" in out
