"""Service-time models and benchmark specs."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.base import (
    BenchmarkSpec, MAX_LOGNORMAL_RATIO, ServiceTimeModel, TransactionType,
    fit_lognormal,
)


def test_fit_lognormal_moments():
    mu, sigma = fit_lognormal(1.0, 2.0)
    assert math.exp(mu + sigma ** 2 / 2) == pytest.approx(1.0)
    assert math.exp(mu + 1.6448536269514722 * sigma) == pytest.approx(2.0)


def test_fit_lognormal_rejects_extreme_ratio():
    with pytest.raises(ValueError):
        fit_lognormal(1.0, 5.0)  # > MAX_LOGNORMAL_RATIO ~ 3.87


def test_fit_lognormal_validation():
    with pytest.raises(ValueError):
        fit_lognormal(0.0, 1.0)
    with pytest.raises(ValueError):
        fit_lognormal(2.0, 1.0)  # p95 below mean


@settings(max_examples=50, deadline=None)
@given(mean=st.floats(min_value=1e-5, max_value=1.0),
       ratio=st.floats(min_value=1.01, max_value=3.5))
def test_property_fit_lognormal_roundtrip(mean, ratio):
    mu, sigma = fit_lognormal(mean, mean * ratio)
    assert math.exp(mu + sigma ** 2 / 2) == pytest.approx(mean, rel=1e-9)
    assert sigma >= 0


def test_service_model_sample_statistics():
    """Sampled mean and P95 must match the calibration targets."""
    model = ServiceTimeModel(2059e-6, 5414e-6)
    assert not model.uses_spike_model
    rng = random.Random(0)
    samples = sorted(model.draw_seconds(rng) for _ in range(40000))
    mean = sum(samples) / len(samples)
    p95 = samples[int(0.95 * len(samples))]
    assert mean == pytest.approx(2059e-6, rel=0.05)
    assert p95 == pytest.approx(5414e-6, rel=0.05)


def test_spike_model_for_heavy_tail():
    """Order Status (P95 = 6.7x mean) needs the two-component model."""
    model = ServiceTimeModel(250e-6, 1682e-6)
    assert model.uses_spike_model
    rng = random.Random(1)
    samples = sorted(model.draw_seconds(rng) for _ in range(40000))
    mean = sum(samples) / len(samples)
    p95 = samples[int(0.95 * len(samples))]
    assert mean == pytest.approx(250e-6, rel=0.08)
    assert p95 == pytest.approx(1682e-6, rel=0.15)


def test_infeasible_spike_model_rejected():
    # Spike mean exceeding what q=8% can absorb: body mean would be <= 0.
    with pytest.raises(ValueError):
        ServiceTimeModel(1e-6, 1.0)


def test_work_scales_with_reference_frequency():
    model = ServiceTimeModel(1e-3, 2e-3, ref_freq_ghz=2.8)
    rng_a, rng_b = random.Random(5), random.Random(5)
    seconds = model.draw_seconds(rng_a)
    work = model.draw_work(rng_b)
    assert work == pytest.approx(seconds * 2.8)
    assert model.mean_work() == pytest.approx(2.8e-3)
    assert model.expected_seconds_at(1.4) == pytest.approx(2e-3)


def test_service_model_validation():
    with pytest.raises(ValueError):
        ServiceTimeModel(0.0, 1.0)
    with pytest.raises(ValueError):
        ServiceTimeModel(2.0, 1.0)


def test_transaction_type_validation():
    with pytest.raises(ValueError):
        TransactionType("t", -1.0, ServiceTimeModel(1e-3, 2e-3))


def test_spec_mix_sampling_proportions():
    spec = BenchmarkSpec("b", [
        TransactionType("a", 70, ServiceTimeModel(1e-3, 2e-3)),
        TransactionType("b", 30, ServiceTimeModel(1e-3, 2e-3)),
    ])
    rng = random.Random(2)
    draws = [spec.choose_type(rng).name for _ in range(20000)]
    fraction_a = draws.count("a") / len(draws)
    assert fraction_a == pytest.approx(0.70, abs=0.02)
    assert spec.mix_fraction("a") == pytest.approx(0.7)


def test_spec_combined_mean_and_peak():
    spec = BenchmarkSpec("b", [
        TransactionType("fast", 0.5, ServiceTimeModel(1e-3, 2e-3)),
        TransactionType("slow", 0.5, ServiceTimeModel(3e-3, 6e-3)),
    ])
    assert spec.combined_mean_seconds() == pytest.approx(2e-3)
    assert spec.peak_throughput(workers=4) == pytest.approx(2000.0)
    # At half frequency, execution takes twice as long.
    assert spec.combined_mean_seconds(1.4) == pytest.approx(4e-3)
    assert spec.peak_throughput(4, freq_ghz=1.4) == pytest.approx(1000.0)


def test_spec_validation():
    with pytest.raises(ValueError):
        BenchmarkSpec("b", [])
    with pytest.raises(ValueError):
        BenchmarkSpec("b", [
            TransactionType("a", 0.0, ServiceTimeModel(1e-3, 2e-3))])


def test_spec_type_lookup():
    spec = BenchmarkSpec("b", [
        TransactionType("a", 1.0, ServiceTimeModel(1e-3, 2e-3))])
    assert spec.type_named("a").name == "a"
    with pytest.raises(KeyError):
        spec.type_named("zzz")


def test_max_lognormal_ratio_constant():
    assert MAX_LOGNORMAL_RATIO == pytest.approx(
        math.exp(1.6448536269514722 ** 2 / 2))
