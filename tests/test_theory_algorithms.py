"""YDS, OA, and idealized POLARIS: correctness and competitive claims."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.theory.instances import (
    adversarial_pair, random_agreeable_instance, random_instance,
)
from repro.theory.model import Job, ProblemInstance, Schedule, Segment
from repro.theory.oa import oa_schedule
from repro.theory.polaris_ideal import polaris_ideal_schedule
from repro.theory.yds import yds_energy, yds_schedule, yds_speed_profile

ALPHA = 3.0


# ----------------------------------------------------------------------
# YDS
# ----------------------------------------------------------------------
def test_yds_single_job_runs_at_density():
    instance = ProblemInstance([Job(1, 0.0, 4.0, 2.0)])
    profile = yds_speed_profile(instance)
    assert profile == [(0.0, 4.0, pytest.approx(0.5))]
    schedule = yds_schedule(instance)
    schedule.check_feasible(instance)
    assert schedule.energy(ALPHA) == pytest.approx(4.0 * 0.5 ** 3)


def test_yds_two_disjoint_jobs():
    instance = ProblemInstance([
        Job(1, 0.0, 1.0, 1.0), Job(2, 5.0, 7.0, 1.0)])
    profile = sorted(yds_speed_profile(instance))
    assert profile[0] == (0.0, 1.0, pytest.approx(1.0))
    assert profile[1] == (5.0, 7.0, pytest.approx(0.5))


def test_yds_nested_critical_interval():
    """A dense inner job carves its interval out of an enclosing job's
    window; the outer job stretches over what remains."""
    instance = ProblemInstance([
        Job(1, 0.0, 10.0, 4.0),    # lazy outer job
        Job(2, 4.0, 5.0, 3.0),     # intense inner job
    ])
    profile = sorted(yds_speed_profile(instance))
    # Critical interval [4,5] at speed 3; the outer job spreads its 4
    # units over the remaining 9 seconds at speed 4/9.
    inner = [p for p in profile if p[2] > 1.0]
    assert inner == [(4.0, 5.0, pytest.approx(3.0))]
    outer_speed = 4.0 / 9.0
    for start, end, speed in profile:
        if (start, end) != (4.0, 5.0):
            assert speed == pytest.approx(outer_speed)
    schedule = yds_schedule(instance)
    schedule.check_feasible(instance)


def test_yds_same_window_jobs_pool():
    instance = ProblemInstance([
        Job(1, 0.0, 2.0, 1.0), Job(2, 0.0, 2.0, 1.0)])
    profile = yds_speed_profile(instance)
    assert profile == [(0.0, 2.0, pytest.approx(1.0))]


def test_yds_theorem_4_5_scaling():
    """Pow[YDS(P')] = c^alpha * Pow[YDS(P)] when loads scale by c."""
    rng = random.Random(0)
    for _ in range(5):
        instance = random_instance(10, rng)
        c = 1.0 + rng.random() * 3.0
        base = yds_energy(instance, ALPHA)
        scaled = yds_energy(instance.scaled(c), ALPHA)
        assert scaled == pytest.approx(c ** ALPHA * base, rel=1e-6)


def test_yds_beats_naive_feasible_schedules():
    """YDS energy is minimal: compare against a constant-speed EDF
    schedule that finishes every job exactly at its own deadline."""
    rng = random.Random(1)
    for _ in range(5):
        instance = random_instance(8, rng)
        y = yds_energy(instance, ALPHA)
        oa = oa_schedule(instance)
        oa.check_feasible(instance)
        assert y <= oa.energy(ALPHA) + 1e-9


def test_yds_feasible_on_random_instances():
    rng = random.Random(2)
    for _ in range(10):
        instance = random_instance(15, rng)
        schedule = yds_schedule(instance)
        schedule.check_feasible(instance)


def test_yds_feasible_on_agreeable_instances():
    rng = random.Random(3)
    for _ in range(10):
        instance = random_agreeable_instance(12, rng)
        yds_schedule(instance).check_feasible(instance)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=50.0),
    st.floats(min_value=0.1, max_value=20.0),
    st.floats(min_value=0.1, max_value=5.0)),
    min_size=1, max_size=8))
def test_property_yds_always_feasible(params):
    jobs = [Job(i + 1, a, a + window, work)
            for i, (a, window, work) in enumerate(params)]
    instance = ProblemInstance(jobs)
    schedule = yds_schedule(instance)
    schedule.check_feasible(instance)
    # Energy from the profile and from the packed schedule agree.
    assert schedule.energy(ALPHA) == pytest.approx(
        yds_energy(instance, ALPHA), rel=1e-6)


# ----------------------------------------------------------------------
# OA
# ----------------------------------------------------------------------
def test_oa_equals_yds_for_simultaneous_arrivals():
    """With one arrival instant, OA's staircase IS the YDS schedule."""
    instance = ProblemInstance([
        Job(1, 0.0, 1.0, 2.0), Job(2, 0.0, 4.0, 1.0)])
    oa = oa_schedule(instance)
    oa.check_feasible(instance)
    assert oa.energy(ALPHA) == pytest.approx(
        yds_energy(instance, ALPHA), rel=1e-9)


def test_oa_preempts_for_urgent_arrival():
    """d(t_new) < d(t_r): OA switches to the new job immediately."""
    instance = ProblemInstance([
        Job(1, 0.0, 10.0, 5.0),
        Job(2, 1.0, 2.0, 0.5),
    ])
    oa = oa_schedule(instance)
    oa.check_feasible(instance)
    running_at = {}
    for segment in oa.segments:
        if segment.start <= 1.0 < segment.end or segment.start == 1.0:
            running_at[segment.start] = segment.job_id
    # Job 2 runs in (1, 2) even though job 1 started first.
    in_window = [s for s in oa.segments
                 if s.start >= 1.0 and s.end <= 2.0 and s.job_id == 2]
    assert in_window, "OA did not preempt for the urgent job"


def test_oa_competitive_bound_on_random_instances():
    rng = random.Random(4)
    bound = ALPHA ** ALPHA
    for _ in range(10):
        instance = random_instance(10, rng)
        ratio = oa_schedule(instance).energy(ALPHA) \
            / yds_energy(instance, ALPHA)
        assert 1.0 - 1e-9 <= ratio <= bound


# ----------------------------------------------------------------------
# Idealized POLARIS
# ----------------------------------------------------------------------
def test_polaris_is_nonpreemptive_and_feasible():
    rng = random.Random(5)
    for _ in range(10):
        instance = random_instance(10, rng)
        schedule = polaris_ideal_schedule(instance)
        schedule.check_feasible(instance, preemptive=False)


def test_polaris_equals_oa_on_agreeable(trials=8):
    """Theorem 4.3 via Lemma 4.1: identical behavior, hence energy."""
    rng = random.Random(6)
    for _ in range(trials):
        instance = random_agreeable_instance(10, rng)
        p = polaris_ideal_schedule(instance).energy(ALPHA)
        o = oa_schedule(instance).energy(ALPHA)
        assert p == pytest.approx(o, rel=1e-9)


def test_polaris_speeds_up_for_urgent_arrival():
    """Lemma 4.2: POLARIS keeps running t_r but raises the speed so
    both t_r and the urgent t_new finish by t_new's deadline."""
    instance = ProblemInstance([
        Job(1, 0.0, 10.0, 5.0),   # would run at 0.5 alone
        Job(2, 1.0, 2.0, 0.5),
    ])
    schedule = polaris_ideal_schedule(instance)
    schedule.check_feasible(instance, preemptive=False)
    # After t=1, job 1 still runs (non-preemption) but at the speed
    # needed to fit both into [1, 2]: (4.5 + 0.5) / 1 = 5.
    seg_after = [s for s in schedule.segments
                 if s.job_id == 1 and s.start >= 1.0]
    assert seg_after and seg_after[0].speed == pytest.approx(5.0)
    # Job 2 then runs to completion before its deadline.
    job2 = [s for s in schedule.segments if s.job_id == 2]
    assert job2 and job2[-1].end <= 2.0 + 1e-9


def test_polaris_bounded_by_corollary_4_6():
    rng = random.Random(7)
    for _ in range(10):
        instance = random_instance(8, rng)
        ratio = polaris_ideal_schedule(instance).energy(ALPHA) \
            / yds_energy(instance, ALPHA)
        bound = (instance.c_factor() * ALPHA) ** ALPHA
        assert ratio <= bound


def test_adversarial_pair_exhibits_c_alpha_blowup():
    instance = adversarial_pair(w_max=10.0, w_min=0.1)
    ratio = polaris_ideal_schedule(instance).energy(ALPHA) \
        / yds_energy(instance, ALPHA)
    c_alpha = instance.c_factor() ** ALPHA
    assert ratio > 0.2 * c_alpha      # the blow-up is real
    assert ratio <= (instance.c_factor() * ALPHA) ** ALPHA


def test_adversarial_pair_validation():
    with pytest.raises(ValueError):
        adversarial_pair(epsilon=0.0)
    with pytest.raises(ValueError):
        adversarial_pair(late_deadline=0.5)


# ----------------------------------------------------------------------
# Instance generators
# ----------------------------------------------------------------------
def test_agreeable_generator_produces_agreeable():
    rng = random.Random(8)
    for _ in range(20):
        assert random_agreeable_instance(10, rng).is_agreeable()


def test_random_instance_shape():
    rng = random.Random(9)
    instance = random_instance(25, rng)
    assert len(instance) == 25
    with pytest.raises(ValueError):
        random_instance(0, rng)
