"""Power meter, latency recorder, report formatting."""

import json
import random

import pytest

from repro.core.request import Request
from repro.core.workload import Workload
from repro.metrics.latency import LatencyRecorder, percentile
from repro.metrics.power import PowerMeter
from repro.metrics.report import (
    AVAILABILITY_SCHEMA_VERSION, availability_record, availability_table,
    format_series, format_table, sparkline,
)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# PowerMeter
# ----------------------------------------------------------------------
def test_meter_samples_every_second(sim):
    meter = PowerMeter(sim, lambda: sim.now * 50.0, random.Random(0),
                       noise_fraction=0.0)
    meter.start()
    sim.schedule(5.5, sim.stop)
    sim.run()
    assert len(meter.samples) == 5
    assert [t for t, _ in meter.samples] == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert all(w == pytest.approx(50.0) for _, w in meter.samples)


def test_meter_noise_within_rating(sim):
    meter = PowerMeter(sim, lambda: sim.now * 100.0,
                       rng=random.Random(1), noise_fraction=0.015)
    meter.start()
    sim.schedule(200.0, sim.stop)
    sim.run()
    readings = [w for _, w in meter.samples]
    assert all(98.5 - 1e-9 <= w <= 101.5 + 1e-9 for w in readings)
    assert max(readings) > 100.3  # noise actually applied
    assert min(readings) < 99.7


def test_meter_average_over_window(sim):
    # 10 W for 2 s, then 30 W.
    meter = PowerMeter(sim, lambda: 10.0 * min(sim.now, 2.0)
                       + 30.0 * max(0.0, sim.now - 2.0),
                       random.Random(0), noise_fraction=0.0)
    meter.start()
    sim.schedule(4.5, sim.stop)
    sim.run()
    assert meter.average_power(0.0, 2.0) == pytest.approx(10.0)
    assert meter.average_power(2.0, 4.0) == pytest.approx(30.0)
    assert meter.average_power() == pytest.approx(20.0)


def test_meter_average_empty_window_raises(sim):
    meter = PowerMeter(sim, lambda: 0.0, random.Random(0))
    with pytest.raises(ValueError):
        meter.average_power()


def test_meter_binned_average(sim):
    meter = PowerMeter(sim, lambda: 10.0 * sim.now, random.Random(0),
                       noise_fraction=0.0)
    meter.start()
    sim.schedule(10.0, sim.stop)
    sim.run()
    bins = meter.binned_average(0.0, 10.0, 5.0)
    assert len(bins) == 2
    assert bins[0][1] == pytest.approx(10.0)


def test_meter_requires_explicit_rng(sim):
    with pytest.raises(TypeError):
        PowerMeter(sim, lambda: 0.0, None)
    with pytest.raises(TypeError):
        PowerMeter(sim, lambda: 0.0)


def test_meter_stop_and_validation(sim):
    meter = PowerMeter(sim, lambda: 0.0, random.Random(0))
    meter.start()
    with pytest.raises(RuntimeError):
        meter.start()
    meter.stop()
    sim.schedule(5.0, sim.stop)
    sim.run()
    assert meter.samples == []
    with pytest.raises(ValueError):
        PowerMeter(sim, lambda: 0.0, random.Random(0), interval=0.0)
    with pytest.raises(ValueError):
        PowerMeter(sim, lambda: 0.0, random.Random(0),
                   noise_fraction=-0.1)


# ----------------------------------------------------------------------
# LatencyRecorder
# ----------------------------------------------------------------------
def finished_request(workload, arrival, latency, exec_time=None,
                     freq=2.8, txn_type="t"):
    request = Request(workload, txn_type, arrival, work=1.0)
    request.dispatch_time = arrival + latency - (exec_time or latency)
    request.finish_time = arrival + latency
    request.dispatch_freq = freq
    return request


def test_recorder_failure_rates():
    workload = Workload("w", 0.010)
    recorder = LatencyRecorder()
    recorder.recording = True
    recorder.on_completion(finished_request(workload, 0.0, 0.005))
    recorder.on_completion(finished_request(workload, 0.0, 0.020))  # miss
    assert recorder.total_offered == 2
    assert recorder.total_missed == 1
    assert recorder.failure_rate == 0.5
    assert recorder.workload_failure_rate("w") == 0.5
    assert recorder.workload_failure_rate("other") == 0.0
    assert recorder.workload_names() == ["w"]


def test_recorder_ignores_when_not_recording():
    recorder = LatencyRecorder()
    recorder.on_completion(finished_request(Workload("w", 1.0), 0.0, 0.5))
    assert recorder.total_offered == 0
    assert recorder.failure_rate == 0.0


def test_recorder_window_scopes_by_arrival():
    workload = Workload("w", 0.010)
    recorder = LatencyRecorder()
    recorder.set_window(1.0, 2.0)
    recorder.on_completion(finished_request(workload, 0.5, 0.005))  # early
    recorder.on_completion(finished_request(workload, 1.5, 0.005))  # in
    recorder.on_completion(finished_request(workload, 2.5, 0.005))  # late
    assert recorder.total_offered == 1
    # Late completion of an in-window arrival still counts.
    recorder.on_completion(finished_request(workload, 1.9, 5.0))
    assert recorder.total_offered == 2
    assert recorder.total_missed == 1


def test_recorder_window_validation():
    with pytest.raises(ValueError):
        LatencyRecorder().set_window(2.0, 1.0)


def test_recorder_exec_time_stats():
    workload = Workload("w", 10.0)
    recorder = LatencyRecorder()
    recorder.recording = True
    for exec_time, freq in [(1.0, 2.8), (2.0, 2.8), (3.0, 1.2)]:
        recorder.on_completion(finished_request(
            workload, 0.0, exec_time, exec_time=exec_time, freq=freq,
            txn_type="a"))
    mean, p95, count = recorder.exec_time_stats("a", 2.8)
    assert (mean, count) == (1.5, 2)
    assert p95 == 2.0
    mean_all, _, count_all = recorder.exec_time_stats("a")
    assert (mean_all, count_all) == (2.0, 3)
    mean_combined, _, n = recorder.combined_exec_time_stats(2.8)
    assert (mean_combined, n) == (1.5, 2)
    nan_mean, _, zero = recorder.exec_time_stats("missing")
    assert zero == 0


def test_recorder_mean_latency():
    workload = Workload("w", 10.0)
    recorder = LatencyRecorder()
    recorder.recording = True
    recorder.on_completion(finished_request(workload, 0.0, 1.0))
    recorder.on_completion(finished_request(workload, 0.0, 3.0))
    assert recorder.per_workload["w"].mean_latency() == pytest.approx(2.0)


def test_percentile_function():
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
    assert percentile([1.0], 95) == 1.0
    assert percentile(list(map(float, range(1, 101))), 95) == 95.0
    with pytest.raises(ValueError):
        percentile([], 95)
    with pytest.raises(ValueError):
        percentile([1.0], 0)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_row_width_checked():
    with pytest.raises(ValueError, match="row width 2 != header width 1"):
        format_table(["a"], [[1, 2]])
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1, 2], [3]])


def test_format_table_empty_rows_renders_header_only():
    text = format_table(["name", "value"], [])
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("name") and "value" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_format_table_title_rendering():
    titled = format_table(["a"], [[1]], title="Trace summary")
    assert titled.splitlines()[0] == "Trace summary"
    untitled = format_table(["a"], [[1]])
    assert untitled.splitlines()[0].startswith("a")
    assert titled.splitlines()[1:] == untitled.splitlines()


def test_format_series():
    text = format_series("s", [10, 20], [0.1, 0.25], "{:.2f}")
    assert text == "s: 10=0.10 20=0.25"
    with pytest.raises(ValueError):
        format_series("s", [1], [1.0, 2.0])


def test_sparkline():
    assert sparkline([]) == ""
    line = sparkline([0.0, 0.5, 1.0], width=3)
    assert len(line) == 3
    assert line[0] == " " and line[-1] == "@"
    long = sparkline(list(range(100)), width=10)
    assert len(long) == 10


# ----------------------------------------------------------------------
# Availability records (the versioned chaos/failover schema)
# ----------------------------------------------------------------------
class _StubConfig:
    seed = 11


class _StubResult:
    """Duck-typed stand-in for an ExperimentResult chaos cell."""

    config = _StubConfig()
    scheme_label = "fleet-elastic POLARIS"
    availability = {"shard1": 0.95, "shard0": 0.97}
    failovers = 2
    mttr_s = 0.43
    lost_commits = 6
    unserved_shards = 0
    p999_latency_s = 0.353
    avg_power_watts = 218.3
    failure_rate = 0.014
    lost = 2


def test_availability_record_schema():
    record = availability_record(_StubResult())
    assert record["schema"] == AVAILABILITY_SCHEMA_VERSION
    assert record["label"] == "fleet-elastic POLARIS"
    assert record["seed"] == 11
    assert record["availability_min"] == 0.95
    # Shard keys come out sorted for stable serialization.
    assert list(record["availability_by_shard"]) == ["shard0", "shard1"]
    json.dumps(record)  # the record must be JSON-serializable as-is


def test_availability_record_with_no_shards_is_fully_available():
    stub = _StubResult()
    stub.availability = {}
    assert availability_record(stub)["availability_min"] == 1.0


def test_availability_table_renders_the_records():
    text = availability_table([availability_record(_StubResult())])
    assert "Availability under chaos" in text
    assert "fleet-elastic POLARIS" in text
    assert "0.9500" in text  # avail(min)
    assert "218.3" in text
