"""Open-loop arrivals and load traces."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.workloads.arrivals import OpenLoopGenerator, RateSchedule
from repro.workloads.traces import (
    load_trace, normalize, scale_trace, synthesize_diurnal_trace,
    synthesize_worldcup_trace,
)


# ----------------------------------------------------------------------
# Arrivals
# ----------------------------------------------------------------------
def test_constant_rate_mean_interarrival():
    sim = Simulator()
    times = []
    generator = OpenLoopGenerator.constant(sim, 1000.0, times.append,
                                           random.Random(0))
    generator.start()
    sim.run(until=20.0)
    rate = len(times) / 20.0
    assert rate == pytest.approx(1000.0, rel=0.05)


def test_interarrival_bounded_by_twice_mean():
    """Paper Section 6.1: uniform on [0, 2/rate]."""
    sim = Simulator()
    times = []
    generator = OpenLoopGenerator.constant(sim, 100.0, times.append,
                                           random.Random(1))
    generator.start()
    sim.run(until=50.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert max(gaps) <= 2.0 / 100.0 + 1e-12
    assert min(gaps) >= 0.0
    # Uniform: variance of gaps ~ (2/rate)^2 / 12.
    mean_gap = sum(gaps) / len(gaps)
    var = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
    assert var == pytest.approx((0.02 ** 2) / 12.0, rel=0.15)


def test_stop_halts_generation():
    sim = Simulator()
    times = []
    generator = OpenLoopGenerator.constant(sim, 100.0, times.append,
                                           random.Random(2))
    generator.start()
    sim.run(until=1.0)
    count = len(times)
    generator.stop()
    sim.run(until=5.0)
    assert len(times) == count


def test_double_start_rejected():
    sim = Simulator()
    generator = OpenLoopGenerator.constant(sim, 1.0, lambda t: None,
                                           random.Random(0))
    generator.start()
    with pytest.raises(RuntimeError):
        generator.start()


def test_rate_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        OpenLoopGenerator.constant(sim, 0.0, lambda t: None,
                                   random.Random(0))


def test_scheduled_rate_changes_take_effect():
    sim = Simulator()
    times = []
    schedule = RateSchedule([100.0, 100.0, 2000.0, 2000.0],
                            step_seconds=1.0)
    generator = OpenLoopGenerator.scheduled(sim, schedule, times.append,
                                            random.Random(3))
    generator.start()
    sim.run(until=4.0)
    early = sum(1 for t in times if t < 2.0)
    late = sum(1 for t in times if t >= 2.0)
    assert late > 5 * early


def test_zero_rate_stretch_survives():
    sim = Simulator()
    times = []
    schedule = RateSchedule([0.0, 0.0, 500.0], step_seconds=1.0)
    generator = OpenLoopGenerator.scheduled(sim, schedule, times.append,
                                            random.Random(4))
    generator.start()
    sim.run(until=3.0)
    assert all(t >= 2.0 for t in times)
    assert len(times) > 100


def test_rate_schedule_lookup():
    schedule = RateSchedule([10.0, 20.0], step_seconds=2.0)
    assert schedule.rate_at(0.0) == 10.0
    assert schedule.rate_at(1.99) == 10.0
    assert schedule.rate_at(2.0) == 20.0
    assert schedule.rate_at(100.0) == 20.0  # persists past the end
    assert schedule.duration == 4.0


def test_rate_schedule_validation():
    with pytest.raises(ValueError):
        RateSchedule([])
    with pytest.raises(ValueError):
        RateSchedule([-1.0])
    with pytest.raises(ValueError):
        RateSchedule([1.0], step_seconds=0.0)


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def test_worldcup_trace_shape():
    trace = synthesize_worldcup_trace(300, random.Random(0))
    assert len(trace) == 300
    assert all(0.0 <= v <= 1.0 for v in trace)
    # Meaningful dynamic range, like the paper's normalized plot.
    assert max(trace) - min(trace) > 0.5


def test_worldcup_trace_deterministic_by_seed():
    a = synthesize_worldcup_trace(100, random.Random(7))
    b = synthesize_worldcup_trace(100, random.Random(7))
    c = synthesize_worldcup_trace(100, random.Random(8))
    assert a == b
    assert a != c


def test_worldcup_trace_validation():
    with pytest.raises(ValueError):
        synthesize_worldcup_trace(0)


def test_normalize():
    assert normalize([2.0, 4.0, 6.0]) == [0.0, 0.5, 1.0]
    assert normalize([5.0, 5.0]) == [0.5, 0.5]


def test_scale_trace():
    scaled = scale_trace([0.0, 0.5, 1.0], 6400.0, 19440.0)
    assert scaled[0] == pytest.approx(6400.0)
    assert scaled[1] == pytest.approx((6400.0 + 19440.0) / 2)
    assert scaled[2] == pytest.approx(19440.0)


def test_scale_trace_validation():
    with pytest.raises(ValueError):
        scale_trace([0.5], 10.0, 5.0)
    with pytest.raises(ValueError):
        scale_trace([1.5], 0.0, 10.0)


def test_load_trace_parses_and_normalizes():
    lines = ["# world cup counts", "100", "", "300", "200"]
    assert load_trace(lines) == [0.0, 1.0, 0.5]


def test_load_trace_empty_rejected():
    with pytest.raises(ValueError):
        load_trace(["# only a comment"])


# ----------------------------------------------------------------------
# Diurnal trace (fleet experiments)
# ----------------------------------------------------------------------
def test_diurnal_trace_shape():
    trace = synthesize_diurnal_trace(600, random.Random(0))
    assert len(trace) == 600
    assert all(v > 0.0 for v in trace)
    # Unscaled rates peak near 1.0 (requests/s) over the evening swell.
    assert 0.6 <= max(trace) <= 1.5
    # Day-shaped dynamic range: troughs well below the peak.
    assert min(trace) < 0.25 * max(trace)


def test_diurnal_trace_deterministic_by_seed():
    a = synthesize_diurnal_trace(120, random.Random(7))
    b = synthesize_diurnal_trace(120, random.Random(7))
    c = synthesize_diurnal_trace(120, random.Random(8))
    assert a == b
    assert a != c
    # The seed= parameter is an alias for a fresh Random(seed).
    assert synthesize_diurnal_trace(120, seed=7) \
        == synthesize_diurnal_trace(120, random.Random(7))


def test_diurnal_peak_rate_scale_is_exact():
    """Scaling multiplies every per-second rate, nothing else."""
    base = synthesize_diurnal_trace(200, random.Random(3))
    scaled = synthesize_diurnal_trace(200, random.Random(3),
                                      peak_rate_scale=1000.0)
    assert scaled == pytest.approx([v * 1000.0 for v in base])


def test_diurnal_normalized_shape_invariant_under_scaling():
    """The property the fleet figure depends on: the normalized load
    shape fed to the harness does not depend on the absolute scale
    (all RNG draws happen before the scale factor is applied)."""
    for scale in (7.0, 1000.0, 1e6):
        a = normalize(synthesize_diurnal_trace(150, random.Random(5)))
        b = normalize(synthesize_diurnal_trace(
            150, random.Random(5), peak_rate_scale=scale))
        assert b == pytest.approx(a, abs=1e-9)


def test_diurnal_trace_validation():
    with pytest.raises(ValueError):
        synthesize_diurnal_trace(0)
    with pytest.raises(ValueError):
        synthesize_diurnal_trace(100, peak_rate_scale=0.0)
    with pytest.raises(ValueError):
        synthesize_diurnal_trace(100, peak_rate_scale=-2.0)
