"""Experiment harness: configuration, phases, paired comparisons."""

import pytest

from repro.harness.experiment import (
    ExperimentConfig, effective_load_fraction, run_experiment,
)
from repro.harness.schemes import (
    FIGURE_BASELINE_SCHEMES, SCHEMES, VARIANT_SCHEMES, scheme_named,
)

FAST = dict(workers=2, warmup_seconds=0.3, test_seconds=1.0, seed=3)


def test_scheme_registry():
    assert scheme_named("polaris").uses_scheduler
    assert not scheme_named("ondemand").uses_scheduler
    assert scheme_named("static-2.8").initial_freq == 2.8
    with pytest.raises(KeyError):
        scheme_named("nope")
    assert set(FIGURE_BASELINE_SCHEMES) <= set(SCHEMES)
    assert set(VARIANT_SCHEMES) <= set(SCHEMES)


def test_effective_load_interpolation():
    assert effective_load_fraction(0.0) == 0.0
    assert effective_load_fraction(0.3) == pytest.approx(0.27)
    assert effective_load_fraction(0.6) == pytest.approx(0.75)
    assert effective_load_fraction(0.9) == pytest.approx(0.92)
    assert effective_load_fraction(0.45) == pytest.approx((0.27 + 0.75) / 2)
    assert effective_load_fraction(5.0) == pytest.approx(0.97)
    assert effective_load_fraction(-1.0) == 0.0


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_every_scheme_runs(scheme):
    result = run_experiment(ExperimentConfig(scheme=scheme, slack=40.0,
                                             **FAST))
    assert result.avg_power_watts > 0
    assert 0.0 <= result.failure_rate <= 1.0
    assert result.offered > 0
    assert result.completed + result.rejected == result.offered
    assert result.throughput > 0
    assert result.scheme_label == SCHEMES[scheme].label


def test_paired_arrivals_across_schemes():
    """Same seed -> identical offered load for every scheme, so power
    and failure comparisons are paired, as in the paper's methodology."""
    results = [run_experiment(ExperimentConfig(scheme=s, slack=40.0, **FAST))
               for s in ("static-2.8", "polaris")]
    assert results[0].offered == results[1].offered


def test_different_seeds_differ():
    a = run_experiment(ExperimentConfig(scheme="static-2.8", slack=40.0,
                                        workers=2, warmup_seconds=0.3,
                                        test_seconds=1.0, seed=1))
    b = run_experiment(ExperimentConfig(scheme="static-2.8", slack=40.0,
                                        workers=2, warmup_seconds=0.3,
                                        test_seconds=1.0, seed=2))
    assert a.offered != b.offered or a.avg_power_watts != b.avg_power_watts


def test_run_is_deterministic():
    config = ExperimentConfig(scheme="polaris", slack=40.0, **FAST)
    a = run_experiment(config)
    b = run_experiment(config)
    assert a.avg_power_watts == b.avg_power_watts
    assert a.failure_rate == b.failure_rate
    assert a.offered == b.offered


def test_tier_policy_records_per_workload():
    config = ExperimentConfig(
        scheme="polaris", workload_policy="tiers",
        tier_targets={"gold": 7.5e-3, "silver": 37.5e-3}, **FAST)
    result = run_experiment(config)
    assert set(result.per_workload_failure) == {"gold", "silver"}
    offered = result.per_workload_offered
    total = offered["gold"] + offered["silver"]
    assert abs(offered["gold"] - total / 2) < 0.2 * total


def test_tier_policy_requires_targets():
    with pytest.raises(ValueError):
        run_experiment(ExperimentConfig(workload_policy="tiers", **FAST))


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        run_experiment(ExperimentConfig(workload_policy="bogus", **FAST))


def test_load_trace_drives_rates():
    trace = [0.0] * 2 + [1.0] * 2
    config = ExperimentConfig(scheme="static-2.8", slack=40.0,
                              load_trace=trace, workers=2,
                              warmup_seconds=0.5, seed=3,
                              timeline_bin_seconds=1.0)
    result = run_experiment(config)
    # Test window = trace duration (4 s); the timeline shows the ramp.
    assert len(result.power_timeline) == 4
    first, last = result.power_timeline[0][1], result.power_timeline[-1][1]
    assert last > first
    assert result.load_timeline == trace


def test_training_phase_fills_estimator_windows():
    tight = ExperimentConfig(scheme="polaris", slack=10.0,
                             train_estimators=True, **FAST)
    cold = ExperimentConfig(scheme="polaris", slack=10.0,
                            train_estimators=False, **FAST)
    trained = run_experiment(tight)
    untrained = run_experiment(cold)
    # Cold-start exploration begins at the lowest frequency (paper
    # Section 6.1) and misses more deadlines early on.
    assert untrained.failure_rate >= trained.failure_rate


def test_high_slack_reduces_failures():
    tight = run_experiment(ExperimentConfig(scheme="polaris", slack=10.0,
                                            **FAST))
    loose = run_experiment(ExperimentConfig(scheme="polaris", slack=100.0,
                                            **FAST))
    assert loose.failure_rate <= tight.failure_rate


def test_result_summary_and_residency():
    result = run_experiment(ExperimentConfig(scheme="polaris", slack=40.0,
                                             **FAST))
    text = result.summary()
    assert "POLARIS" in text and "W" in text
    assert result.freq_residency
    assert all(freq in (1.2, 1.6, 2.0, 2.4, 2.8)
               for freq in result.freq_residency)
    total_time = sum(result.freq_residency.values())
    assert total_time > 0


def test_tpce_benchmark_runs():
    result = run_experiment(ExperimentConfig(benchmark="tpce",
                                             scheme="polaris", slack=40.0,
                                             **FAST))
    assert len(result.per_workload_failure) == 10
