"""Transactions: 2PL + WAL + undo; atomicity property tests; recovery."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.storage.database import Database
from repro.db.storage.errors import (
    LockConflictError, NoSuchTableError, Rollback, TransactionAborted,
)


def make_db():
    db = Database(group_commit_size=5)
    db.create_table("kv", ("k", "v"), ("k",))
    return db


def test_commit_persists():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
    assert db.table("kv").get((1,))["v"] == "a"
    assert db.locks.total_locked_resources() == 0


def test_context_manager_aborts_on_exception():
    db = make_db()
    with pytest.raises(RuntimeError):
        with db.transaction() as txn:
            txn.insert("kv", {"k": 1, "v": "a"})
            raise RuntimeError("boom")
    assert (1,) not in db.table("kv")
    assert db.locks.total_locked_resources() == 0


def test_rollback_exception_aborts_cleanly():
    db = make_db()
    with pytest.raises(Rollback):
        with db.transaction() as txn:
            txn.insert("kv", {"k": 1, "v": "a"})
            raise Rollback("unused item")
    assert (1,) not in db.table("kv")
    assert db.log.stats.aborts == 1


def test_abort_undoes_insert_update_delete():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
        txn.insert("kv", {"k": 2, "v": "b"})
    txn = db.transaction()
    txn.insert("kv", {"k": 3, "v": "c"})
    txn.update("kv", (1,), {"v": "A"})
    txn.delete("kv", (2,))
    txn.abort()
    table = db.table("kv")
    assert (3,) not in table
    assert table.get((1,))["v"] == "a"
    assert table.get((2,))["v"] == "b"


def test_abort_undoes_in_reverse_order():
    db = make_db()
    txn = db.transaction()
    txn.insert("kv", {"k": 1, "v": "a"})
    txn.update("kv", (1,), {"v": "b"})
    txn.update("kv", (1,), {"v": "c"})
    txn.delete("kv", (1,))
    txn.abort()
    assert (1,) not in db.table("kv")


def test_operations_after_commit_rejected():
    db = make_db()
    txn = db.transaction()
    txn.commit()
    with pytest.raises(TransactionAborted):
        txn.insert("kv", {"k": 1, "v": "a"})
    with pytest.raises(TransactionAborted):
        txn.commit()


def test_write_conflict_between_transactions():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
    t1 = db.transaction()
    t2 = db.transaction()
    t1.update("kv", (1,), {"v": "x"})
    with pytest.raises(LockConflictError):
        t2.get("kv", (1,))
    t1.commit()
    assert t2.get("kv", (1,))["v"] == "x"
    t2.commit()


def test_shared_readers_do_not_conflict():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
    t1 = db.transaction()
    t2 = db.transaction()
    assert t1.get("kv", (1,))["v"] == "a"
    assert t2.get("kv", (1,))["v"] == "a"
    t1.commit()
    t2.commit()


def test_get_for_update_takes_exclusive():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
    t1 = db.transaction()
    t1.get("kv", (1,), for_update=True)
    t2 = db.transaction()
    with pytest.raises(LockConflictError):
        t2.get("kv", (1,))
    t1.abort()


def test_get_or_none():
    db = make_db()
    with db.transaction() as txn:
        assert txn.get_or_none("kv", (1,)) is None
        txn.insert("kv", {"k": 1, "v": "a"})
        assert txn.get_or_none("kv", (1,))["v"] == "a"


def test_lookup_and_range_scan_take_read_locks():
    db = Database()
    table = db.create_table("t", ("a", "b"), ("a",))
    table.create_index("by_b", ("b",), ordered=True)
    with db.transaction() as txn:
        for a in range(4):
            txn.insert("t", {"a": a, "b": a % 2})
    reader = db.transaction()
    rows = reader.lookup("t", "by_b", (0,))
    assert len(rows) == 2
    scanned = list(reader.range_scan("t", "by_b", (0,), (1,)))
    assert len(scanned) == 4
    assert db.locks.held_count(reader.txn_id) == 4
    reader.commit()


def test_unknown_table():
    db = make_db()
    with pytest.raises(NoSuchTableError):
        with db.transaction() as txn:
            txn.insert("nope", {"k": 1})


def test_counters():
    db = make_db()
    txn = db.transaction()
    txn.insert("kv", {"k": 1, "v": "a"})
    txn.get("kv", (1,))
    txn.update("kv", (1,), {"v": "b"})
    assert txn.reads == 1
    assert txn.writes == 2
    txn.commit()


def test_recovery_round_trip():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
        txn.insert("kv", {"k": 2, "v": "b"})
    db.log.force()
    # An uncommitted transaction's writes sit in the buffer and die.
    doomed = db.transaction()
    doomed.insert("kv", {"k": 3, "v": "c"})
    survivors = db.log.crash()

    recovered = Database()
    recovered.create_table("kv", ("k", "v"), ("k",))
    recovered.recover_from(survivors)
    table = recovered.table("kv")
    assert len(table) == 2
    assert table.get((1,))["v"] == "a"
    assert (3,) not in table


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete"]),
              st.integers(min_value=0, max_value=8),
              st.integers(min_value=0, max_value=99)),
    max_size=25))
def test_property_abort_restores_exact_state(ops):
    """Atomicity: whatever a transaction did, abort leaves the database
    exactly as it was before the transaction began."""
    db = make_db()
    rng = random.Random(0)
    with db.transaction() as txn:
        for k in range(5):
            txn.insert("kv", {"k": k, "v": rng.randint(0, 9)})
    snapshot = {tuple(db.table("kv").pk_of(r)): r
                for r in db.table("kv").scan_all()}

    txn = db.transaction()
    for op, key, value in ops:
        try:
            if op == "insert":
                txn.insert("kv", {"k": key, "v": value})
            elif op == "update":
                txn.update("kv", (key,), {"v": value})
            else:
                txn.delete("kv", (key,))
        except Exception:
            pass  # duplicate insert / missing row: fine, txn continues
    txn.abort()

    after = {tuple(db.table("kv").pk_of(r)): r
             for r in db.table("kv").scan_all()}
    assert after == snapshot
    assert db.locks.total_locked_resources() == 0
