"""Failover machinery units: detection, election, replay, availability.

Exercises :mod:`repro.fleet.failover` and the :class:`ShardReplication`
WAL model from :mod:`repro.fleet.chaos` in isolation --- small fleets,
hand-scheduled crashes, exact virtual-clock assertions.  The end-to-end
chaos cells live in ``test_fleet_chaos.py``.
"""

import random

import pytest

from repro.db.server import DatabaseServer, ServerConfig
from repro.fleet.chaos import ShardReplication
from repro.fleet.config import FleetConfig
from repro.fleet.failover import AvailabilityTracker, FailoverManager
from repro.fleet.node import Fleet, Node, NodeState, PRIMARY, REPLICA
from repro.fleet.router import ShardState

CONFIG = FleetConfig(
    shards=1, replicas_per_shard=2, node_workers=1,
    heartbeat_interval_s=0.05, heartbeat_timeout_s=0.2,
    replay_fixed_s=0.05, replay_per_record_s=0.0002,
    boot_latency_min_s=0.3, boot_latency_max_s=0.3)


def _node(sim, node_id, role, lag_s=0.0, parked=False):
    server = DatabaseServer(sim, ServerConfig(workers=1,
                                              request_handlers=1))
    return Node(sim, node_id, 0, role, server, parked_floor_watts=4.0,
                replication_lag_s=lag_s, start_parked=parked)


def build(sim, lags=(0.05, 1.0), parked=0, group_commit_size=1):
    """One shard: primary node 0 plus one replica per lag entry (the
    last ``parked`` of them starting parked)."""
    primary = _node(sim, 0, PRIMARY)
    replicas = [
        _node(sim, i + 1, REPLICA, lag_s=lag,
              parked=(i >= len(lags) - parked))
        for i, lag in enumerate(lags)]
    fleet = Fleet(sim, [primary] + replicas)
    shard = ShardState(0, primary, replicas)
    replication = ShardReplication(sim, 0, group_commit_size)
    tracker = AvailabilityTracker(sim, [0])
    manager = FailoverManager(sim, fleet, [shard], {0: replication},
                              CONFIG, tracker, random.Random(42))
    return shard, replication, tracker, manager


def commit_writes(sim, replication, count, spacing_s=0.1,
                  start_s=0.01):
    for i in range(count):
        sim.schedule_at(start_s + spacing_s * i,
                        lambda i=i: replication.on_write_committed(i))


def crash_primary(sim, shard, replication, tracker, at_s):
    def fire():
        shard.primary.crash()
        replication.on_primary_crash()
        tracker.mark_down(shard.shard_id)
    sim.schedule_at(at_s, fire)


def run(sim, until):
    sim.schedule_at(until, lambda: None)
    sim.run(until=until)


# ----------------------------------------------------------------------
# AvailabilityTracker
# ----------------------------------------------------------------------
def test_tracker_closes_windows(sim):
    tracker = AvailabilityTracker(sim, [0, 1])
    sim.schedule_at(1.0, lambda: tracker.mark_down(0))
    sim.schedule_at(3.0, lambda: tracker.mark_up(0))
    run(sim, 4.0)
    assert tracker.windows == [(0, 1.0, 3.0)]
    # Shard 1 never went down; shard 0 was down 2 s of the 4 s window.
    assert tracker.availability(0.0, 4.0) == {0: 0.5, 1: 1.0}


def test_tracker_mark_down_is_idempotent(sim):
    tracker = AvailabilityTracker(sim, [0])
    sim.schedule_at(1.0, lambda: tracker.mark_down(0))
    sim.schedule_at(2.0, lambda: tracker.mark_down(0))  # still 1.0
    sim.schedule_at(3.0, lambda: tracker.mark_up(0))
    run(sim, 3.0)
    assert tracker.windows == [(0, 1.0, 3.0)]
    # mark_up with no open outage is a no-op too.
    tracker.mark_up(0)
    assert tracker.windows == [(0, 1.0, 3.0)]


def test_tracker_clips_open_outage_at_end(sim):
    tracker = AvailabilityTracker(sim, [0])
    sim.schedule_at(6.0, lambda: tracker.mark_down(0))
    run(sim, 8.0)
    assert tracker.outage_windows(8.0) == [(0, 6.0, 8.0)]
    assert tracker.availability(0.0, 8.0) == {0: 0.75}
    # Measurement windows that end before the outage see full uptime.
    assert tracker.availability(0.0, 6.0) == {0: 1.0}


def test_tracker_overlap_is_clamped_to_the_window(sim):
    tracker = AvailabilityTracker(sim, [0])
    sim.schedule_at(1.0, lambda: tracker.mark_down(0))
    sim.schedule_at(5.0, lambda: tracker.mark_up(0))
    run(sim, 5.0)
    # Outage [1, 5) against measurement [2, 4): fully down.
    assert tracker.availability(2.0, 4.0) == {0: 0.0}
    assert tracker.availability(4.0, 4.0) == {0: 1.0}  # empty window


# ----------------------------------------------------------------------
# ShardReplication (the WAL model)
# ----------------------------------------------------------------------
def test_replica_applies_forced_prefix_after_lag(sim):
    replication = ShardReplication(sim, 0, group_commit_size=1)
    commit_writes(sim, replication, 3, spacing_s=0.1, start_s=0.0)
    run(sim, 1.0)
    assert len(replication.force_times) == 3
    top = replication.force_times[-1][1]
    # Zero lag sees everything immediately; 0.15 s lag at t=0.2 has
    # only the first force (t=0.0) applied.
    assert replication.applied_lsn(1, 0.0, 0.25) == top
    assert replication.applied_lsn(1, 0.15, 0.2) \
        == replication.force_times[0][1]
    assert replication.applied_lsn(1, 5.0, 0.2) == 0


def test_crash_loses_exactly_the_buffered_tail(sim):
    # Group commit of 4 records = 2 txns (UPDATE+COMMIT each): the
    # fifth txn's records sit in the buffer when the primary dies.
    replication = ShardReplication(sim, 0, group_commit_size=4)
    commit_writes(sim, replication, 5, spacing_s=0.01, start_s=0.0)
    run(sim, 1.0)
    assert replication.log.buffered_commits == 1
    lost = replication.on_primary_crash()
    assert lost == 1
    assert replication.lost_commits == 1
    assert replication.crashed_at_s == sim.now


def test_nothing_ships_after_the_crash(sim):
    replication = ShardReplication(sim, 0, group_commit_size=1)
    commit_writes(sim, replication, 2, spacing_s=0.1, start_s=0.0)
    run(sim, 0.15)
    replication.on_primary_crash()  # at 0.15, after the first force
    run(sim, 5.0)
    # A zero-lag replica still only ever sees pre-crash forces.
    pre_crash = [lsn for t, lsn in replication.force_times if t <= 0.15]
    assert replication.applied_lsn(1, 0.0, 5.0) == pre_crash[-1]


def test_partition_freezes_the_apply_position(sim):
    replication = ShardReplication(sim, 0, group_commit_size=1)
    node = _node(sim, 1, REPLICA, lag_s=0.0)
    commit_writes(sim, replication, 1, start_s=0.0)
    run(sim, 0.05)
    replication.freeze_replica(node)
    frozen_at = replication.applied_lsn(1, 0.0, sim.now)
    commit_writes(sim, replication, 2, spacing_s=0.1, start_s=0.1)
    run(sim, 1.0)
    assert replication.is_frozen(1)
    assert replication.applied_lsn(1, 0.0, sim.now) == frozen_at
    replication.heal_replica(node)
    assert replication.applied_lsn(1, 0.0, sim.now) \
        == replication.force_times[-1][1]


def test_promotion_trims_unshipped_commits_and_replays(sim):
    replication = ShardReplication(sim, 0, group_commit_size=1)
    node = _node(sim, 1, REPLICA, lag_s=0.15)
    commit_writes(sim, replication, 3, spacing_s=0.1, start_s=0.0)
    run(sim, 0.25)
    replication.on_primary_crash()  # forces at 0.0, 0.1, 0.2 all durable
    # At 0.25 a 0.15 s-lag replica has applied the 0.0 and 0.1 forces;
    # the t=0.2 durable commit was never shipped.
    records, rows = replication.promote_to(node, 0.15, sim.now)
    assert replication.lost_commits == 1
    assert records == 4  # two txns x (UPDATE + COMMIT) survive the trim
    assert rows == 2
    assert replication.crashed_at_s is None  # write path alive again


# ----------------------------------------------------------------------
# FailoverManager
# ----------------------------------------------------------------------
def test_detection_waits_for_the_heartbeat_timeout(sim):
    shard, replication, tracker, manager = build(sim)
    crash_primary(sim, shard, replication, tracker, at_s=0.5)
    manager.start()
    run(sim, 2.0)
    manager.stop()
    detected = [t for t, _, event, _ in manager.timeline
                if event == "detected"]
    # Crash at 0.5, timeout 0.2: the first eligible tick is 0.70.
    assert detected == [pytest.approx(0.7)]


def test_most_caught_up_replica_wins_the_election(sim):
    shard, replication, tracker, manager = build(sim, lags=(0.05, 1.0))
    commit_writes(sim, replication, 5, spacing_s=0.1, start_s=0.01)
    crash_primary(sim, shard, replication, tracker, at_s=0.5)
    manager.start()
    run(sim, 2.0)
    manager.stop()
    # Node 1 (lag 0.05) has applied every force; node 2 (lag 1.0) none.
    assert shard.primary.node_id == 1
    assert shard.primary.role == PRIMARY
    assert shard.primary.replication_lag_s == 0.0
    assert manager.failovers == 1
    # 5 txns x (UPDATE + COMMIT), all durable and all shipped.
    assert manager.records_replayed == 10
    assert manager.rows_recovered == 5
    assert replication.lost_commits == 0
    # The corpse was demoted into the replica list.
    assert [r.node_id for r in shard.replicas] == [2, 0]
    assert shard.replicas[-1].role == REPLICA


def test_election_ties_break_to_the_lowest_node_id(sim):
    shard, replication, tracker, manager = build(sim, lags=(0.05, 0.05))
    commit_writes(sim, replication, 3, spacing_s=0.1, start_s=0.01)
    crash_primary(sim, shard, replication, tracker, at_s=0.5)
    manager.start()
    run(sim, 2.0)
    manager.stop()
    assert shard.primary.node_id == 1


def test_mttr_covers_crash_to_promotion(sim):
    shard, replication, tracker, manager = build(sim, lags=(0.05, 1.0))
    commit_writes(sim, replication, 5, spacing_s=0.1, start_s=0.01)
    crash_primary(sim, shard, replication, tracker, at_s=0.5)
    manager.start()
    run(sim, 2.0)
    manager.stop()
    # Detected at 0.70; replay = 0.05 fixed + 0.0002 x 10 records.
    expected_promotion = 0.7 + 0.05 + 0.0002 * 10
    promoted = [t for t, _, event, _ in manager.timeline
                if event == "promoted"]
    assert promoted == [pytest.approx(expected_promotion)]
    assert manager.mean_mttr_s == pytest.approx(expected_promotion - 0.5)
    # The tracker's outage closed at promotion.
    assert tracker.windows == [(0, 0.5, pytest.approx(expected_promotion))]


def test_no_active_replica_boots_the_warm_spare(sim):
    shard, replication, tracker, manager = build(sim, lags=(0.2,),
                                                 parked=1)
    assert shard.replicas[0].state is NodeState.PARKED
    crash_primary(sim, shard, replication, tracker, at_s=0.5)
    manager.start()
    run(sim, 3.0)
    manager.stop()
    events = [event for _, _, event, _ in manager.timeline]
    assert events == ["detected", "boot-spare", "replay", "promoted"]
    assert shard.primary.node_id == 1
    assert shard.primary.state is NodeState.ACTIVE
    # Detected 0.70 + boot 0.3 (pinned uniform) + replay 0.05 fixed.
    assert manager.mttr_samples == [pytest.approx(0.55)]


def test_no_replica_at_all_strands_the_shard(sim):
    shard, replication, tracker, manager = build(sim, lags=())
    crash_primary(sim, shard, replication, tracker, at_s=0.5)
    manager.start()
    run(sim, 2.0)
    manager.stop()
    events = [(event, node_id) for _, _, event, node_id
              in manager.timeline]
    assert events == [("detected", 0), ("stranded", -1)]
    assert manager.failovers == 0
    assert shard.primary.state is NodeState.CRASHED
    # The outage runs to end of run.
    assert tracker.availability(0.0, 2.0) == {0: 0.25}


def test_winner_dying_mid_replay_triggers_reelection(sim):
    shard, replication, tracker, manager = build(sim, lags=(0.05, 1.0))
    commit_writes(sim, replication, 5, spacing_s=0.1, start_s=0.01)
    crash_primary(sim, shard, replication, tracker, at_s=0.5)
    # Node 1 wins the 0.70 election then dies during its replay window.
    sim.schedule_at(0.71, lambda: shard.replicas[0].crash())
    manager.start()
    run(sim, 3.0)
    manager.stop()
    events = [event for _, _, event, _ in manager.timeline]
    assert "re-elect" in events
    assert shard.primary.node_id == 2  # the straggler was all we had
    assert manager.failovers == 1


def test_stop_cancels_the_heartbeat(sim):
    shard, replication, tracker, manager = build(sim)
    manager.start()
    run(sim, 0.3)
    manager.stop()
    crash_primary(sim, shard, replication, tracker, at_s=0.5)
    run(sim, 2.0)
    assert manager.timeline == []
