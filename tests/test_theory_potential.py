"""Appendix C: the potential-function proof of Theorem 4.4, checked
numerically along simulated POLARIS/YDS trajectories."""

import random

import pytest

from repro.theory.instances import (
    adversarial_pair, random_agreeable_instance, random_instance,
)
from repro.theory.model import Job, ProblemInstance
from repro.theory.polaris_ideal import polaris_ideal_schedule
from repro.theory.potential import (
    phi, remaining_at, speed_at, verify_theorem_4_4,
)
from repro.theory.yds import yds_schedule

ALPHA = 3.0


def test_remaining_at_reconstruction():
    instance = ProblemInstance([Job(1, 0.0, 4.0, 2.0)])
    schedule = yds_schedule(instance)  # runs at 0.5 over [0, 4]
    assert remaining_at(schedule, instance, -1.0) == {}
    assert remaining_at(schedule, instance, 0.0)[1] == pytest.approx(2.0)
    assert remaining_at(schedule, instance, 2.0)[1] == pytest.approx(1.0)
    assert remaining_at(schedule, instance, 4.0) == {}


def test_speed_at():
    instance = ProblemInstance([Job(1, 0.0, 4.0, 2.0)])
    schedule = yds_schedule(instance)
    assert speed_at(schedule, 1.0) == pytest.approx(0.5)
    assert speed_at(schedule, 5.0) == 0.0


def test_phi_zero_with_no_pending_work():
    instance = ProblemInstance([Job(1, 1.0, 2.0, 1.0)])
    scaled = instance.scaled(instance.c_factor())
    polaris = polaris_ideal_schedule(instance)
    yds = yds_schedule(scaled)
    assert phi(0.5, instance, scaled, polaris, yds, ALPHA) == 0.0
    assert phi(10.0, instance, scaled, polaris, yds, ALPHA) == 0.0


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_appendix_c_claims_on_arbitrary_instances(seed):
    rng = random.Random(seed)
    check = verify_theorem_4_4(random_instance(6, rng), alpha=ALPHA)
    assert abs(check.claim1_boundary_values[0]) < 1e-9
    assert abs(check.claim1_boundary_values[1]) < 1e-9
    assert check.claim2_max_event_jump < 1e-6
    assert check.claim3_max_violation < 1e-6
    assert check.theorem_4_4_holds
    assert check.all_claims_hold
    assert check.drift_samples > 0


@pytest.mark.parametrize("seed", [4, 5])
def test_appendix_c_claims_on_agreeable_instances(seed):
    rng = random.Random(seed)
    check = verify_theorem_4_4(random_agreeable_instance(6, rng),
                               alpha=ALPHA)
    assert check.all_claims_hold


def test_appendix_c_on_adversarial_pair():
    """The lemma the proof leans on hardest: the earliest-deadline
    arrival case, where POLARIS's queue swaps the running job against
    t_new + t'_cur with c * w(t_new) >= w(t_new) + w(t_cur)."""
    check = verify_theorem_4_4(adversarial_pair(w_max=4.0, w_min=1.0),
                               alpha=ALPHA)
    assert check.all_claims_hold
    assert check.c_factor == pytest.approx(5.0)


def test_theorem_4_4_with_other_alpha():
    rng = random.Random(9)
    check = verify_theorem_4_4(random_instance(5, rng), alpha=2.0)
    assert check.all_claims_hold


def test_energy_accounting_matches_schedules():
    rng = random.Random(11)
    instance = random_instance(6, rng)
    check = verify_theorem_4_4(instance, alpha=ALPHA)
    assert check.energy_polaris == pytest.approx(
        polaris_ideal_schedule(instance).energy(ALPHA), rel=1e-9)
    scaled = instance.scaled(instance.c_factor())
    assert check.energy_yds_scaled == pytest.approx(
        yds_schedule(scaled).energy(ALPHA), rel=1e-9)
