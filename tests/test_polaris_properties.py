"""Property-based invariants of SetProcessorFreq (Figure 2).

These hold for *any* workload/queue configuration:

* the selected frequency is always on the grid;
* enqueueing an additional request can only push the frequency up;
* loosening a deadline can only let the frequency fall;
* inflating the estimator's predictions can only push the frequency up;
* the selection is deterministic in its inputs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request
from repro.core.workload import Workload

FREQS = (1.2, 1.6, 2.0, 2.4, 2.8)


def build_scheduler(exec_ms: float, scale: float = 1.0) -> PolarisScheduler:
    estimator = ExecutionTimeEstimator(window=4)
    for freq in FREQS:
        estimator.prime("w", freq, scale * exec_ms * 1e-3 * 2.8 / freq,
                        count=4)
    return PolarisScheduler(FREQS, estimator)


queue_strategy = st.lists(
    st.tuples(st.floats(min_value=0.5, max_value=200.0),   # target ms
              st.floats(min_value=0.0, max_value=50.0)),   # arrival ms
    max_size=12)


def populate(scheduler, queue_params):
    requests = []
    for target_ms, arrival_ms in queue_params:
        workload = Workload("w", target_ms * 1e-3)
        request = Request(workload, "w", arrival_ms * 1e-3, 1.0)
        scheduler.enqueue(request)
        requests.append(request)
    return requests


@settings(max_examples=120, deadline=None)
@given(queue_params=queue_strategy,
       exec_ms=st.floats(min_value=0.05, max_value=5.0),
       now_ms=st.floats(min_value=0.0, max_value=60.0))
def test_selected_frequency_on_grid_and_deterministic(queue_params,
                                                      exec_ms, now_ms):
    scheduler = build_scheduler(exec_ms)
    populate(scheduler, queue_params)
    running = Request(Workload("w", 0.05), "w", 0.0, 1.0)
    first = scheduler.select_frequency(now_ms * 1e-3, running, 1e-4)
    second = scheduler.select_frequency(now_ms * 1e-3, running, 1e-4)
    assert first in FREQS
    assert first == second


@settings(max_examples=120, deadline=None)
@given(queue_params=queue_strategy,
       exec_ms=st.floats(min_value=0.05, max_value=5.0),
       extra_target_ms=st.floats(min_value=0.5, max_value=200.0))
def test_adding_work_never_lowers_frequency(queue_params, exec_ms,
                                            extra_target_ms):
    baseline = build_scheduler(exec_ms)
    augmented = build_scheduler(exec_ms)
    populate(baseline, queue_params)
    populate(augmented, queue_params)
    augmented.enqueue(Request(Workload("w", extra_target_ms * 1e-3),
                              "w", 0.0, 1.0))
    running = Request(Workload("w", 0.05), "w", 0.0, 1.0)
    assert augmented.select_frequency(0.0, running, 0.0) \
        >= baseline.select_frequency(0.0, running, 0.0)


@settings(max_examples=120, deadline=None)
@given(queue_params=queue_strategy,
       exec_ms=st.floats(min_value=0.05, max_value=5.0),
       slack_factor=st.floats(min_value=1.0, max_value=10.0))
def test_loosening_deadlines_never_raises_frequency(queue_params, exec_ms,
                                                    slack_factor):
    tight = build_scheduler(exec_ms)
    loose = build_scheduler(exec_ms)
    for target_ms, arrival_ms in queue_params:
        tight.enqueue(Request(Workload("w", target_ms * 1e-3), "w",
                              arrival_ms * 1e-3, 1.0))
        loose.enqueue(Request(
            Workload("w", target_ms * slack_factor * 1e-3), "w",
            arrival_ms * 1e-3, 1.0))
    running_tight = Request(Workload("w", 0.05), "w", 0.0, 1.0)
    running_loose = Request(Workload("w", 0.05 * slack_factor), "w",
                            0.0, 1.0)
    assert loose.select_frequency(0.0, running_loose, 0.0) \
        <= tight.select_frequency(0.0, running_tight, 0.0)


@settings(max_examples=120, deadline=None)
@given(queue_params=queue_strategy,
       exec_ms=st.floats(min_value=0.05, max_value=5.0),
       inflation=st.floats(min_value=1.0, max_value=5.0))
def test_larger_estimates_never_lower_frequency(queue_params, exec_ms,
                                                inflation):
    """Conservatism is safe: inflating mu(c, f) can only speed us up ---
    the formal footing for the paper's p95-tail estimator choice."""
    normal = build_scheduler(exec_ms)
    inflated = build_scheduler(exec_ms, scale=inflation)
    populate(normal, queue_params)
    populate(inflated, queue_params)
    running = Request(Workload("w", 0.05), "w", 0.0, 1.0)
    assert inflated.select_frequency(0.0, running, 0.0) \
        >= normal.select_frequency(0.0, running, 0.0)


@settings(max_examples=80, deadline=None)
@given(queue_params=queue_strategy,
       exec_ms=st.floats(min_value=0.05, max_value=5.0))
def test_predicted_feasibility_of_selected_frequency(queue_params, exec_ms):
    """Unless the maximum frequency is selected, the chosen frequency
    must be predicted to meet every deadline in the queue."""
    scheduler = build_scheduler(exec_ms)
    requests = populate(scheduler, queue_params)
    running = Request(Workload("w", 1.0), "w", 0.0, 1.0)
    now = 0.0
    freq = scheduler.select_frequency(now, running, 0.0)
    if freq == FREQS[-1]:
        return  # flat out: feasibility not guaranteed by design
    estimate = scheduler.estimator.estimate
    cumulative = estimate("w", freq)  # running remainder (e0 = 0)
    for request in sorted(requests,
                          key=lambda r: (r.deadline, r.request_id)):
        cumulative += estimate("w", freq)
        assert now + cumulative <= request.deadline + 1e-9
