"""The POLARIS SetProcessorFreq algorithm (Figure 2) and variants."""

import pytest

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request
from repro.core.variants import PolarisFifoNoArriveScheduler, PolarisFifoScheduler
from repro.core.workload import Workload

FREQS = (1.2, 1.6, 2.0, 2.4, 2.8)


def primed_estimator(exec_at_28: dict) -> ExecutionTimeEstimator:
    """Estimator with perfect 1/f-scaled predictions per workload."""
    estimator = ExecutionTimeEstimator(window=10)
    for workload, seconds in exec_at_28.items():
        for freq in FREQS:
            estimator.prime(workload, freq, seconds * 2.8 / freq, count=10)
    return estimator


def request_for(workload: Workload, arrival: float = 0.0,
                work: float = 1.0) -> Request:
    return Request(workload, workload.name, arrival, work)


def test_frequencies_must_ascend():
    with pytest.raises(ValueError):
        PolarisScheduler((2.8, 1.2), ExecutionTimeEstimator())
    with pytest.raises(ValueError):
        PolarisScheduler((), ExecutionTimeEstimator())


def test_idle_empty_queue_selects_minimum():
    scheduler = PolarisScheduler(FREQS, ExecutionTimeEstimator())
    assert scheduler.select_frequency(0.0, None) == 1.2


def test_unexplored_estimates_explore_from_lowest():
    """Zero estimates -> lowest frequency (Section 6.1's gradual
    exploration from lowest to highest)."""
    scheduler = PolarisScheduler(FREQS, ExecutionTimeEstimator())
    workload = Workload("w", 0.010)
    running = request_for(workload)
    assert scheduler.select_frequency(0.0, running, 0.0) == 1.2


def test_running_transaction_minimum_sufficient_frequency():
    # exec(2.8) = 1 ms -> exec(1.2) = 2.333 ms.  Deadline 2.5 ms: 1.2 is
    # enough.  Deadline 1.5 ms: need exec <= 1.5 ms -> f >= 1.867 -> 2.0.
    estimator = primed_estimator({"w": 1e-3})
    scheduler = PolarisScheduler(FREQS, estimator)
    loose = Request(Workload("w", 2.5e-3), "w", 0.0, 1.0)
    assert scheduler.select_frequency(0.0, loose, 0.0) == 1.2
    tight = Request(Workload("w", 1.5e-3), "w", 0.0, 1.0)
    assert scheduler.select_frequency(0.0, tight, 0.0) == 2.0


def test_elapsed_time_reduces_remaining():
    """Same instant, same deadline: the run time so far (e0) is what
    shrinks the predicted remaining work (Figure 2, line 4)."""
    estimator = primed_estimator({"w": 1e-3})
    scheduler = PolarisScheduler(FREQS, estimator)
    request = Request(Workload("w", 3.0e-3), "w", 0.0, 1.0)
    now = 1.2e-3
    # Freshly dispatched (e0=0): 2.333 ms remaining at 1.2 GHz would
    # finish at 3.53 ms > 3 ms deadline -> 1.6 GHz needed.
    assert scheduler.select_frequency(now, request, 0.0) == 1.6
    # Running since t=0 (e0=1.2 ms): remaining@1.2 = 1.13 ms, finishing
    # at 2.33 ms -> the minimum frequency suffices.
    assert scheduler.select_frequency(now, request, now) == 1.2


def test_deadline_already_passed_runs_flat_out():
    estimator = primed_estimator({"w": 1e-3})
    scheduler = PolarisScheduler(FREQS, estimator)
    request = Request(Workload("w", 1e-3), "w", 0.0, 1.0)
    assert scheduler.select_frequency(5.0, request, 0.004) == 2.8


def test_urgent_arrival_behind_running_raises_frequency():
    """Lemma 4.2's situation: the queued transaction's deadline is
    earlier than the running one's; q-hat includes the running
    transaction's remaining time, so the frequency must cover both."""
    estimator = primed_estimator({"long": 2e-3, "short": 0.3e-3})
    scheduler = PolarisScheduler(FREQS, estimator)
    running = Request(Workload("long", 40e-3), "long", 0.0, 1.0)
    # Alone, the long transaction would idle along at 1.2 GHz.
    assert scheduler.select_frequency(0.0, running, 0.0) == 1.2
    # A short transaction with a 3 ms deadline arrives:
    # need (2ms + 0.3ms) * 2.8/f <= 3ms -> f >= 2.147 -> 2.4 GHz.
    urgent = Request(Workload("short", 3e-3), "short", 0.0, 1.0)
    scheduler.enqueue(urgent)
    assert scheduler.select_frequency(0.0, running, 0.0) == 2.4


def test_queue_cumulative_qhat():
    """Each queued transaction waits for all earlier-deadline ones."""
    estimator = primed_estimator({"w": 1e-3})
    workload = Workload("w", 10e-3)  # all deadlines at 10 ms
    scheduler = PolarisScheduler(FREQS, estimator)
    running = request_for(workload)
    for _ in range(3):
        scheduler.enqueue(request_for(workload))
    # 4 transactions, 1 ms each at 2.8: need 4 * 2.8/f <= 10 -> f >= 1.12
    assert scheduler.select_frequency(0.0, running, 0.0) == 1.2
    for _ in range(5):
        scheduler.enqueue(request_for(workload))
    # 9 transactions: 9 * 2.8/f <= 10 -> f >= 2.52 -> 2.8.
    assert scheduler.select_frequency(0.0, running, 0.0) == 2.8


def test_infeasible_queue_early_returns_max():
    estimator = primed_estimator({"w": 1e-3})
    workload = Workload("w", 2e-3)
    scheduler = PolarisScheduler(FREQS, estimator)
    running = request_for(workload)
    for _ in range(10):
        scheduler.enqueue(request_for(workload))
    scanned_before = scheduler.queue_items_scanned
    assert scheduler.select_frequency(0.0, running, 0.0) == 2.8
    # Line 14: stop checking once the highest frequency is required ---
    # with 10 queued 1 ms transactions against 2 ms deadlines, the scan
    # must abort early.
    assert scheduler.queue_items_scanned - scanned_before < 10


def test_edf_dispatch_order():
    scheduler = PolarisScheduler(FREQS, ExecutionTimeEstimator())
    late = Request(Workload("a", 10.0), "a", 0.0, 1.0)
    early = Request(Workload("b", 1.0), "b", 0.0, 1.0)
    scheduler.enqueue(late)
    scheduler.enqueue(early)
    assert scheduler.next_request() is early
    assert scheduler.next_request() is late
    assert scheduler.next_request() is None


def test_record_completion_updates_estimator():
    estimator = ExecutionTimeEstimator(window=10)
    scheduler = PolarisScheduler(FREQS, estimator)
    request = Request(Workload("w", 1.0), "w", 0.0, 1.0)
    request.dispatch_time = 0.0
    request.finish_time = 0.002
    request.dispatch_freq = 1.6
    scheduler.record_completion(request)
    assert estimator.estimate("w", 1.6) == pytest.approx(0.002)


def test_record_completion_skips_mixed_frequency_runs():
    """A run spanning a frequency change misattributes time; feeding it
    back would bias the windows optimistic (see PolarisScheduler)."""
    estimator = ExecutionTimeEstimator(window=10)
    scheduler = PolarisScheduler(FREQS, estimator)
    request = Request(Workload("w", 1.0), "w", 0.0, 1.0)
    request.dispatch_time = 0.0
    request.finish_time = 0.002
    request.dispatch_freq = 1.2
    request.single_freq = False
    scheduler.record_completion(request)
    assert estimator.estimate("w", 1.2) == 0.0
    assert estimator.observation_count("w", 1.2) == 0


def test_record_completion_requires_dispatch_freq():
    scheduler = PolarisScheduler(FREQS, ExecutionTimeEstimator())
    request = Request(Workload("w", 1.0), "w", 0.0, 1.0)
    request.dispatch_time = 0.0
    request.finish_time = 1.0
    with pytest.raises(ValueError):
        scheduler.record_completion(request)


def test_invocation_counters():
    scheduler = PolarisScheduler(FREQS, ExecutionTimeEstimator())
    scheduler.select_frequency(0.0, None)
    scheduler.select_frequency(0.0, None)
    assert scheduler.invocations == 2


# ----------------------------------------------------------------------
# Variants (Section 6.6)
# ----------------------------------------------------------------------
def test_fifo_variant_dispatches_in_arrival_order():
    scheduler = PolarisFifoScheduler(FREQS, ExecutionTimeEstimator())
    late = Request(Workload("a", 10.0), "a", 0.0, 1.0)
    early = Request(Workload("b", 1.0), "b", 1.0, 1.0)
    scheduler.enqueue(late)
    scheduler.enqueue(early)
    assert scheduler.next_request() is late  # FIFO, not EDF
    assert scheduler.adjusts_on_arrival is True


def test_fifo_variant_qhat_uses_queue_position():
    """Under FIFO, an early-deadline transaction stuck behind a queue
    of late-deadline ones forces a high frequency (the EDF scheduler
    would simply reorder instead)."""
    estimator = primed_estimator({"long": 2e-3, "short": 0.3e-3})
    fifo = PolarisFifoScheduler(FREQS, estimator)
    edf = PolarisScheduler(FREQS, estimator)
    long_workload = Workload("long", 100e-3)
    short_workload = Workload("short", 5e-3)
    for scheduler in (fifo, edf):
        scheduler.enqueue(Request(long_workload, "long", 0.0, 1.0))
        scheduler.enqueue(Request(long_workload, "long", 0.0, 1.0))
        scheduler.enqueue(Request(short_workload, "short", 0.0, 1.0))
    running = Request(long_workload, "long", 0.0, 1.0)
    # FIFO: short waits for running + 2 longs = 6.3 ms of 2.8 GHz work
    # against a 5 ms deadline -> impossible -> flat out.
    assert fifo.select_frequency(0.0, running, 0.0) == 2.8
    # EDF: short runs right after the running transaction; 2.3 ms of
    # work against 5 ms fits far below the maximum.
    assert edf.select_frequency(0.0, running, 0.0) < 2.8


def test_noarrive_variant_flag():
    scheduler = PolarisFifoNoArriveScheduler(FREQS,
                                             ExecutionTimeEstimator())
    assert scheduler.adjusts_on_arrival is False
    assert scheduler.name == "polaris-fifo-noarrive"


def test_mu_cache_invalidated_by_observe():
    """New observations must change subsequent selections (no stale
    cached estimate vectors)."""
    estimator = primed_estimator({"w": 1e-3})
    scheduler = PolarisScheduler(FREQS, estimator)
    tight = Request(Workload("w", 1.5e-3), "w", 0.0, 1.0)
    assert scheduler.select_frequency(0.0, tight, 0.0) == 2.0
    # Re-prime the estimator so the transaction now looks 10x longer:
    # no frequency suffices, so POLARIS must run flat out.
    for freq in FREQS:
        estimator.prime("w", freq, 10e-3 * 2.8 / freq, count=1000)
    assert scheduler.select_frequency(0.0, tight, 0.0) == 2.8


def test_mu_cache_disabled_for_versionless_estimator():
    """Estimator proxies without a ``version`` attribute (e.g. the
    fault injector's time-varying skew wrapper) must not be cached."""

    class TimeVaryingProxy:
        def __init__(self, inner):
            self._inner = inner
            self.scale = 1.0

        def estimate(self, workload, freq):
            return self._inner.estimate(workload, freq) * self.scale

    proxy = TimeVaryingProxy(primed_estimator({"w": 1e-3}))
    assert not hasattr(proxy, "version")
    scheduler = PolarisScheduler(FREQS, proxy)
    tight = Request(Workload("w", 1.5e-3), "w", 0.0, 1.0)
    assert scheduler.select_frequency(0.0, tight, 0.0) == 2.0
    # The proxy's estimates drift without any version bump; the
    # scheduler must see the change immediately.
    proxy.scale = 10.0
    assert scheduler.select_frequency(0.0, tight, 0.0) == 2.8
