"""Discrete-event engine: ordering, cancellation, run control."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order(sim):
    fired = []
    sim.schedule(3.0, lambda: fired.append(3))
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2, 3]
    assert sim.now == 3.0


def test_same_time_priority_then_fifo(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append("late"), priority=5)
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(1.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("early"), priority=-5)
    sim.run()
    assert fired == ["early", "a", "b", "late"]


def test_cancelled_event_skipped(sim):
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("no"))
    sim.schedule(2.0, lambda: fired.append("yes"))
    event.cancel()
    sim.run()
    assert fired == ["yes"]


def test_run_until_advances_clock_exactly(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=3.0)
    assert fired == [1]
    assert sim.now == 3.0
    sim.run()  # remaining event still fires later
    assert fired == [1, 5]
    assert sim.now == 5.0


def test_schedule_during_run(sim):
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_stop_halts_run(sim):
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    # After stop, the later event is still pending.
    assert sim.pending_count() == 1


def test_step_processes_single_event(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_time_skips_cancelled(sim):
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 2.0


def test_pending_count_excludes_cancelled(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    keep.cancel()
    assert sim.pending_count() == 0


def test_reentrant_run_rejected(sim):
    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_property_execution_order_matches_sorted_delays(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)


# ----------------------------------------------------------------------
# Live-event accounting and cancelled-garbage compaction
# ----------------------------------------------------------------------
def test_cancel_after_fire_is_noop(sim):
    """Regression: cancelling an already-executed event must neither
    raise nor corrupt the live-event counter."""
    event = sim.schedule(1.0, lambda: None)
    later = sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert event.fired
    event.cancel()  # harmless no-op
    event.cancel()  # idempotent
    assert not event.cancelled
    assert sim.pending_count() == 1
    later.cancel()
    assert sim.pending_count() == 0


def test_event_repr_shows_time_priority_seq_state(sim):
    event = sim.schedule(1.5, lambda: None, priority=2)
    text = repr(event)
    assert text == f"<Event t=1.500000000 prio=2 seq={event.seq} pending>"
    event.cancel()
    assert repr(event).endswith("cancelled>")
    fired = sim.schedule(0.5, lambda: None)
    sim.run(until=1.0)
    assert repr(fired).endswith("fired>")
    assert f"seq={fired.seq}" in repr(fired)


def test_cancel_twice_counts_once(sim):
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending_count() == 1


def test_cancel_during_run_reflected_in_pending_count(sim):
    victim = sim.schedule(2.0, lambda: None)

    def killer():
        victim.cancel()
        assert sim.pending_count() == 0

    sim.schedule(1.0, killer)
    sim.run()
    assert sim.pending_count() == 0


def test_pending_count_tracks_schedule_pop_cancel(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending_count() == 5
    sim.step()
    assert sim.pending_count() == 4
    events[2].cancel()
    assert sim.pending_count() == 3
    sim.run()
    assert sim.pending_count() == 0


def test_events_processed_counts_only_fired(sim):
    fired = sim.schedule(1.0, lambda: None)
    dropped = sim.schedule(2.0, lambda: None)
    dropped.cancel()
    sim.run()
    assert sim.events_processed == 1
    assert fired.fired and not dropped.fired


def test_compaction_bounds_heap_garbage(sim):
    """Reschedule churn (the POLARIS frequency-change pattern) must not
    grow the heap without bound."""
    from repro.sim.engine import COMPACTION_MIN_GARBAGE
    live = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
    for i in range(10000):
        sim.schedule(1.0 + i * 1e-6, lambda: None).cancel()
    assert sim.pending_count() == 10
    # Garbage is kept below the live count once past the floor.
    assert sim.heap_size() <= 10 + COMPACTION_MIN_GARBAGE + 1
    sim.run(until=500.0)
    assert sim.now == 500.0
    for event in live:
        event.cancel()
    assert sim.pending_count() == 0


def test_compaction_preserves_order_and_results(sim):
    """Interleave schedules and cancels past the compaction threshold;
    surviving events still fire in exact (time, priority, seq) order."""
    fired = []
    keep = []
    for i in range(500):
        event = sim.schedule(1.0 + (i * 7919 % 500),
                             lambda i=i: fired.append(i))
        if i % 3 == 0:
            keep.append((1.0 + (i * 7919 % 500), i))
        else:
            event.cancel()
    sim.run()
    assert fired == [i for _t, i in sorted(keep)]
    assert sim.pending_count() == 0
