"""Discrete-event engine: ordering, cancellation, run control."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order(sim):
    fired = []
    sim.schedule(3.0, lambda: fired.append(3))
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2, 3]
    assert sim.now == 3.0


def test_same_time_priority_then_fifo(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append("late"), priority=5)
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(1.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("early"), priority=-5)
    sim.run()
    assert fired == ["early", "a", "b", "late"]


def test_cancelled_event_skipped(sim):
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("no"))
    sim.schedule(2.0, lambda: fired.append("yes"))
    event.cancel()
    sim.run()
    assert fired == ["yes"]


def test_run_until_advances_clock_exactly(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=3.0)
    assert fired == [1]
    assert sim.now == 3.0
    sim.run()  # remaining event still fires later
    assert fired == [1, 5]
    assert sim.now == 5.0


def test_schedule_during_run(sim):
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_stop_halts_run(sim):
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    # After stop, the later event is still pending.
    assert sim.pending_count() == 1


def test_step_processes_single_event(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_time_skips_cancelled(sim):
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 2.0


def test_pending_count_excludes_cancelled(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    keep.cancel()
    assert sim.pending_count() == 0


def test_reentrant_run_rejected(sim):
    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_property_execution_order_matches_sorted_delays(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)
