"""Functional TPC-E-style workload: loader and all ten request types."""

import random

import pytest

from repro.workloads import tpce


@pytest.fixture(scope="module")
def loaded():
    config = tpce.TpceConfig(customers=10, securities=15, brokers=3)
    db = tpce.build_database(config, seed=1)
    return db, config


def test_loader_row_counts(loaded):
    db, config = loaded
    counts = db.checkpoint_rowcounts()
    assert counts["customer"] == config.customers
    assert counts["account"] == (config.customers
                                 * config.accounts_per_customer)
    assert counts["broker"] == config.brokers
    assert counts["security"] == config.securities
    assert counts["last_trade"] == config.securities
    assert counts["trade"] == (config.customers
                               * config.accounts_per_customer
                               * config.initial_trades_per_account)


def test_initial_consistency(loaded):
    db, config = loaded
    assert tpce.check_consistency(db, config) == []


def test_trade_order_creates_pending_trade():
    config = tpce.TpceConfig(customers=5)
    db = tpce.build_database(config, seed=2)
    before = len(db.table("trade"))
    result = tpce.trade_order(db, random.Random(3), config, now=1.0)
    assert len(db.table("trade")) == before + 1
    trade = db.table("trade").get((result["t_id"],))
    assert trade["t_status"] == "PNDG"
    broker_trades = sum(b["b_num_trades"]
                        for b in db.table("broker").scan_all())
    assert broker_trades == 1


def test_trade_result_settles_oldest_pending():
    config = tpce.TpceConfig(customers=5)
    db = tpce.build_database(config, seed=2)
    rng = random.Random(3)
    placed = tpce.trade_order(db, rng, config, now=1.0)
    trade = db.table("trade").get((placed["t_id"],))
    account_before = db.table("account").get((trade["t_ca_id"],))
    result = tpce.trade_result(db, rng, config, now=2.0)
    assert result["completed"] == placed["t_id"]
    settled = db.table("trade").get((placed["t_id"],))
    assert settled["t_status"] == "CMPT"
    account_after = db.table("account").get((trade["t_ca_id"],))
    value = trade["t_qty"] * trade["t_price"]
    if trade["t_is_buy"]:
        assert account_after["ca_balance"] == pytest.approx(
            account_before["ca_balance"] - value)
    else:
        assert account_after["ca_balance"] == pytest.approx(
            account_before["ca_balance"] + value)


def test_trade_result_without_pending():
    config = tpce.TpceConfig(customers=3)
    db = tpce.build_database(config, seed=4)
    assert tpce.trade_result(db, random.Random(5), config)["completed"] \
        is None


def test_read_only_types_return_data(loaded):
    db, config = loaded
    rng = random.Random(6)
    status = tpce.trade_status(db, rng, config)
    assert status["count"] >= 1
    lookup = tpce.trade_lookup(db, rng, config)
    assert lookup["trades"] >= 1
    assert lookup["value"] > 0
    position = tpce.customer_position(db, rng, config)
    assert position["cash"] > 0
    assert position["market"] > 0
    volume = tpce.broker_volume(db, rng, config)
    assert len(volume["brokers"]) == 3
    watch = tpce.market_watch(db, rng, config)
    assert "pct_change" in watch
    detail = tpce.security_detail(db, rng, config)
    assert detail["price"] > 0


def test_market_feed_moves_prices():
    config = tpce.TpceConfig(customers=3, securities=10)
    db = tpce.build_database(config, seed=7)
    before = {lt["lt_s_symb"]: lt["lt_price"]
              for lt in db.table("last_trade").scan_all()}
    result = tpce.market_feed(db, random.Random(8), config)
    after = {lt["lt_s_symb"]: lt["lt_price"]
             for lt in db.table("last_trade").scan_all()}
    changed = sum(1 for symb in before if before[symb] != after[symb])
    assert result["updated"] == 8
    assert changed >= 1  # drifts of 0.00 can round away, but not all


def test_trade_update_annotates(loaded_config=None):
    config = tpce.TpceConfig(customers=5)
    db = tpce.build_database(config, seed=9)
    result = tpce.trade_update(db, random.Random(10), config, now=3.5)
    assert result["updated"] >= 1
    annotated = [t for t in db.table("trade").scan_all() if t["t_comment"]]
    assert len(annotated) == result["updated"]


def test_mixed_workload_preserves_invariants():
    config = tpce.TpceConfig(customers=8, securities=12)
    db = tpce.build_database(config, seed=11)
    rng = random.Random(12)
    spec = tpce.make_spec()
    for i in range(400):
        txn_type = spec.choose_type(rng)
        assert txn_type.body is not None
        txn_type.body(db, rng, config, now=float(i))
    assert tpce.check_consistency(db, config) == []


def test_spec_calibration():
    spec = tpce.make_spec(include_bodies=False)
    assert len(spec.types) == 10
    means = [t.service.mean_seconds for t in spec.types]
    # The paper's 0.06 - 2.3 ms range (Section 6.2.1).
    assert min(means) == pytest.approx(60e-6)
    assert max(means) == pytest.approx(2300e-6)
    total_weight = sum(t.mix_weight for t in spec.types)
    assert total_weight == pytest.approx(100.0)
