"""Advanced storage features: wait-die, deadlock detection, checkpoints."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.storage import log as wal
from repro.db.storage.database import Database
from repro.db.storage.errors import LockConflictError
from repro.db.storage.locks import (
    LockManager, LockMode, WouldWaitError, find_deadlock,
)

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


# ----------------------------------------------------------------------
# Wait-die
# ----------------------------------------------------------------------
def test_wait_die_older_requester_waits():
    locks = LockManager(policy="wait-die")
    locks.acquire(5, "t", (1,), X)
    with pytest.raises(WouldWaitError):
        locks.acquire(3, "t", (1,), X)  # older (smaller id) may wait
    assert locks.waits == 1
    assert locks.deaths == 0


def test_wait_die_younger_requester_dies():
    locks = LockManager(policy="wait-die")
    locks.acquire(3, "t", (1,), X)
    with pytest.raises(LockConflictError) as info:
        locks.acquire(5, "t", (1,), X)  # younger dies
    assert not isinstance(info.value, WouldWaitError)
    assert locks.deaths == 1


def test_wait_die_retry_succeeds_after_release():
    locks = LockManager(policy="wait-die")
    locks.acquire(5, "t", (1,), X)
    with pytest.raises(WouldWaitError):
        locks.acquire(3, "t", (1,), X)
    locks.release_all(5)
    locks.acquire(3, "t", (1,), X)  # retry wins
    assert locks.holds(3, "t", (1,), X)


def test_wait_die_mixed_holders():
    locks = LockManager(policy="wait-die")
    locks.acquire(2, "t", (1,), S)
    locks.acquire(9, "t", (1,), S)
    # Requester 5 is older than 9 but younger than 2 -> dies.
    with pytest.raises(LockConflictError) as info:
        locks.acquire(5, "t", (1,), X)
    assert not isinstance(info.value, WouldWaitError)
    # Requester 1 is older than both -> may wait.
    with pytest.raises(WouldWaitError):
        locks.acquire(1, "t", (1,), X)


def test_no_wait_policy_never_waits():
    locks = LockManager()  # default no-wait
    locks.acquire(5, "t", (1,), X)
    with pytest.raises(LockConflictError) as info:
        locks.acquire(3, "t", (1,), X)
    assert not isinstance(info.value, WouldWaitError)


def test_policy_validation():
    with pytest.raises(ValueError):
        LockManager(policy="bogus")


# ----------------------------------------------------------------------
# Deadlock detection
# ----------------------------------------------------------------------
def test_find_deadlock_simple_cycle():
    cycle = find_deadlock({1: [2], 2: [1]})
    assert cycle is not None
    assert set(cycle) == {1, 2}


def test_find_deadlock_longer_cycle():
    cycle = find_deadlock({1: [2], 2: [3], 3: [4], 4: [2]})
    assert cycle is not None
    assert set(cycle) == {2, 3, 4}


def test_find_deadlock_acyclic():
    assert find_deadlock({1: [2], 2: [3], 4: [3]}) is None
    assert find_deadlock({}) is None


def test_find_deadlock_self_wait():
    cycle = find_deadlock({7: [7]})
    assert cycle == [7]


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(st.integers(0, 8),
                       st.lists(st.integers(0, 8), max_size=4),
                       max_size=9))
def test_property_detected_cycles_are_real(graph):
    cycle = find_deadlock(graph)
    if cycle is None:
        return
    # Every reported edge must exist, closing back to the start.
    for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
        assert b in graph.get(a, [])


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
def make_db():
    db = Database(group_commit_size=3)
    db.create_table("kv", ("k", "v"), ("k",))
    return db


def test_checkpoint_then_tail_recovery():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
        txn.insert("kv", {"k": 2, "v": "b"})
    checkpoint = db.take_checkpoint()
    # Post-checkpoint activity: update, delete, insert; then force.
    with db.transaction() as txn:
        txn.update("kv", (1,), {"v": "A"})
        txn.delete("kv", (2,))
        txn.insert("kv", {"k": 3, "v": "c"})
    db.log.force()
    survivors = db.log.crash()
    # The truncated log holds only the tail.
    assert all(r.lsn > checkpoint.last_lsn for r in survivors)

    recovered = Database()
    recovered.create_table("kv", ("k", "v"), ("k",))
    recovered.recover_from(survivors, checkpoint=checkpoint)
    table = recovered.table("kv")
    assert table.get((1,))["v"] == "A"
    assert (2,) not in table
    assert table.get((3,))["v"] == "c"


def test_checkpoint_alone_recovers_state():
    db = make_db()
    with db.transaction() as txn:
        for k in range(5):
            txn.insert("kv", {"k": k, "v": str(k)})
    checkpoint = db.take_checkpoint()
    recovered = Database()
    recovered.create_table("kv", ("k", "v"), ("k",))
    recovered.recover_from([], checkpoint=checkpoint)
    assert len(recovered.table("kv")) == 5


def test_checkpoint_truncates_durable_log():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
    db.log.force()
    assert db.log.durable_records
    db.take_checkpoint(truncate=True)
    assert db.log.durable_records == []


def test_checkpoint_without_truncate_keeps_log():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
    checkpoint = db.take_checkpoint(truncate=False)
    assert db.log.durable_records
    assert checkpoint.last_lsn == db.log.last_durable_lsn


def test_uncommitted_tail_not_in_recovery_after_checkpoint():
    db = make_db()
    with db.transaction() as txn:
        txn.insert("kv", {"k": 1, "v": "a"})
    checkpoint = db.take_checkpoint()
    doomed = db.transaction()
    doomed.insert("kv", {"k": 9, "v": "zzz"})
    db.log.force()  # the write is durable, but no COMMIT record
    survivors = db.log.crash()
    recovered = Database()
    recovered.create_table("kv", ("k", "v"), ("k",))
    recovered.recover_from(survivors, checkpoint=checkpoint)
    assert (9,) not in recovered.table("kv")
    assert (1,) in recovered.table("kv")


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 99),
                          st.booleans()), max_size=25),
       st.integers(0, 24))
def test_property_checkpoint_recovery_equals_direct_recovery(ops, cut):
    """Recovering from (checkpoint at position `cut` + tail) yields the
    same state as replaying everything from scratch."""
    def apply_ops(db, operations):
        for key, value, commit in operations:
            txn = db.transaction()
            try:
                if (key,) in db.table("kv"):
                    txn.update("kv", (key,), {"v": value})
                else:
                    txn.insert("kv", {"k": key, "v": value})
                if commit:
                    txn.commit()
                else:
                    txn.abort()
            except Exception:
                if txn.state.value == "active":
                    txn.abort()

    cut = min(cut, len(ops))
    # Path A: checkpoint midway.
    db_a = make_db()
    apply_ops(db_a, ops[:cut])
    checkpoint = db_a.take_checkpoint()
    apply_ops(db_a, ops[cut:])
    db_a.log.force()
    tail = db_a.log.crash()
    recovered_a = Database()
    recovered_a.create_table("kv", ("k", "v"), ("k",))
    recovered_a.recover_from(tail, checkpoint=checkpoint)

    # Path B: straight-through execution (the reference state).
    db_b = make_db()
    apply_ops(db_b, ops)

    state_a = {r["k"]: r["v"] for r in recovered_a.table("kv").scan_all()}
    state_b = {r["k"]: r["v"] for r in db_b.table("kv").scan_all()}
    assert state_a == state_b
