"""Fault injection mechanics: MSR modes, throttles, stalls, bursts, skew."""

import random

import pytest

from repro.core.estimator import ExecutionTimeEstimator
from repro.cpu.core import Job
from repro.cpu.msr import IA32_PERF_CTL, MsrError, encode_perf_ctl
from repro.db.server import DatabaseServer, ServerConfig
from repro.faults.injector import FaultInjector, SkewedEstimator
from repro.faults.plan import (
    BurstSpec, FaultPlan, MsrFaultSpec, SkewSpec, StallSpec, ThrottleSpec,
)
from repro.sim.engine import Simulator


def make_server(sim, workers=2):
    config = ServerConfig(workers=workers, request_handlers=1)
    return DatabaseServer(sim, config, scheduler_factory=None,
                          initial_freq=2.8)


def attach(sim, server, plan, seed=7):
    injector = FaultInjector(sim, plan, random.Random(seed))
    injector.attach(server)
    return injector


# ----------------------------------------------------------------------
# MSR write faults
# ----------------------------------------------------------------------
def test_msr_error_mode_raises_inside_window(sim):
    server = make_server(sim)
    attach(sim, server, FaultPlan(
        msr_faults=(MsrFaultSpec(0.1, 0.2, mode="error"),)))
    msr = server.workers[0].msr
    msr.write(IA32_PERF_CTL, encode_perf_ctl(2.4))  # before window: fine
    assert server.cores[0].freq == 2.4
    sim.schedule(0.15, lambda: None)
    sim.run()
    with pytest.raises(MsrError, match="injected"):
        msr.write(IA32_PERF_CTL, encode_perf_ctl(2.8))
    sim.schedule_at(0.25, lambda: None)
    sim.run()
    msr.write(IA32_PERF_CTL, encode_perf_ctl(2.8))  # after window: fine
    assert server.cores[0].freq == 2.8


def test_msr_stuck_mode_silently_pins_pstate(sim):
    server = make_server(sim)
    injector = attach(sim, server, FaultPlan(
        msr_faults=(MsrFaultSpec(0.0, 1.0, mode="stuck"),)))
    msr = server.workers[0].msr
    msr.write(IA32_PERF_CTL, encode_perf_ctl(1.2))  # no exception...
    assert server.cores[0].freq == 2.8              # ...but no effect
    assert injector.injected["msr"] == 1


def test_msr_fault_respects_worker_filter(sim):
    server = make_server(sim)
    attach(sim, server, FaultPlan(
        msr_faults=(MsrFaultSpec(0.0, 1.0, mode="stuck", workers=(1,)),)))
    server.workers[0].msr.write(IA32_PERF_CTL, encode_perf_ctl(1.2))
    server.workers[1].msr.write(IA32_PERF_CTL, encode_perf_ctl(1.2))
    assert server.cores[0].freq == 1.2  # unaffected worker
    assert server.cores[1].freq == 2.8  # stuck


def test_msr_fault_probability_is_seed_deterministic(sim):
    def run(seed):
        local_sim = Simulator()
        server = make_server(local_sim)
        injector = attach(local_sim, server, FaultPlan(
            msr_faults=(MsrFaultSpec(0.0, 1.0, mode="stuck",
                                     probability=0.5),)), seed=seed)
        msr = server.workers[0].msr
        outcomes = []
        for freq in (1.2, 1.6, 2.0, 2.4) * 5:
            msr.write(IA32_PERF_CTL, encode_perf_ctl(freq))
            outcomes.append(server.cores[0].freq)
        return outcomes, injector.injected["msr"]

    first, second = run(3), run(3)
    assert first == second
    outcomes, fired = first
    assert 0 < fired < len(outcomes)  # some stuck, some through


# ----------------------------------------------------------------------
# Thermal throttling
# ----------------------------------------------------------------------
def test_throttle_window_caps_and_releases(sim):
    server = make_server(sim)
    attach(sim, server, FaultPlan(
        throttles=(ThrottleSpec(0.1, 0.2, ceiling_ghz=1.6),)))
    core = server.cores[0]
    sim.run(until=0.15)
    assert core.throttle_ceiling_ghz == 1.6
    assert core.freq <= 1.6 + 1e-9  # already-hot core stepped down
    core.set_frequency(2.8)
    assert core.freq <= 1.6 + 1e-9  # requests clamp to the ceiling
    sim.run(until=0.25)
    assert core.throttle_ceiling_ghz is None
    core.set_frequency(2.8)
    assert core.freq == 2.8


def test_overlapping_throttles_apply_the_minimum(sim):
    server = make_server(sim, workers=1)
    attach(sim, server, FaultPlan(throttles=(
        ThrottleSpec(0.1, 0.4, ceiling_ghz=2.0),
        ThrottleSpec(0.2, 0.3, ceiling_ghz=1.2),
    )))
    core = server.cores[0]
    checks = []
    for at_s in (0.15, 0.25, 0.35, 0.45):
        sim.schedule_at(at_s,
                        lambda: checks.append(core.throttle_ceiling_ghz))
    sim.run()
    assert checks == [2.0, 1.2, 2.0, None]


# ----------------------------------------------------------------------
# Core stalls
# ----------------------------------------------------------------------
def test_stall_freezes_and_resume_finishes_the_job(sim):
    server = make_server(sim, workers=1)
    attach(sim, server, FaultPlan(
        stalls=(StallSpec(at_s=0.1, duration_s=0.2, workers=(0,)),)))
    core = server.cores[0]
    done = []
    core.start_job(Job(2.8 * 0.3), lambda job: done.append(sim.now))
    sim.run()
    # 0.3 s of work at 2.8 GHz, interrupted for 0.2 s: finishes at 0.5.
    assert done == [pytest.approx(0.5)]
    assert not core.stalled


def test_permanent_stall_never_completes(sim):
    server = make_server(sim, workers=1)
    injector = attach(sim, server, FaultPlan(
        stalls=(StallSpec(at_s=0.1, duration_s=None, workers=(0,)),)))
    core = server.cores[0]
    done = []
    core.start_job(Job(2.8 * 0.3), lambda job: done.append(sim.now))
    sim.run(until=10.0)
    assert done == []
    assert core.stalled
    assert injector.injected["stall"] == 1


def test_stalled_core_rejects_new_jobs(sim):
    server = make_server(sim, workers=1)
    attach(sim, server, FaultPlan(
        stalls=(StallSpec(at_s=0.0, duration_s=None, workers=(0,)),)))
    sim.run()
    with pytest.raises(RuntimeError, match="stalled"):
        server.cores[0].start_job(Job(1.0), lambda job: None)


# ----------------------------------------------------------------------
# Bursts and estimator skew (pure wrappers)
# ----------------------------------------------------------------------
def test_wrap_rate_multiplies_only_inside_burst_window(sim):
    server = make_server(sim, workers=1)
    injector = attach(sim, server, FaultPlan(
        bursts=(BurstSpec(1.0, 2.0, multiplier=3.0),)))
    rate = injector.wrap_rate(lambda now_s: 100.0)
    assert rate(0.5) == 100.0
    assert rate(1.5) == 300.0
    assert rate(2.0) == 100.0  # window is half-open


def test_wrap_rate_passthrough_without_bursts(sim):
    server = make_server(sim, workers=1)
    injector = attach(sim, server, FaultPlan(
        skews=(SkewSpec(0.0, 1.0, factor=0.5),)))
    base = lambda now_s: 42.0  # noqa: E731
    assert injector.wrap_rate(base) is base


def test_skewed_estimator_scales_inside_window_only(sim):
    inner = ExecutionTimeEstimator(window=4)
    inner.prime("w", 2.8, 0.010, count=4)
    skewed = SkewedEstimator(inner, sim,
                             (SkewSpec(1.0, 2.0, factor=0.5),))
    assert skewed.estimate("w", 2.8) == pytest.approx(0.010)  # t=0
    sim.schedule_at(1.5, lambda: None)
    sim.run()
    assert skewed.estimate("w", 2.8) == pytest.approx(0.005)
    # Observations pass through unscaled: the model stays honest.
    skewed.observe("w", 2.8, 0.020)
    assert inner.estimate("w", 2.8) >= 0.010
    assert skewed.window == inner.window


def test_wrap_estimator_passthrough_without_skews(sim):
    server = make_server(sim, workers=1)
    injector = attach(sim, server, FaultPlan(
        bursts=(BurstSpec(0.0, 1.0),)))
    estimator = ExecutionTimeEstimator()
    assert injector.wrap_estimator(estimator) is estimator


# ----------------------------------------------------------------------
# Bookkeeping
# ----------------------------------------------------------------------
def test_injector_counts_window_edges(sim):
    server = make_server(sim, workers=1)
    injector = attach(sim, server, FaultPlan(
        bursts=(BurstSpec(0.1, 0.2),),
        skews=(SkewSpec(0.1, 0.2),),
        throttles=(ThrottleSpec(0.1, 0.2),),
        stalls=(StallSpec(at_s=0.1, duration_s=0.05),)))
    sim.run()
    assert injector.injected == {"msr": 0, "throttle": 1, "stall": 1,
                                 "burst": 1, "skew": 1}
    assert injector.total_injected == 4


def test_injector_attaches_once(sim):
    server = make_server(sim, workers=1)
    injector = attach(sim, server, FaultPlan(bursts=(BurstSpec(0.0, 1.0),)))
    with pytest.raises(RuntimeError, match="already attached"):
        injector.attach(server)
    assert server.faults_active
