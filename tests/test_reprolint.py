"""reprolint: per-rule positive/negative fixtures, suppressions, CLI.

Each rule gets at least one snippet that MUST be flagged and one that
must NOT.  Fixtures are linted as strings with synthetic repro-ish
paths (``src/repro/sim/x.py``) so the directory-scoped rules see the
layout they scope on.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import rules as rules_module  # populates the registry
from repro.analysis.cli import main as cli_main
from repro.analysis.linter import (
    PARSE_ERROR_CODE, RULE_REGISTRY, lint_paths, lint_source,
)

SIM = "src/repro/sim/x.py"
CORE = "src/repro/core/x.py"
CPU = "src/repro/cpu/x.py"
HARNESS = "src/repro/harness/x.py"


def codes(source, path=SIM, **kwargs):
    return [f.code for f in lint_source(source, path=path, **kwargs)]


# ----------------------------------------------------------------------
# RL001 wall clock
# ----------------------------------------------------------------------
def test_rl001_flags_wall_clock_calls():
    assert "RL001" in codes("import time\nt = time.time()\n")
    assert "RL001" in codes("import time\nt = time.perf_counter()\n")
    assert "RL001" in codes(
        "import datetime\nd = datetime.datetime.now()\n")


def test_rl001_resolves_import_aliases():
    assert "RL001" in codes("import time as tm\nt = tm.monotonic()\n")
    assert "RL001" in codes(
        "from time import perf_counter\nt = perf_counter()\n")
    assert "RL001" in codes(
        "from datetime import datetime\nd = datetime.utcnow()\n")


def test_rl001_allowlists_profiling_helpers():
    source = (
        "import time\n"
        "def wall_clock():\n"
        "    return time.time()\n"
        "def perf_clock():\n"
        "    return time.perf_counter()\n")
    assert codes(source, path="src/repro/harness/profiling.py") == []
    # The same source anywhere else (or in another function) is flagged.
    assert "RL001" in codes(source, path=HARNESS)
    other = ("import time\ndef helper():\n    return time.time()\n")
    assert "RL001" in codes(other, path="src/repro/harness/profiling.py")


def test_rl001_ignores_unrelated_time_names():
    assert codes("import time\nx = time.sleep\n") == []
    assert codes("t = sim.now\n") == []


# ----------------------------------------------------------------------
# RL002 unseeded random
# ----------------------------------------------------------------------
def test_rl002_flags_global_rng():
    assert "RL002" in codes("import random\nx = random.random()\n")
    assert "RL002" in codes("import random\nx = random.randint(1, 3)\n")
    assert "RL002" in codes("from random import shuffle\nshuffle([1])\n")


def test_rl002_flags_unseeded_random_instance():
    assert "RL002" in codes("import random\nr = random.Random()\n")


def test_rl002_allows_seeded_and_threaded_rng():
    assert codes("import random\nr = random.Random(0)\n") == []
    assert codes("def f(rng):\n    return rng.random()\n") == []


# ----------------------------------------------------------------------
# RL003 set iteration
# ----------------------------------------------------------------------
def test_rl003_flags_set_iteration_in_sim_dirs():
    assert "RL003" in codes("for x in set(names):\n    push(x)\n")
    assert "RL003" in codes("for x in {1, 2, 3}:\n    push(x)\n",
                            path=CORE)
    assert "RL003" in codes("out = [f(x) for x in frozenset(names)]\n")
    assert "RL003" in codes("out = [y for y in {n for n in names}]\n")


def test_rl003_allows_sorted_sets_and_other_dirs():
    assert codes("for x in sorted(set(names)):\n    push(x)\n") == []
    assert codes("for x in names:\n    push(x)\n") == []
    # Theory/harness layers are out of scope for RL003.
    assert codes("for x in set(names):\n    push(x)\n",
                 path="src/repro/theory/x.py") == []


# ----------------------------------------------------------------------
# RL004 float equality
# ----------------------------------------------------------------------
def test_rl004_flags_time_and_freq_equality():
    assert "RL004" in codes("if next_time == end_time:\n    pass\n")
    assert "RL004" in codes("ok = req.deadline != t\n")
    assert "RL004" in codes("if freq == 2.8:\n    pass\n")
    assert "RL004" in codes("if wake_latency_s == 0.5:\n    pass\n")


def test_rl004_ignores_counters_and_none_checks():
    # freq_transitions is an int counter, not a frequency value.
    assert codes("if freq_transitions == 3:\n    pass\n") == []
    assert codes("if finish_time == None:\n    pass\n") == []
    assert codes("if next_time <= deadline:\n    pass\n") == []


# ----------------------------------------------------------------------
# RL005 mutable defaults
# ----------------------------------------------------------------------
def test_rl005_flags_mutable_defaults():
    assert "RL005" in codes("def f(items=[]):\n    pass\n")
    assert "RL005" in codes("def f(*, table={}):\n    pass\n")
    assert "RL005" in codes("def f(seen=set()):\n    pass\n")


def test_rl005_allows_immutable_defaults():
    assert codes("def f(items=None, n=3, name='x', t=()):\n    pass\n") == []


# ----------------------------------------------------------------------
# RL006 unit suffixes
# ----------------------------------------------------------------------
def test_rl006_flags_bare_time_and_freq_names():
    assert "RL006" in codes("def f(self, sampling_interval):\n    pass\n",
                            path=CPU)
    assert "RL006" in codes(
        "class C:\n    def __init__(self):\n        self.wake_delay = 0\n",
        path=CPU)
    assert "RL006" in codes(
        "class C:\n    boost_freq: float = 2.8\n", path=CPU)


def test_rl006_allows_suffixed_exempt_and_out_of_scope():
    assert codes("def f(self, sampling_interval_s):\n    pass\n",
                 path=CPU) == []
    # Audited exemptions (documented conventions) pass.
    assert codes("def f(self, arrival_time, dispatch_freq):\n    pass\n",
                 path=CORE) == []
    # Out-of-scope directories are not checked.
    assert codes("def f(self, sampling_interval):\n    pass\n",
                 path=HARNESS) == []


def test_rl006_exemption_table_documents_reasons():
    for name, reason in rules_module.RL006_AUDITED_EXEMPTIONS.items():
        assert reason.strip(), f"exemption {name!r} has no reason"


def test_rl006_obs_dir_checked_with_trace_unit_exemptions():
    obs = "src/repro/obs/x.py"
    # obs is in scope: bare time-ish names are flagged there.
    assert "RL006" in codes("def f(self, ts):\n    pass\n", path=obs)
    assert "RL006" in codes("def f(self, dur):\n    pass\n", path=obs)
    assert "RL006" in codes("def f(self, timestamp):\n    pass\n", path=obs)
    # The Chrome trace-event integer-microsecond fields are audited
    # exemptions, not suffix violations.
    assert codes("def f(self, ts_us, dur_us):\n    pass\n", path=obs) == []
    assert "ts_us" in rules_module.RL006_AUDITED_EXEMPTIONS
    assert "dur_us" in rules_module.RL006_AUDITED_EXEMPTIONS


# ----------------------------------------------------------------------
# RL007 swallowed exceptions
# ----------------------------------------------------------------------
def test_rl007_flags_bare_except_everywhere():
    src = "try:\n    f()\nexcept:\n    raise ValueError\n"
    assert "RL007" in codes(src, path=HARNESS)


def test_rl007_flags_swallowed_in_hot_paths_only():
    src = "try:\n    f()\nexcept OSError:\n    pass\n"
    assert "RL007" in codes(src, path=SIM)
    assert codes(src, path=HARNESS) == []


def test_rl007_allows_handled_exceptions():
    src = "try:\n    f()\nexcept OSError:\n    recover()\n"
    assert codes(src, path=SIM) == []


# ----------------------------------------------------------------------
# RL008 dataclass hygiene
# ----------------------------------------------------------------------
def test_rl008_flags_unslotted_dataclass_in_sim():
    src = ("from dataclasses import dataclass\n"
           "@dataclass\nclass S:\n    x: int = 0\n")
    assert "RL008" in codes(src, path=SIM)
    assert "RL008" in codes(src, path=CPU)
    assert codes(src, path=HARNESS) == []


def test_rl008_allows_frozen_slots_or_plain_classes():
    frozen = ("from dataclasses import dataclass\n"
              "@dataclass(frozen=True)\nclass S:\n    x: int = 0\n")
    slots_kw = ("from dataclasses import dataclass\n"
                "@dataclass(slots=True)\nclass S:\n    x: int = 0\n")
    dunder = ("from dataclasses import dataclass\n"
              "@dataclass\nclass S:\n    __slots__ = ('x',)\n    x: int\n")
    plain = "class S:\n    pass\n"
    for src in (frozen, slots_kw, dunder, plain):
        assert codes(src, path=SIM) == []


# ----------------------------------------------------------------------
# Framework behaviour
# ----------------------------------------------------------------------
def test_suppression_comment_silences_one_code():
    src = ("import time\n"
           "t = time.time()  # reprolint: disable=RL001 - test fixture\n")
    assert codes(src) == []
    assert "RL001" in codes(src, include_suppressed=True)


def test_suppression_multiple_codes_and_blanket():
    src = ("import random\n"
           "x = random.random()  # reprolint: disable=RL001,RL002 - x\n"
           "y = random.random()  # reprolint: disable - blanket, w/ reason\n")
    assert codes(src) == []


# ----------------------------------------------------------------------
# RL009 suppression hygiene
# ----------------------------------------------------------------------
def test_rl009_flags_reasonless_suppressions():
    src = ("import random\n"
           "x = random.random()  # reprolint: disable=RL002\n")
    assert codes(src) == ["RL009"]
    blanket = ("import random\n"
               "x = random.random()  # reprolint: disable\n")
    assert codes(blanket) == ["RL009"]


def test_rl009_not_silenced_by_the_comment_it_flags():
    # The blanket comment suppresses everything *except* the hygiene
    # finding about itself; only an explicit RL009 listing covers it.
    blanket = "x = 1  # reprolint: disable\n"
    assert codes(blanket) == ["RL009"]
    # An *explicit* RL009 listing is the sanctioned opt-out: the code
    # is named, so a reviewer grepping for RL009 still finds it.
    explicit = "x = 1  # reprolint: disable=RL009\n"
    assert codes(explicit) == []
    assert "RL009" in codes(explicit, include_suppressed=True)


def test_suppression_only_applies_to_its_line():
    src = ("import time\n"
           "a = 1  # reprolint: disable=RL001 - wrong line\n"
           "t = time.time()\n")
    assert "RL001" in codes(src)


def test_parse_error_yields_rl000():
    findings = lint_source("def broken(:\n", path=SIM)
    assert [f.code for f in findings] == [PARSE_ERROR_CODE]


def test_select_restricts_rules():
    src = "import time\nimport random\nt = time.time()\nr = random.random()\n"
    assert codes(src, select=["RL001"]) == ["RL001"]


# ----------------------------------------------------------------------
# RL120 fault-plan spec round-trip
# ----------------------------------------------------------------------
PLAN_PATH = "src/repro/faults/plan.py"

RL120_ORPHAN = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class OrphanSpec:\n"
    "    at_s: float = 0.0\n"
    "@dataclass(frozen=True)\n"
    "class UsedSpec:\n"
    "    at_s: float = 0.0\n"
    "class FaultPlan:\n"
    "    @classmethod\n"
    "    def from_dict(cls, payload):\n"
    "        return cls(used=UsedSpec(**payload))\n")


def test_rl120_flags_spec_missing_from_deserializer():
    findings = lint_source(RL120_ORPHAN, path=PLAN_PATH)
    assert [f.code for f in findings] == ["RL120"]
    assert "OrphanSpec" in findings[0].message


def test_rl120_scopes_to_the_plan_module():
    assert codes(RL120_ORPHAN, path=SIM) == []


def test_rl120_quiet_when_every_spec_round_trips():
    source = RL120_ORPHAN.replace(
        "return cls(used=UsedSpec(**payload))",
        "return cls(used=UsedSpec(**payload), o=OrphanSpec())")
    assert codes(source, path=PLAN_PATH) == []


def test_rl120_real_plan_module_is_clean():
    findings = lint_paths([Path("src/repro/faults/plan.py")])
    assert [f for f in findings if f.code == "RL120"] == []


# ----------------------------------------------------------------------
# RL121 scheme-registry consistency
# ----------------------------------------------------------------------
SCHEMES_PATH = "src/repro/harness/schemes.py"

RL121_CLEAN = (
    "SCHEMES = {\n"
    "    'polaris': Scheme('polaris', 'POLARIS',\n"
    "                      scheduler_class=PolarisScheduler),\n"
    "    'ondemand': Scheme('ondemand', 'OnDemand',\n"
    "                       governor_factory=OnDemandGovernor),\n"
    "    'static-2.8': _static(2.8),\n"
    "}\n"
    "ARENA_SCHEMES = ('polaris', 'ondemand')\n")


def test_rl121_clean_registry_passes():
    assert codes(RL121_CLEAN, path=SCHEMES_PATH) == []


def test_rl121_flags_key_name_mismatch():
    source = RL121_CLEAN.replace("Scheme('polaris', 'POLARIS'",
                                 "Scheme('polariss', 'POLARIS'")
    findings = lint_source(source, path=SCHEMES_PATH)
    assert [f.code for f in findings] == ["RL121"]
    assert "polariss" in findings[0].message


def test_rl121_flags_static_key_mismatch():
    source = RL121_CLEAN.replace("'static-2.8': _static(2.8)",
                                 "'static-2.8': _static(2.0)")
    findings = lint_source(source, path=SCHEMES_PATH)
    assert [f.code for f in findings] == ["RL121"]
    assert "static-2.0" in findings[0].message


def test_rl121_flags_mechanismless_and_double_mechanism_schemes():
    source = RL121_CLEAN.replace(
        "Scheme('ondemand', 'OnDemand',\n"
        "                       governor_factory=OnDemandGovernor)",
        "Scheme('ondemand', 'OnDemand')")
    assert codes(source, path=SCHEMES_PATH) == ["RL121"]
    source = RL121_CLEAN.replace(
        "governor_factory=OnDemandGovernor",
        "governor_factory=OnDemandGovernor,\n"
        "                       scheduler_class=PolarisScheduler")
    assert codes(source, path=SCHEMES_PATH) == ["RL121"]


def test_rl121_flags_lineup_referencing_unregistered_scheme():
    source = RL121_CLEAN.replace("('polaris', 'ondemand')",
                                 "('polaris', 'turbo-boost')")
    findings = lint_source(source, path=SCHEMES_PATH)
    assert [f.code for f in findings] == ["RL121"]
    assert "turbo-boost" in findings[0].message
    assert "ARENA_SCHEMES" in findings[0].message


def test_rl121_scopes_to_the_schemes_module():
    broken = RL121_CLEAN.replace("('polaris', 'ondemand')",
                                 "('polaris', 'turbo-boost')")
    assert codes(broken, path=HARNESS) == []


def test_rl121_real_schemes_module_is_clean():
    findings = lint_paths([Path("src/repro/harness/schemes.py")])
    assert [f for f in findings if f.code == "RL121"] == []


def test_registry_has_the_per_file_rules():
    assert sorted(RULE_REGISTRY) == \
        [f"RL00{i}" for i in range(1, 10)] + ["RL120", "RL121"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert cli_main([str(target)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_dirty_file_exits_one_with_json(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("import time\nt = time.time()\n")
    assert cli_main([str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"RL001": 1}
    assert payload["findings"][0]["line"] == 2


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_REGISTRY:
        assert code in out


def test_cli_rejects_unknown_select(tmp_path):
    with pytest.raises(SystemExit):
        cli_main([str(tmp_path), "--select", "RL999"])


# ----------------------------------------------------------------------
# The acceptance gate: the shipped tree itself lints clean.
# ----------------------------------------------------------------------
def test_source_tree_is_lint_clean():
    src = Path(__file__).resolve().parent.parent / "src"
    findings = lint_paths([src])
    assert findings == [], "\n".join(f.format() for f in findings)
