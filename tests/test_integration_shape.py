"""End-to-end shape checks at reduced scale.

The full-size shape assertions live in the benchmark suite; these
smaller versions guard the paper's headline orderings inside the unit
test run (8 workers, short phases, fixed seed — chosen to be robust,
not precise).
"""

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment

SCALE = dict(workers=8, warmup_seconds=0.8, test_seconds=3.0, seed=21)


@pytest.fixture(scope="module")
def medium_tight():
    """All five schemes at medium load, slack 10 (one shared run set)."""
    return {
        scheme: run_experiment(ExperimentConfig(
            scheme=scheme, load_fraction=0.6, slack=10.0, **SCALE))
        for scheme in ("polaris", "ondemand", "conservative",
                       "static-2.8", "static-2.4")
    }


def test_polaris_saves_power_at_medium_load(medium_tight):
    polaris = medium_tight["polaris"].avg_power_watts
    static28 = medium_tight["static-2.8"].avg_power_watts
    assert static28 - polaris > 8.0


def test_polaris_beats_ondemand_on_both_metrics(medium_tight):
    polaris = medium_tight["polaris"]
    ondemand = medium_tight["ondemand"]
    assert polaris.avg_power_watts < ondemand.avg_power_watts
    assert polaris.failure_rate < ondemand.failure_rate


def test_polaris_misses_no_more_than_peak_frequency(medium_tight):
    assert medium_tight["polaris"].failure_rate \
        <= medium_tight["static-2.8"].failure_rate + 0.02


def test_conservative_shadows_peak_at_medium_load(medium_tight):
    conservative = medium_tight["conservative"]
    static28 = medium_tight["static-2.8"]
    assert abs(conservative.avg_power_watts
               - static28.avg_power_watts) < 4.0
    assert abs(conservative.failure_rate - static28.failure_rate) < 0.03


def test_static_24_trades_power_for_misses(medium_tight):
    static24 = medium_tight["static-2.4"]
    static28 = medium_tight["static-2.8"]
    assert static28.avg_power_watts - static24.avg_power_watts > 15.0
    assert static24.failure_rate > static28.failure_rate + 0.05


def test_all_schemes_see_identical_offered_load(medium_tight):
    offered = {r.offered for r in medium_tight.values()}
    assert len(offered) == 1


def test_slack_releases_polaris_power():
    tight = run_experiment(ExperimentConfig(
        scheme="polaris", load_fraction=0.6, slack=10.0, **SCALE))
    loose = run_experiment(ExperimentConfig(
        scheme="polaris", load_fraction=0.6, slack=100.0, **SCALE))
    # More slack -> lower frequency -> less power, fewer misses.
    assert loose.avg_power_watts < tight.avg_power_watts
    assert loose.failure_rate < 0.02


def test_variants_order_at_tight_slack():
    results = {
        scheme: run_experiment(ExperimentConfig(
            scheme=scheme, load_fraction=0.6, slack=10.0, **SCALE))
        for scheme in ("polaris", "polaris-fifo", "polaris-fifo-noarrive")
    }
    assert results["polaris"].failure_rate \
        <= results["polaris-fifo"].failure_rate + 0.02
    assert results["polaris-fifo"].failure_rate \
        <= results["polaris-fifo-noarrive"].failure_rate + 0.02


def test_low_load_power_savings():
    polaris = run_experiment(ExperimentConfig(
        scheme="polaris", load_fraction=0.3, slack=40.0, **SCALE))
    static28 = run_experiment(ExperimentConfig(
        scheme="static-2.8", load_fraction=0.3, slack=40.0, **SCALE))
    # The ~40 W gap of Figure 8 scales with the 8-core configuration.
    assert static28.avg_power_watts - polaris.avg_power_watts > 15.0
    assert polaris.failure_rate < 0.05
