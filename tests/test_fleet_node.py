"""Node lifecycle, node-scope energy, and Fleet aggregation."""

import pytest

from repro.db.server import DatabaseServer, ServerConfig
from repro.fleet.node import Fleet, Node, NodeState, PRIMARY, REPLICA
from repro.sim.engine import Simulator

FLOOR_WATTS = 4.0


def make_node(sim, node_id=0, role=REPLICA, start_parked=False,
              workers=1, **kwargs):
    server = DatabaseServer(sim, ServerConfig(workers=workers,
                                              request_handlers=1))
    return Node(sim, node_id, 0, role, server,
                parked_floor_watts=FLOOR_WATTS,
                start_parked=start_parked, **kwargs)


def advance(sim, until):
    sim.schedule_at(until, lambda: None)
    sim.run(until=until)


def test_role_validation(sim):
    with pytest.raises(ValueError):
        make_node(sim, role="observer")
    with pytest.raises(ValueError):
        make_node(sim, role=PRIMARY, start_parked=True)


def test_initial_states(sim):
    assert make_node(sim).state is NodeState.ACTIVE
    assert make_node(sim, start_parked=True).state is NodeState.PARKED


def test_parked_power_is_the_floor(sim):
    node = make_node(sim, start_parked=True)
    assert node.power_watts() == FLOOR_WATTS
    active = make_node(sim, node_id=1)
    assert active.power_watts() == active.server.wall_power()
    assert active.power_watts() > 20 * FLOOR_WATTS  # static floor dominates


def test_parked_energy_integrates_the_floor(sim):
    node = make_node(sim, start_parked=True)
    advance(sim, 2.0)
    assert node.energy_joules_at(sim.now) == pytest.approx(2.0 * FLOOR_WATTS)


def test_unpark_sequences_warming_then_active(sim):
    node = make_node(sim, start_parked=True)
    seen = []
    node.unpark(1.5, on_active=lambda n: seen.append(sim.now))
    assert node.state is NodeState.WARMING
    assert node.boots == 1
    advance(sim, 1.0)
    assert node.state is NodeState.WARMING
    advance(sim, 2.0)
    assert node.state is NodeState.ACTIVE
    assert seen == [1.5]
    with pytest.raises(RuntimeError):
        node.unpark(1.0)  # only parked nodes boot


def test_warming_draws_powered_watts(sim):
    """Boot is paid for: a warming node draws server power, not floor."""
    node = make_node(sim, start_parked=True)
    node.unpark(2.0)
    assert node.power_watts() == node.server.wall_power()


def test_drain_parks_only_replicas(sim):
    primary = make_node(sim, role=PRIMARY)
    with pytest.raises(RuntimeError):
        primary.begin_drain(lambda n: None, 0.1, 0.05)


def test_drain_parks_after_grace(sim):
    node = make_node(sim)
    migrated = []
    node.begin_drain(migrated.append, grace_s=0.5, poll_s=0.05)
    assert node.state is NodeState.DRAINING
    assert migrated == [node]
    assert node.drains == 1
    advance(sim, 1.0)
    assert node.state is NodeState.PARKED
    with pytest.raises(RuntimeError):
        node.begin_drain(lambda n: None, 0.1, 0.05)  # already parked


def test_energy_continuity_across_drain_cycle(sim):
    """Regression: powered segments must rebase the server-energy
    baseline on *every* transition --- without it the active->draining
    hop double-counts everything since the last rebase."""
    node = make_node(sim)
    server_energy_at_park = {}

    def note(n, old, new):
        if new is NodeState.PARKED:
            server_energy_at_park["joules"] = n.server.wall_energy()

    node._on_transition = note
    advance(sim, 2.0)
    node.begin_drain(lambda n: None, grace_s=0.5, poll_s=0.05)
    advance(sim, 4.0)
    assert node.state is NodeState.PARKED
    park_time = 2.5
    expected = server_energy_at_park["joules"] \
        + FLOOR_WATTS * (4.0 - park_time)
    assert node.energy_joules_at(4.0) == pytest.approx(expected)


def test_fleet_counts_and_timeline(sim):
    nodes = [make_node(sim, node_id=0, role=PRIMARY),
             make_node(sim, node_id=1),
             make_node(sim, node_id=2, start_parked=True)]
    fleet = Fleet(sim, nodes)
    assert fleet.active_count() == 2
    assert fleet.powered_count() == 2
    assert fleet.node_timeline == [(0.0, 2)]
    nodes[2].unpark(1.0)
    advance(sim, 2.0)
    assert fleet.active_count() == 3
    # warming doesn't change the active count; only the boot does
    assert fleet.node_timeline == [(0.0, 2), (1.0, 3)]
    nodes[1].begin_drain(lambda n: None, 0.2, 0.05)
    advance(sim, 3.0)
    assert fleet.node_timeline == [(0.0, 2), (1.0, 3), (2.0, 2)]
    assert fleet.powered_count() == 2


def test_fleet_wall_power_sums_nodes(sim):
    nodes = [make_node(sim, node_id=0, role=PRIMARY),
             make_node(sim, node_id=1, start_parked=True)]
    fleet = Fleet(sim, nodes)
    assert fleet.wall_power() == pytest.approx(
        nodes[0].server.wall_power() + FLOOR_WATTS)
    advance(sim, 1.0)
    assert fleet.wall_energy() == pytest.approx(
        nodes[0].energy_joules_at(1.0) + FLOOR_WATTS)


def test_fleet_accounting_clean_on_idle_fleet(sim):
    fleet = Fleet(sim, [make_node(sim, node_id=0, role=PRIMARY),
                        make_node(sim, node_id=1)])
    fleet.sanitize_accounting()  # must not raise
    assert fleet.all_idle()
