"""Lock manager: S/X compatibility, upgrades, no-wait conflicts."""

import pytest

from repro.db.storage.errors import LockConflictError
from repro.db.storage.locks import LockManager, LockMode

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


@pytest.fixture
def locks():
    return LockManager()


def test_shared_locks_compatible(locks):
    locks.acquire(1, "t", (1,), S)
    locks.acquire(2, "t", (1,), S)
    assert locks.holds(1, "t", (1,), S)
    assert locks.holds(2, "t", (1,), S)


def test_exclusive_conflicts_with_shared(locks):
    locks.acquire(1, "t", (1,), S)
    with pytest.raises(LockConflictError):
        locks.acquire(2, "t", (1,), X)
    assert locks.conflicts == 1


def test_shared_conflicts_with_exclusive(locks):
    locks.acquire(1, "t", (1,), X)
    with pytest.raises(LockConflictError):
        locks.acquire(2, "t", (1,), S)


def test_exclusive_conflicts_with_exclusive(locks):
    locks.acquire(1, "t", (1,), X)
    with pytest.raises(LockConflictError):
        locks.acquire(2, "t", (1,), X)


def test_reentrant_acquisition(locks):
    locks.acquire(1, "t", (1,), S)
    locks.acquire(1, "t", (1,), S)  # no-op
    locks.acquire(1, "t", (1,), X)  # upgrade as sole holder
    assert locks.holds(1, "t", (1,), X)
    locks.acquire(1, "t", (1,), S)  # X covers S
    assert locks.holds(1, "t", (1,), X)


def test_upgrade_blocked_by_other_shared_holder(locks):
    locks.acquire(1, "t", (1,), S)
    locks.acquire(2, "t", (1,), S)
    with pytest.raises(LockConflictError):
        locks.acquire(1, "t", (1,), X)


def test_different_resources_independent(locks):
    locks.acquire(1, "t", (1,), X)
    locks.acquire(2, "t", (2,), X)
    locks.acquire(2, "u", (1,), X)  # same key, different table
    assert locks.total_locked_resources() == 3


def test_release_all(locks):
    locks.acquire(1, "t", (1,), X)
    locks.acquire(1, "t", (2,), S)
    locks.acquire(2, "t", (2,), S)
    locks.release_all(1)
    assert locks.held_count(1) == 0
    # Resource (2,) still held by txn 2; (1,) fully free.
    locks.acquire(3, "t", (1,), X)
    with pytest.raises(LockConflictError):
        locks.acquire(3, "t", (2,), X)


def test_release_unknown_txn_is_noop(locks):
    locks.release_all(99)  # must not raise


def test_holds_semantics(locks):
    assert not locks.holds(1, "t", (1,), S)
    locks.acquire(1, "t", (1,), S)
    assert locks.holds(1, "t", (1,), S)
    assert not locks.holds(1, "t", (1,), X)
    assert not locks.holds(2, "t", (1,), S)


def test_counters(locks):
    locks.acquire(1, "t", (1,), S)
    locks.acquire(2, "t", (1,), S)
    assert locks.acquisitions == 2
    locks.acquire(1, "t", (1,), S)  # re-entrant: not counted
    assert locks.acquisitions == 2
