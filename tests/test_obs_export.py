"""repro.obs.export + end-to-end instrumentation.

Covers the Chrome trace-event exporter and validator on synthetic
tracers, then the real thing: a traced small-scale Figure-6 cell must
export Perfetto-loadable JSON containing transaction spans, P-state
transition instants with decision annotations, and counter tracks ---
and two same-seed runs must produce byte-identical files.
"""

import dataclasses
import json

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.obs.export import (
    build_trace_events, export_chrome_trace, export_series_csv,
    trace_summary, validate_chrome_trace,
)
from repro.obs.metrics import MetricRegistry, MetricsSampler
from repro.obs.trace import Tracer
from repro.sim.engine import Simulator

FAST = dict(workers=2, warmup_seconds=0.2, test_seconds=1.0, seed=7)


def small_tracer():
    tracer = Tracer()
    track = tracer.track("server", "worker-0")
    tracer.async_begin("txn", "r1", "txn:a", 0.0)
    tracer.instant(track, "setfreq:dispatch", 0.001, selected_ghz=2.8)
    tracer.begin(track, "exec:a", 0.001, freq_ghz=2.8)
    tracer.end(track, 0.002)
    tracer.counter(track, "queue_depth", 0.002, depth=3)
    tracer.async_end("txn", "r1", "txn:a", 0.002)
    return tracer


# ----------------------------------------------------------------------
# build / export / validate on synthetic traces
# ----------------------------------------------------------------------
def test_build_trace_events_shapes():
    events = build_trace_events(small_tracer())
    by_ph = {}
    for ev in events:
        by_ph.setdefault(ev["ph"], []).append(ev)
    # Two tracks -> four metadata records naming them.
    assert len(by_ph["M"]) == 4
    names = {e["args"]["name"] for e in by_ph["M"]}
    assert {"server", "worker-0", "txn"} <= names
    assert by_ph["i"][0]["s"] == "t"
    assert by_ph["B"][0]["ts"] == 1000  # microseconds
    assert by_ph["b"][0]["cat"] == "txn"
    assert by_ph["b"][0]["id"] == 1


def test_export_validate_roundtrip(tmp_path):
    path = str(tmp_path / "trace.json")
    written = export_chrome_trace(small_tracer(), path)
    stats = validate_chrome_trace(path)
    assert stats["events"] == written
    assert stats["phase_counts"]["B"] == stats["phase_counts"]["E"] == 1
    payload = json.loads(open(path).read())
    assert isinstance(payload["traceEvents"], list)


def test_validator_rejects_structural_breakage(tmp_path):
    def write(events):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"traceEvents": events}, fh)
        return path

    base = {"pid": 1, "tid": 1, "name": "x"}
    with pytest.raises(ValueError, match="unknown ph"):
        validate_chrome_trace(write([{"ph": "Z", "ts": 0, **base}]))
    with pytest.raises(ValueError, match="expected int"):
        validate_chrome_trace(write([{"ph": "i", "ts": 0.5, **base}]))
    with pytest.raises(ValueError, match="monotone"):
        validate_chrome_trace(write([{"ph": "i", "ts": 5, **base},
                                     {"ph": "i", "ts": 4, **base}]))
    with pytest.raises(ValueError, match="never opened"):
        validate_chrome_trace(write([{"ph": "E", "ts": 0, **base}]))
    with pytest.raises(ValueError, match="unbalanced"):
        validate_chrome_trace(write([{"ph": "B", "ts": 0, **base}]))
    with pytest.raises(ValueError, match="unclosed async"):
        validate_chrome_trace(write(
            [{"ph": "b", "ts": 0, "cat": "t", "id": 1, **base}]))
    with pytest.raises(ValueError, match="missing traceEvents"):
        path = str(tmp_path / "notrace.json")
        open(path, "w").write("[]")
        validate_chrome_trace(path)


def test_export_series_csv(tmp_path):
    sim = Simulator()
    reg = MetricRegistry()
    reg.gauge("clock", fn=lambda: sim.now)
    sampler = MetricsSampler(sim, reg, interval_s=1.0)
    sampler.start()
    sim.schedule(2.5, sim.stop)
    sim.run()
    path = str(tmp_path / "series.csv")
    rows = export_series_csv(sampler, path)
    lines = open(path).read().splitlines()
    assert lines[0] == "metric,t_s,value"
    assert rows == len(lines) - 1 == 3
    assert lines[1].startswith("clock,0.0,")


def test_trace_summary_reuses_report_helpers():
    sim = Simulator()
    reg = MetricRegistry()
    reg.gauge("clock", fn=lambda: sim.now)
    sampler = MetricsSampler(sim, reg, interval_s=1.0)
    sampler.start()
    sim.schedule(2.5, sim.stop)
    sim.run()
    text = trace_summary(small_tracer(), sampler, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert any("server/worker-0" in line for line in lines)
    assert any("clock" in line and "mean" in line for line in lines)


# ----------------------------------------------------------------------
# End-to-end: traced Figure-6-style cell
# ----------------------------------------------------------------------
def traced_config(tmp_path, name, **overrides):
    base = dict(
        benchmark="tpcc", scheme="polaris", load_fraction=0.6, slack=10.0,
        trace_path=str(tmp_path / f"{name}.trace.json"),
        trace_series_path=str(tmp_path / f"{name}.series.csv"))
    return ExperimentConfig(**{**base, **FAST, **overrides})


def test_traced_fig6_cell_exports_expected_content(tmp_path):
    config = traced_config(tmp_path, "fig6")
    result = run_experiment(config)
    assert result.trace_events > 0
    stats = validate_chrome_trace(config.trace_path)
    events = json.loads(open(config.trace_path).read())["traceEvents"]
    names = {e["name"] for e in events}
    # Per-transaction spans (sync execution + async lifecycle).
    assert any(n.startswith("exec:") for n in names)
    assert any(n.startswith("txn:") for n in names)
    # P-state transitions annotated with the driving decision.
    transitions = [e for e in events if e["name"] == "pstate:transition"]
    assert transitions
    assert {"old_ghz", "new_ghz", "pstate"} <= set(transitions[0]["args"])
    decisions = [e for e in events if e["name"] == "setfreq:dispatch"]
    assert decisions
    assert {"selected_ghz", "floor_ghz", "queue_len"} \
        <= set(decisions[0]["args"])
    # Counter tracks: power + queue depth from the metrics sampler.
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert "power_watts" in counter_names
    assert "queue_depth_total" in counter_names
    assert any(n.startswith("queue_depth.w") for n in counter_names)
    assert any(n.startswith("freq_ghz.core") for n in counter_names)
    assert stats["phase_counts"]["b"] == stats["phase_counts"]["e"]
    # The series CSV landed too.
    csv_lines = open(config.trace_series_path).read().splitlines()
    assert csv_lines[0] == "metric,t_s,value"
    assert any(line.startswith("power_watts,") for line in csv_lines)


def test_traced_runs_are_byte_identical(tmp_path):
    a = traced_config(tmp_path, "a")
    b = traced_config(tmp_path, "b")
    run_experiment(a)
    run_experiment(b)
    assert open(a.trace_path, "rb").read() == open(b.trace_path, "rb").read()
    assert open(a.trace_series_path, "rb").read() == \
        open(b.trace_series_path, "rb").read()


def test_untraced_run_records_nothing(tmp_path):
    config = dataclasses.replace(traced_config(tmp_path, "x"),
                                 trace=False, trace_path=None,
                                 trace_series_path=None)
    result = run_experiment(config)
    assert result.trace_events == 0


def test_traced_governor_scheme_emits_governor_instants(tmp_path):
    config = traced_config(tmp_path, "ondemand", scheme="ondemand")
    run_experiment(config)
    events = json.loads(open(config.trace_path).read())["traceEvents"]
    samples = [e for e in events if e["name"] == "governor:ondemand"]
    assert samples
    assert {"utilization", "target_ghz", "up_threshold"} \
        <= set(samples[0]["args"])
    validate_chrome_trace(config.trace_path)


def test_traced_static_scheme_emits_pin_instant(tmp_path):
    config = traced_config(tmp_path, "static", scheme="static-2.8")
    run_experiment(config)
    events = json.loads(open(config.trace_path).read())["traceEvents"]
    pins = [e for e in events if e["name"].endswith(":pin")]
    assert pins and "pinned_ghz" in pins[0]["args"]


def test_trace_result_metrics_match_untraced(tmp_path):
    """Tracing is observation only: the paper's metrics are identical
    with and without it."""
    traced = run_experiment(traced_config(tmp_path, "t"))
    plain = run_experiment(dataclasses.replace(
        traced_config(tmp_path, "p"), trace=False, trace_path=None,
        trace_series_path=None))
    assert traced.avg_power_watts == plain.avg_power_watts
    assert traced.failure_rate == plain.failure_rate
    assert traced.completed == plain.completed
    assert traced.freq_residency == plain.freq_residency
