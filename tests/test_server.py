"""The database server: routing, workers, scheduling glue."""

import random

import pytest

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request, RequestState
from repro.core.workload import Workload
from repro.db.server import BaselineDispatcher, DatabaseServer, ServerConfig
from repro.governors.static import UserspaceGovernor
from repro.sim.engine import Simulator
from repro.workloads import tpcc

WORKLOAD = Workload("w", 0.050)


def make_server(sim, workers=4, scheduler=False, **config_kwargs):
    config = ServerConfig(workers=workers, **config_kwargs)
    estimator = ExecutionTimeEstimator()
    factory = None
    if scheduler:
        factory = lambda: PolarisScheduler(  # noqa: E731
            config.scheduler_frequencies, estimator)
    return DatabaseServer(sim, config, scheduler_factory=factory), estimator


def submit_n(server, n, work=2.8e-3, workload=WORKLOAD):
    requests = []
    for i in range(n):
        request = Request(workload, "t", server.sim.now, work)
        server.submit(request)
        requests.append(request)
    return requests


def test_round_robin_routing(sim):
    server, _ = make_server(sim, workers=4)
    requests = submit_n(server, 8)
    workers_hit = [r.worker_id for r in requests]
    sim.run()
    workers_hit = [r.worker_id for r in requests]
    assert sorted(workers_hit) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_requests_complete_with_correct_timing(sim):
    server, _ = make_server(sim, workers=1)
    requests = submit_n(server, 3, work=2.8e-3)  # 1 ms each at 2.8 GHz
    sim.run()
    finishes = [r.finish_time for r in requests]
    assert finishes == pytest.approx([1e-3, 2e-3, 3e-3])
    assert all(r.state is RequestState.DONE for r in requests)
    assert all(r.single_freq for r in requests)


def test_non_preemptive_execution(sim):
    """A shorter-deadline request arriving mid-run waits for the
    running transaction (POLARIS is non-preemptive)."""
    server, estimator = make_server(sim, workers=1, scheduler=True)
    for freq in (1.2, 1.6, 2.0, 2.4, 2.8):
        estimator.prime("w", freq, 10e-3 * 2.8 / freq, count=5)
        estimator.prime("fast", freq, 0.1e-3 * 2.8 / freq, count=5)
    slow = Request(Workload("w", 0.1), "w", 0.0, 28e-3)  # 10 ms at 2.8
    server.submit(slow)
    urgent_holder = []

    def send_urgent():
        urgent = Request(Workload("fast", 0.05), "fast", sim.now, 0.28e-3)
        urgent_holder.append(urgent)
        server.submit(urgent)

    sim.schedule(1e-3, send_urgent)
    sim.run()
    urgent = urgent_holder[0]
    assert urgent.dispatch_time >= slow.finish_time - 1e-12


def test_completion_listeners_fire(sim):
    server, _ = make_server(sim, workers=2)
    seen = []
    server.add_completion_listener(seen.append)
    requests = submit_n(server, 5)
    sim.run()
    assert len(seen) == 5
    assert set(id(r) for r in seen) == set(id(r) for r in requests)


def test_polaris_edf_dispatch_order(sim):
    server, estimator = make_server(sim, workers=1, scheduler=True)
    # Occupy the worker, then queue a late-deadline before an
    # early-deadline request; EDF must run the early one first.
    blocker = Request(WORKLOAD, "t", 0.0, 2.8e-3)
    late = Request(Workload("late", 1.0), "late", 0.0, 2.8e-3)
    early = Request(Workload("early", 0.01), "early", 0.0, 2.8e-3)
    server.submit(blocker)
    server.submit(late)
    server.submit(early)
    sim.run()
    assert early.dispatch_time < late.dispatch_time


def test_baseline_fifo_dispatch_order(sim):
    server, _ = make_server(sim, workers=1)
    blocker = Request(WORKLOAD, "t", 0.0, 2.8e-3)
    late = Request(Workload("late", 1.0), "late", 0.0, 2.8e-3)
    early = Request(Workload("early", 0.01), "early", 0.0, 2.8e-3)
    for request in (blocker, late, early):
        server.submit(request)
    sim.run()
    assert late.dispatch_time < early.dispatch_time


def test_governor_controls_frequency_for_baseline(sim):
    server, _ = make_server(sim, workers=1)
    UserspaceGovernor(1.6).attach(server.cores[0], sim)
    request = submit_n(server, 1, work=1.6e-3)[0]  # 1 ms at 1.6
    sim.run()
    assert request.dispatch_freq == 1.6
    assert request.execution_time == pytest.approx(1e-3)


def test_polaris_applies_frequency_via_msr(sim):
    server, estimator = make_server(sim, workers=1, scheduler=True)
    for freq in (1.2, 1.6, 2.0, 2.4, 2.8):
        estimator.prime("w", freq, 1e-3 * 2.8 / freq, count=5)
    request = Request(Workload("w", 0.050), "w", 0.0, 1.2e-3)
    server.submit(request)
    sim.run()
    # Loose 50 ms deadline: POLARIS dispatches at the minimum frequency.
    assert request.dispatch_freq == 1.2


def test_single_freq_flag_cleared_on_mid_run_change(sim):
    server, estimator = make_server(sim, workers=1, scheduler=True)
    for freq in (1.2, 1.6, 2.0, 2.4, 2.8):
        estimator.prime("slow", freq, 5e-3 * 2.8 / freq, count=5)
        estimator.prime("fast", freq, 0.1e-3 * 2.8 / freq, count=5)
    slow = Request(Workload("slow", 0.5), "slow", 0.0, 14e-3)
    server.submit(slow)
    sim.schedule(1e-3, lambda: server.submit(
        Request(Workload("fast", 0.004), "fast", sim.now, 0.28e-3)))
    sim.run()
    assert not slow.single_freq  # bumped mid-run by the urgent arrival


def test_wall_power_and_energy(sim):
    server, _ = make_server(sim, workers=2)
    idle = server.wall_power()
    assert idle > server.server_power.static_watts
    submit_n(server, 1, work=28.0)  # long job
    busy = server.wall_power()
    assert busy > idle
    sim.schedule(1.0, sim.stop)
    sim.run()
    assert server.wall_energy() > 0
    assert server.cpu_energy() > 0
    assert server.cpu_energy() < server.wall_energy()


def test_rapl_packages_group_cores(sim):
    server, _ = make_server(sim, workers=16)
    assert len(server.packages) == 2
    assert len(server.packages[0].cores) == 8


def test_functional_execution_runs_bodies(sim):
    config = tpcc.TpccConfig(warehouses=1, customers_per_district=10,
                             items=30)
    db = tpcc.build_database(config, seed=3)
    server, _ = make_server(sim, workers=2, functional_execution=True)
    server.attach_functional(db, tpcc.TRANSACTION_BODIES, config,
                             random.Random(4))
    commits_before = db.log.stats.commits
    request = Request(WORKLOAD, "Payment", 0.0, 2.8e-3)
    server.submit(request)
    sim.run()
    assert request.result is not None
    assert "amount" in request.result
    assert db.log.stats.commits == commits_before + 1


def test_functional_rollback_handled(sim):
    config = tpcc.TpccConfig(warehouses=1, customers_per_district=10,
                             items=30, new_order_rollback_rate=1.0)
    db = tpcc.build_database(config, seed=3)
    server, _ = make_server(sim, workers=1, functional_execution=True)
    server.attach_functional(db, tpcc.TRANSACTION_BODIES, config,
                             random.Random(4))
    request = Request(WORKLOAD, "NewOrder", 0.0, 2.8e-3)
    server.submit(request)
    sim.run()
    assert request.result == {"rolled_back": True}
    assert tpcc.check_consistency(db, config) == []


def test_drain_runs_queues_empty(sim):
    server, _ = make_server(sim, workers=1)
    submit_n(server, 10)
    server.drain()
    assert server.total_queue_length() == 0
    assert all(w.idle for w in server.workers)


def test_drain_timeout_is_virtual_time(sim):
    """``drain(timeout=...)`` bounds *virtual* seconds, and the error
    names the workers still holding work."""
    from repro.db.server import DrainTimeout
    server, _ = make_server(sim, workers=2)
    # Worker 0: a 10-virtual-second transaction plus one queued behind.
    submit_n(server, 1, work=28.0)
    sim.run(until=1e-4)  # request handler hop: let it start executing
    submit_n(server, 2, work=28.0)
    with pytest.raises(DrainTimeout) as excinfo:
        server.drain(timeout=0.5)
    message = str(excinfo.value)
    assert "0.5 virtual seconds" in message
    assert "worker 0" in message
    assert "queued=1" in message
    # Virtual time advanced to (at least) the deadline, not past the
    # undrainable work.
    assert 0.5 <= sim.now < 10.0


def test_drain_timeout_leaves_idle_workers_out_of_the_report(sim):
    from repro.db.server import DrainTimeout
    server, _ = make_server(sim, workers=2)
    submit_n(server, 1, work=28.0)  # lands on worker 0 only
    sim.run(until=1e-4)
    with pytest.raises(DrainTimeout) as excinfo:
        server.drain(timeout=0.2)
    assert "worker 1" not in str(excinfo.value)


def test_drain_generous_timeout_succeeds(sim):
    server, _ = make_server(sim, workers=1)
    submit_n(server, 3, work=2.8e-3)  # ~1 ms each
    server.drain(timeout=60.0)
    assert all(w.idle for w in server.workers)
    assert sim.now < 1.0


def test_config_validation(sim):
    with pytest.raises(ValueError):
        DatabaseServer(sim, ServerConfig(workers=0))
    with pytest.raises(ValueError):
        DatabaseServer(sim, ServerConfig(request_handlers=0))


def test_baseline_dispatcher_interface():
    dispatcher = BaselineDispatcher()
    request = Request(WORKLOAD, "t", 0.0, 1.0)
    dispatcher.enqueue(request)
    assert len(dispatcher) == 1
    assert dispatcher.select_frequency(0.0, request) is None
    dispatcher.record_completion(request)  # no-op
    assert dispatcher.next_request() is request
