"""Shared cell grid + fingerprints for the byte-identity pin tests.

The PR-6 engine optimizations (calendar event queue, batched RNG,
POLARIS mu-vector cache, persistent sweep pool) all promise *exact*
result identity with the pre-optimization serial path.  This module
defines a small but diverse grid of experiment cells and a canonical
fingerprint (the ``repr`` of every seed-deterministic result field, so
floats pin to full precision).  ``tests/data/pinned_results.json``
holds the fingerprints captured from the pre-optimization code; the
pin test re-runs the grid and asserts equality.

Regenerate (e.g. after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/pinned_cells.py --write
"""

from __future__ import annotations

import json
import os
import sys

from repro.harness.experiment import ExperimentConfig, run_experiment

DATA_PATH = os.path.join(os.path.dirname(__file__), "data",
                         "pinned_results.json")

_SHORT = dict(workers=2, warmup_seconds=0.3, test_seconds=0.8)


def pinned_grid():
    """Diverse, fast cells covering every hot path the PR touches.

    Every cell pins ``trace=False``: the golden fingerprints were
    captured with tracing off, and ambient ``REPRO_TRACE=1`` would
    otherwise flip ``trace_events`` (and with it the fingerprint) ---
    the pin asserts optimization-identity, not trace-invariance.
    """
    grid = _pinned_grid()
    for config in grid:
        config.trace = False
    return grid


def _pinned_grid():
    return [
        # POLARIS on the Figure 6 shape (tight slack, medium load).
        ExperimentConfig(scheme="polaris", slack=10.0, workers=4,
                         warmup_seconds=0.5, test_seconds=1.5, seed=11),
        # Static baseline and both Linux governors.
        ExperimentConfig(scheme="static-2.8", slack=70.0, seed=5, **_SHORT),
        ExperimentConfig(scheme="static-1.2", slack=40.0, seed=5,
                         load_fraction=0.3, **_SHORT),
        ExperimentConfig(scheme="ondemand", slack=40.0, seed=7, **_SHORT),
        ExperimentConfig(scheme="conservative", slack=40.0, seed=7, **_SHORT),
        # Other benchmarks (tpce spike-model draws, ycsb mix).
        ExperimentConfig(benchmark="tpce", scheme="polaris", slack=40.0,
                         seed=13, **_SHORT),
        ExperimentConfig(benchmark="ycsb-a", scheme="polaris", slack=40.0,
                         seed=13, **_SHORT),
        # Tier policy exercises the unbatchable randrange() stream.
        ExperimentConfig(scheme="polaris", workload_policy="tiers",
                         tier_targets={"gold": 7.5e-3, "silver": 37.5e-3},
                         seed=9, **_SHORT),
        # Faults wrap the estimator with a time-varying proxy (the
        # mu-vector cache must stay disabled there).
        ExperimentConfig(scheme="polaris", slack=40.0, seed=3,
                         faults="burst+brownout", **_SHORT),
        # Shared-frequency domains and the packing/parking extension.
        ExperimentConfig(scheme="polaris", slack=40.0, seed=11, workers=4,
                         warmup_seconds=0.3, test_seconds=0.8,
                         topology="per-socket",
                         topology_switch_latency=50e-6),
        ExperimentConfig(scheme="polaris", slack=40.0, seed=11, workers=4,
                         warmup_seconds=0.3, test_seconds=0.8,
                         routing="packing", cstate_ladder="deep"),
        # Time-varying load trace (arrival-rate schedule path).
        ExperimentConfig(scheme="polaris", slack=40.0, seed=21,
                         load_trace=[0.2, 0.9, 0.5], **_SHORT),
        # Scheduler variants and ablations.
        ExperimentConfig(scheme="polaris-fifo", slack=10.0, seed=5, **_SHORT),
        ExperimentConfig(scheme="polaris-shed", slack=10.0, seed=5,
                         load_fraction=0.9, **_SHORT),
        ExperimentConfig(scheme="polaris", slack=10.0, seed=5,
                         estimator_mixed_freq_updates=True, **_SHORT),
        # The scheduler arena's promoted online algorithms (same-seed
        # fingerprints for the tournament's new schemes), one healthy
        # cell each plus one arena fault round.
        ExperimentConfig(scheme="oa-online", slack=40.0, seed=5, **_SHORT),
        ExperimentConfig(scheme="avr-online", slack=40.0, seed=5, **_SHORT),
        ExperimentConfig(scheme="nonclairvoyant", slack=40.0, seed=5,
                         **_SHORT),
        ExperimentConfig(scheme="oa-online", slack=40.0, seed=3,
                         faults="dying-core", **_SHORT),
    ]


def cell_label(config: ExperimentConfig) -> str:
    parts = [config.benchmark, config.scheme, f"seed{config.seed}",
             f"slack{config.slack:g}", f"load{config.load_fraction:g}"]
    if config.workload_policy != "per-type":
        parts.append(config.workload_policy)
    if config.faults:
        parts.append("faults")
    if config.topology != "per-core":
        parts.append(config.topology)
    if config.routing != "rh-round-robin":
        parts.append(config.routing)
    if config.load_trace:
        parts.append("trace-load")
    if config.estimator_mixed_freq_updates:
        parts.append("mixedfreq")
    return ":".join(parts)


def fingerprint(result) -> str:
    """Full-precision repr of every seed-deterministic result field."""
    fields = dict(
        scheme_label=result.scheme_label,
        avg_power_watts=result.avg_power_watts,
        failure_rate=result.failure_rate,
        offered=result.offered,
        completed=result.completed,
        missed=result.missed,
        rejected=result.rejected,
        throughput=result.throughput,
        peak_throughput=result.peak_throughput,
        per_workload_failure=sorted(result.per_workload_failure.items()),
        per_workload_offered=sorted(result.per_workload_offered.items()),
        cpu_energy_joules=result.cpu_energy_joules,
        wall_energy_joules=result.wall_energy_joules,
        freq_residency=sorted(result.freq_residency.items()),
        power_timeline=result.power_timeline,
        load_timeline=result.load_timeline,
        mean_latency_by_workload=sorted(
            result.mean_latency_by_workload.items()),
        trace_events=result.trace_events,
        faults_injected=result.faults_injected,
        degradation_actions=sorted(result.degradation_actions.items()),
        lost=result.lost,
        sim_events=result.sim_events,
    )
    return repr(fields)


def capture() -> dict:
    pins = {}
    for config in pinned_grid():
        label = cell_label(config)
        assert label not in pins, f"duplicate cell label {label}"
        pins[label] = fingerprint(run_experiment(config))
    return pins


def main(argv):
    if "--write" not in argv:
        print(__doc__)
        return 1
    pins = capture()
    os.makedirs(os.path.dirname(DATA_PATH), exist_ok=True)
    with open(DATA_PATH, "w") as handle:
        json.dump(pins, handle, indent=1, sort_keys=True)
    print(f"wrote {len(pins)} pins -> {DATA_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
