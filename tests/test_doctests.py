"""Docstring examples in the public API must stay executable."""

import doctest

import pytest

import repro.db.storage.btree
import repro.db.storage.database
import repro.sim.engine
import repro.sim.rng
import repro.workloads.base

MODULES = [
    repro.sim.engine,
    repro.sim.rng,
    repro.db.storage.btree,
    repro.db.storage.database,
    repro.workloads.base,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
