"""Workloads and latency-target policies."""

import pytest

from repro.core.workload import Workload, WorkloadManager
from repro.workloads import tpcc


def test_workload_deadline():
    workload = Workload("w", 0.010)
    assert workload.deadline_for(2.5) == pytest.approx(2.510)


def test_workload_target_validation():
    with pytest.raises(ValueError):
        Workload("w", 0.0)


def test_register_and_lookup():
    manager = WorkloadManager([Workload("a", 1.0)])
    manager.register(Workload("b", 2.0))
    assert manager.get("a").latency_target == 1.0
    assert "b" in manager
    assert "c" not in manager
    assert len(manager) == 2
    assert [w.name for w in manager.workloads] == ["a", "b"]


def test_duplicate_registration_rejected():
    manager = WorkloadManager([Workload("a", 1.0)])
    with pytest.raises(ValueError):
        manager.register(Workload("a", 2.0))


def test_per_type_slack_policy_matches_paper_example():
    """Section 6.2: at slack 50, Order Status (mean ~0.25 ms) gets a
    ~12.5 ms target and Stock Level (mean ~3.4 ms) gets ~170 ms."""
    spec = tpcc.make_spec(include_bodies=False)
    manager = WorkloadManager.per_type_with_slack(spec, slack=50.0)
    assert manager.get("OrderStatus").latency_target \
        == pytest.approx(50 * 250e-6)
    assert manager.get("StockLevel").latency_target \
        == pytest.approx(50 * 3435e-6)
    assert manager.get("NewOrder").latency_target \
        == pytest.approx(50 * 2059e-6)
    assert len(manager) == 4


def test_slack_must_be_positive():
    spec = tpcc.make_spec(include_bodies=False)
    with pytest.raises(ValueError):
        WorkloadManager.per_type_with_slack(spec, slack=0.0)


def test_tiers_policy():
    manager = WorkloadManager.tiers({"gold": 7.5e-3, "silver": 37.5e-3})
    assert manager.get("gold").latency_target == pytest.approx(7.5e-3)
    assert manager.get("silver").latency_target == pytest.approx(37.5e-3)


def test_workload_for_type():
    spec = tpcc.make_spec(include_bodies=False)
    manager = WorkloadManager.per_type_with_slack(spec, slack=10.0)
    assert manager.workload_for_type("Payment").name == "Payment"
    assert manager.workload_for_type("nope") is None
