"""Pinned fleet cells: the elastic-vs-static acceptance pair.

The fleet PR's headline claim is quantitative: on a 1000x-scaled
diurnal trace, the elastic fleet's mean power lands strictly below the
static peak-provisioned fleet at equal-or-better per-shard deadline-miss
rates, and same-seed runs are bit-identical.  This module defines the
cell grid that claim is measured on and a fingerprint extending the
PR-6 one with the fleet result fields; ``tests/data/pinned_fleet.json``
holds the captured goldens.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python tests/pinned_fleet.py --write
"""

from __future__ import annotations

import json
import os
import random
import sys

sys.path.insert(0, os.path.dirname(__file__))
from pinned_cells import fingerprint as base_fingerprint

from repro.fleet.config import FleetConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.workloads.traces import normalize, synthesize_diurnal_trace

DATA_PATH = os.path.join(os.path.dirname(__file__), "data",
                         "pinned_fleet.json")

#: The acceptance trace: 16 virtual seconds of the diurnal shape,
#: scaled to absolute rates by 1000x (the tentpole's "1000x-scaled
#: diurnal trace"), then normalized for the harness's low..high
#: fraction mapping.
TRACE_SECONDS = 16
TRACE_SEED = 7
PEAK_RATE_SCALE = 1000.0


def acceptance_trace():
    raw = synthesize_diurnal_trace(TRACE_SECONDS,
                                   random.Random(TRACE_SEED),
                                   peak_rate_scale=PEAK_RATE_SCALE)
    return normalize(raw)


def _diurnal_cell(fleet: FleetConfig) -> ExperimentConfig:
    return ExperimentConfig(
        benchmark="tpcc", scheme="polaris", slack=60.0,
        warmup_seconds=0.5, drain_limit_seconds=5.0, seed=11,
        load_trace=acceptance_trace(), trace_low_fraction=0.1,
        trace_high_fraction=0.4, trace=False, fleet=fleet)


def elastic_cell() -> ExperimentConfig:
    return _diurnal_cell(FleetConfig(elastic=True))


def static_peak_cell() -> ExperimentConfig:
    return _diurnal_cell(FleetConfig(elastic=False))


def pinned_grid():
    """The acceptance pair plus a read-heavy replica-serving cell."""
    ycsb = ExperimentConfig(
        benchmark="ycsb-b", scheme="polaris", slack=40.0,
        warmup_seconds=0.3, test_seconds=1.0, seed=13, trace=False,
        fleet=FleetConfig(shards=1, replicas_per_shard=2,
                          node_workers=2, elastic=False))
    return {
        "fleet-elastic-diurnal": elastic_cell(),
        "fleet-static-peak-diurnal": static_peak_cell(),
        "fleet-ycsb-b-replicas": ycsb,
    }


def fingerprint(result) -> str:
    """PR-6 fingerprint plus the fleet-specific result fields."""
    fleet_fields = dict(
        per_shard_failure=sorted(result.per_shard_failure.items()),
        per_shard_offered=sorted(result.per_shard_offered.items()),
        stale_reads=result.stale_reads,
        fleet_actions=sorted(result.fleet_actions.items()),
        node_timeline=result.node_timeline,
    )
    return base_fingerprint(result) + "+" + repr(fleet_fields)


def capture() -> dict:
    return {label: fingerprint(run_experiment(config))
            for label, config in pinned_grid().items()}


if __name__ == "__main__":
    if "--write" in sys.argv:
        pins = capture()
        with open(DATA_PATH, "w") as handle:
            json.dump(pins, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {len(pins)} fleet pins to {DATA_PATH}")
    else:
        print(__doc__)
