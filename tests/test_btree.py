"""B+-tree: unit cases plus model-based property tests against a dict."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.storage.btree import BPlusTree


def test_insert_get_basic():
    tree = BPlusTree()
    assert tree.insert(2, "b")
    assert tree.insert(1, "a")
    assert tree.get(1) == "a"
    assert tree.get(2) == "b"
    assert tree.get(3) is None
    assert tree.get(3, "missing") == "missing"
    assert len(tree) == 2
    assert 1 in tree and 3 not in tree


def test_insert_replace_semantics():
    tree = BPlusTree()
    assert tree.insert(1, "a") is True
    assert tree.insert(1, "b") is False
    assert tree.get(1) == "b"
    assert tree.insert(1, "c", replace=False) is False
    assert tree.get(1) == "b"
    assert len(tree) == 1


def test_delete():
    tree = BPlusTree()
    tree.insert(1, "a")
    assert tree.delete(1) is True
    assert tree.delete(1) is False
    assert len(tree) == 0
    assert tree.get(1) is None


def test_items_sorted_after_many_inserts():
    tree = BPlusTree(order=4)
    keys = list(range(200))
    random.Random(0).shuffle(keys)
    for key in keys:
        tree.insert(key, key * 10)
    assert [k for k, _ in tree.items()] == list(range(200))
    tree.check_invariants()


def test_range_queries():
    tree = BPlusTree(order=4)
    for key in range(0, 100, 2):  # even keys
        tree.insert(key, key)
    assert [k for k, _ in tree.items(10, 20)] == [10, 12, 14, 16, 18, 20]
    assert [k for k, _ in tree.items(9, 21)] == [10, 12, 14, 16, 18, 20]
    assert [k for k, _ in tree.items(10, 20, inclusive=(False, False))] \
        == [12, 14, 16, 18]
    assert [k for k, _ in tree.items(None, 4)] == [0, 2, 4]
    assert [k for k, _ in tree.items(94, None)] == [94, 96, 98]
    assert list(tree.keys(96)) == [96, 98]


def test_min_max_keys():
    tree = BPlusTree(order=3)
    with pytest.raises(KeyError):
        tree.min_key()
    with pytest.raises(KeyError):
        tree.max_key()
    for key in (5, 1, 9, 3):
        tree.insert(key, None)
    assert tree.min_key() == 1
    assert tree.max_key() == 9


def test_deletion_with_rebalancing():
    tree = BPlusTree(order=3)  # tiny order forces splits/merges
    keys = list(range(100))
    rng = random.Random(1)
    rng.shuffle(keys)
    for key in keys:
        tree.insert(key, key)
    tree.check_invariants()
    rng.shuffle(keys)
    for i, key in enumerate(keys):
        assert tree.delete(key)
        if i % 10 == 0:
            tree.check_invariants()
    assert len(tree) == 0
    tree.check_invariants()


def test_tuple_keys():
    tree = BPlusTree()
    tree.insert((1, "b"), "x")
    tree.insert((1, "a"), "y")
    tree.insert((0, "z"), "w")
    assert [k for k, _ in tree.items()] == [(0, "z"), (1, "a"), (1, "b")]
    assert [k for k, _ in tree.items((1, ""), (1, "zz"))] \
        == [(1, "a"), (1, "b")]


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


def test_empty_iteration():
    tree = BPlusTree()
    assert list(tree.items()) == []
    assert list(tree.items(1, 10)) == []


@settings(max_examples=150, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "get"]),
                  st.integers(min_value=0, max_value=60)),
        max_size=120),
    order=st.integers(min_value=3, max_value=8))
def test_property_matches_dict_model(ops, order):
    """The tree behaves exactly like a dict + sorted() reference."""
    tree = BPlusTree(order=order)
    model = {}
    for op, key in ops:
        if op == "insert":
            assert tree.insert(key, key * 3) == (key not in model)
            model[key] = key * 3
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    assert [k for k, _ in tree.items()] == sorted(model)
    assert dict(tree.items()) == model
    tree.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    keys=st.sets(st.integers(min_value=0, max_value=1000), max_size=80),
    low=st.integers(min_value=-10, max_value=1010),
    high=st.integers(min_value=-10, max_value=1010))
def test_property_range_scan_matches_filter(keys, low, high):
    tree = BPlusTree(order=5)
    for key in keys:
        tree.insert(key, None)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.items(low, high)] == expected
