"""Seed-swept crash/replay round-trips under group-commit boundaries.

Property tests for the WAL contract the fleet failure model leans on
(``repro.fleet.chaos.ShardReplication`` logs every committed write and
reads ``buffered_commits`` / ``discard_after`` at crash and promotion
time): a crash loses exactly the buffered-but-unforced tail, the
durable committed set is always a prefix of commit order, replay is a
pure function of the surviving records, and the failover trim
(``discard_after``) leaves a log whose replay matches the promoted
replica's applied prefix.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.db.storage import log as wal
from repro.db.storage.log import LogManager, replay

SEEDS = st.integers(min_value=0, max_value=10_000)
GROUPS = st.integers(min_value=1, max_value=12)
COUNTS = st.integers(min_value=1, max_value=40)


def random_txns(rng, count):
    """Transactions as (txn_id, ops, commits): 1-3 ops each, ~20%
    aborted."""
    txns = []
    for txn_id in range(1, count + 1):
        ops = []
        for _ in range(rng.randrange(1, 4)):
            kind = rng.choice((wal.KIND_INSERT, wal.KIND_UPDATE,
                               wal.KIND_DELETE))
            ops.append((kind, rng.choice(("t0", "t1")),
                        rng.randrange(8), {"v": txn_id}))
        txns.append((txn_id, ops, rng.random() > 0.2))
    return txns


def append_txn(log, txn_id, ops, commits):
    for kind, table, key, after in ops:
        log.append(txn_id, kind, table=table, key=key,
                   after=None if kind == wal.KIND_DELETE else after)
    log.append(txn_id, wal.KIND_COMMIT if commits else wal.KIND_ABORT)


def oracle_apply(tables, ops):
    """Reference semantics of one committed transaction's ops."""
    for kind, table, key, after in ops:
        if kind == wal.KIND_DELETE:
            tables.setdefault(table, {}).pop(key, None)
        else:
            tables.setdefault(table, {})[key] = dict(after)


@given(SEEDS, GROUPS, COUNTS)
@settings(max_examples=60, deadline=None)
def test_crash_preserves_exactly_the_durable_commits(seed, group, count):
    rng = random.Random(seed)
    log = LogManager(group)
    txns = random_txns(rng, count)
    for txn in txns:
        append_txn(log, *txn)
    # Group commit bounds the loss window: a full group forces, so at
    # most group-1 commits can ever sit in the buffer.
    assert log.buffered_commits <= group - 1
    lost = log.buffered_commits
    survivors = log.crash()
    assert log.buffered_count == 0 and log.buffered_commits == 0
    durable_committed = {r.txn_id for r in survivors
                         if r.kind == wal.KIND_COMMIT}
    committed_order = [txn_id for txn_id, _, commits in txns if commits]
    # The durable committed set is a *prefix* of commit order (forces
    # are in-order), and the crash lost exactly the buffered commits.
    assert sorted(durable_committed) \
        == committed_order[:len(durable_committed)]
    assert len(committed_order) - len(durable_committed) == lost
    expected = {}
    for txn_id, ops, commits in txns:
        if commits and txn_id in durable_committed:
            oracle_apply(expected, ops)
    assert replay(survivors) == expected


@given(SEEDS, COUNTS)
@settings(max_examples=40, deadline=None)
def test_group_of_one_never_loses_a_commit(seed, count):
    rng = random.Random(seed)
    log = LogManager(group_commit_size=1)
    txns = random_txns(rng, count)
    for txn in txns:
        append_txn(log, *txn)
    assert log.buffered_commits == 0
    survivors = log.crash()
    assert {r.txn_id for r in survivors if r.kind == wal.KIND_COMMIT} \
        == {txn_id for txn_id, _, commits in txns if commits}


@given(SEEDS, GROUPS, COUNTS)
@settings(max_examples=40, deadline=None)
def test_checkpoint_split_replay_matches_full_replay(seed, group, count):
    """Replaying a suffix on top of a prefix image equals one full
    replay, for any transaction-aligned split point."""
    rng = random.Random(seed)
    log = LogManager(group)
    for txn in random_txns(rng, count):
        append_txn(log, *txn)
    survivors = log.crash()
    boundaries = [0] + [i + 1 for i, r in enumerate(survivors)
                        if r.kind in (wal.KIND_COMMIT, wal.KIND_ABORT)]
    split = rng.choice(boundaries)
    base = replay(survivors[:split])
    assert replay(survivors[split:], base=base) == replay(survivors)


@given(SEEDS, GROUPS, COUNTS)
@settings(max_examples=40, deadline=None)
def test_discard_after_trims_to_the_applied_prefix(seed, group, count):
    """The failover trim: cutting the durable log at an arbitrary
    force-aligned LSN leaves replay equal to the prefix's replay, with
    the cut commits gone for good."""
    rng = random.Random(seed)
    log = LogManager(group)
    for txn in random_txns(rng, count):
        append_txn(log, *txn)
    log.crash()
    survivors = log.durable_records
    commit_lsns = [0] + [r.lsn for r in survivors
                         if r.kind == wal.KIND_COMMIT]
    lsn = rng.choice(commit_lsns)
    above = sum(1 for r in survivors if r.lsn > lsn)
    prefix = [r for r in survivors if r.lsn <= lsn]
    cut = log.discard_after(lsn)
    assert cut == above
    assert log.last_durable_lsn <= lsn
    assert replay(log.durable_records) == replay(prefix)


@given(SEEDS, GROUPS, COUNTS)
@settings(max_examples=30, deadline=None)
def test_replay_is_pure_and_unaliased(seed, group, count):
    """Two replays of the same records agree and share no mutable
    state; the source records are untouched."""
    rng = random.Random(seed)
    log = LogManager(group)
    for txn in random_txns(rng, count):
        append_txn(log, *txn)
    survivors = log.crash()
    first = replay(survivors)
    second = replay(survivors)
    assert first == second
    poisoned = False
    for rows in first.values():
        for row in rows.values():
            row["v"] = "poisoned"
            poisoned = True
            break
        if poisoned:
            break
    if poisoned:
        assert first != second  # the mutation stayed local
    assert replay(survivors) == second
