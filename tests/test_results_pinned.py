"""Byte-identity pins: optimized engine vs the pre-optimization path.

``tests/data/pinned_results.json`` was captured from the serial,
heapq-engine, unbatched-RNG code immediately before the PR-6
optimizations landed.  Every optimization in that PR (calendar event
queue, batched RNG streams, POLARIS mu-vector cache, queue scan fast
path, persistent sweep pool) claims *exact* value identity, so the
full-precision fingerprints of a diverse cell grid must not move.

If a future PR changes simulation semantics on purpose, regenerate the
pins (``PYTHONPATH=src python tests/pinned_cells.py --write``) and say
so in the PR description.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))
from pinned_cells import DATA_PATH, cell_label, fingerprint, pinned_grid
from repro.harness.experiment import run_experiment


def _load_pins():
    with open(DATA_PATH) as handle:
        return json.load(handle)


PINS = _load_pins()
GRID = {cell_label(config): config for config in pinned_grid()}


def test_every_pinned_cell_still_defined():
    assert set(PINS) == set(GRID)


@pytest.mark.parametrize("label", sorted(GRID))
def test_cell_matches_pre_optimization_fingerprint(label):
    result = run_experiment(GRID[label])
    assert fingerprint(result) == PINS[label], (
        f"cell {label} diverged from the pre-optimization pin")
