"""Pinned chaos cells: crash-per-shard failover acceptance.

The PR 9 acceptance claim is quantitative: on the same 1000x-scaled
diurnal trace the PR 8 frontier is pinned on, a seeded crash-per-shard
plan (``shard-crash``: every primary fail-stops at 1.5 s) leaves the
failover-enabled elastic fleet with **zero unserved shards** and a
bounded lost-commit count, keeps mean power bounded by the healthy
elastic point (fail-stopped nodes draw nothing, so surviving the crash
costs no extra power over the PR 8 frontier), and produces a
byte-identical failover timeline on same-seed reruns --- while the
no-failover baseline ends the run with every shard's write path still
down and availability near zero.

``tests/data/pinned_chaos.json`` holds the captured fingerprints.
Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python tests/pinned_chaos.py --write
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
from pinned_fleet import _diurnal_cell, fingerprint as fleet_fingerprint

from repro.fleet.config import FleetConfig
from repro.harness.experiment import ExperimentConfig, run_experiment

DATA_PATH = os.path.join(os.path.dirname(__file__), "data",
                         "pinned_chaos.json")

#: The chaos plan every pinned cell runs under (repro.faults scenario:
#: every shard's primary fail-stops at 1.5 s, mid-test-window).
CHAOS_SCENARIO = "shard-crash"


def failover_cell() -> ExperimentConfig:
    """The elastic acceptance cell under crash-per-shard, failover on."""
    config = _diurnal_cell(FleetConfig(elastic=True))
    config.faults = CHAOS_SCENARIO
    return config


def no_failover_cell() -> ExperimentConfig:
    """Same crashes, failover machinery off: the availability baseline."""
    config = _diurnal_cell(FleetConfig(elastic=True,
                                       failover_enabled=False))
    config.faults = CHAOS_SCENARIO
    return config


def pinned_grid():
    return {
        "chaos-failover-diurnal": failover_cell(),
        "chaos-no-failover-diurnal": no_failover_cell(),
    }


def fingerprint(result) -> str:
    """Fleet fingerprint plus the chaos/failover result fields."""
    chaos_fields = dict(
        availability=sorted(result.availability.items()),
        lost_commits=result.lost_commits,
        failovers=result.failovers,
        mttr_s=result.mttr_s,
        unserved_shards=result.unserved_shards,
        p999_latency_s=result.p999_latency_s,
        failover_timeline=result.failover_timeline,
        faults_injected=result.faults_injected,
    )
    return fleet_fingerprint(result) + "+" + repr(chaos_fields)


def capture() -> dict:
    return {label: fingerprint(run_experiment(config))
            for label, config in pinned_grid().items()}


if __name__ == "__main__":
    if "--write" in sys.argv:
        pins = capture()
        with open(DATA_PATH, "w") as handle:
            json.dump(pins, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {len(pins)} chaos pins to {DATA_PATH}")
    else:
        print(__doc__)
