"""OS frequency governors: static pinning and the dynamic decision rules."""

import pytest

from repro.cpu.core import Core, Job
from repro.cpu.pstates import XEON_E5_2640V3_PSTATES
from repro.governors.base import DynamicGovernor, GovernorSet
from repro.governors.conservative import ConservativeGovernor
from repro.governors.ondemand import OnDemandGovernor
from repro.governors.static import (
    PerformanceGovernor, PowersaveGovernor, UserspaceGovernor,
)
from repro.sim.engine import Simulator


def make_core(sim, freq=2.8):
    return Core(sim, 0, XEON_E5_2640V3_PSTATES, initial_freq=freq)


def keep_busy(sim, core, fraction, period=0.002, until=1.0):
    """Drive the core busy for ``fraction`` of every ``period``."""
    def tick():
        if sim.now >= until or core.busy:
            return
        core.start_job(Job(core.freq * period * fraction))
        sim.schedule(period, tick)

    sim.schedule(0.0, tick)


# ----------------------------------------------------------------------
# Static governors
# ----------------------------------------------------------------------
def test_performance_pins_max(sim):
    core = make_core(sim, freq=1.2)
    PerformanceGovernor().attach(core, sim)
    assert core.freq == 2.8


def test_powersave_pins_min(sim):
    core = make_core(sim, freq=2.8)
    PowersaveGovernor().attach(core, sim)
    assert core.freq == 1.2


def test_userspace_pins_requested(sim):
    core = make_core(sim)
    governor = UserspaceGovernor(2.4)
    governor.attach(core, sim)
    assert core.freq == 2.4
    governor.set_speed(1.6)
    assert core.freq == 1.6


def test_userspace_requires_grid_frequency(sim):
    core = make_core(sim)
    with pytest.raises(ValueError):
        UserspaceGovernor(2.45).attach(core, sim)


# ----------------------------------------------------------------------
# OnDemand
# ----------------------------------------------------------------------
def test_ondemand_jumps_to_max_when_saturated(sim):
    core = make_core(sim, freq=1.2)
    governor = OnDemandGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    core.start_job(Job(1000.0))  # saturate indefinitely
    sim.run(until=0.05)
    assert core.freq == 2.8


def test_ondemand_scales_proportionally_at_partial_load(sim):
    core = make_core(sim, freq=2.8)
    governor = OnDemandGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    keep_busy(sim, core, fraction=0.5, until=0.5)
    sim.run(until=0.5)
    # load 0.5 -> target 1.4 GHz; utilization rises as freq drops, so the
    # equilibrium sits in the middle of the grid, never back at max.
    assert 1.2 <= core.freq <= 2.2


def test_ondemand_idle_core_drops_to_min(sim):
    core = make_core(sim, freq=2.8)
    OnDemandGovernor(sampling_period_s=0.01).attach(core, sim)
    sim.run(until=0.1)
    assert core.freq == 1.2


def test_ondemand_threshold_validation():
    with pytest.raises(ValueError):
        OnDemandGovernor(up_threshold=0.0)
    with pytest.raises(ValueError):
        OnDemandGovernor(up_threshold=101.0)


# ----------------------------------------------------------------------
# Conservative
# ----------------------------------------------------------------------
def test_conservative_steps_up_gradually_under_load(sim):
    core = make_core(sim, freq=1.2)
    governor = ConservativeGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    core.start_job(Job(1000.0))
    sim.run(until=0.035)  # three samples: 3 steps of 0.14 GHz
    assert 1.2 < core.freq < 2.8
    after_three = core.freq
    sim.run(until=0.30)
    assert core.freq == 2.8
    assert after_three < 2.8


def test_conservative_steps_down_when_idle(sim):
    core = make_core(sim, freq=2.8)
    ConservativeGovernor(sampling_period_s=0.01).attach(core, sim)
    sim.run(until=0.05)
    assert core.freq < 2.8  # stepped, not jumped
    freq_after_short_idle = core.freq
    sim.run(until=1.5)
    assert core.freq == 1.2
    assert freq_after_short_idle > 1.2


def test_conservative_dead_zone_holds_frequency(sim):
    core = make_core(sim, freq=2.8)
    governor = ConservativeGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    keep_busy(sim, core, fraction=0.5, until=0.5)  # between 20% and 80%
    sim.run(until=0.5)
    assert core.freq == 2.8  # never left the starting frequency


def test_conservative_threshold_validation():
    with pytest.raises(ValueError):
        ConservativeGovernor(up_threshold=10.0, down_threshold=20.0)
    with pytest.raises(ValueError):
        ConservativeGovernor(freq_step_percent=0.0)


# ----------------------------------------------------------------------
# Sampling machinery / GovernorSet
# ----------------------------------------------------------------------
def test_dynamic_governor_detach_stops_sampling(sim):
    core = make_core(sim, freq=2.8)
    governor = OnDemandGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    sim.run(until=0.03)
    samples = governor.samples_taken
    governor.detach()
    sim.schedule(0.1, lambda: None)
    sim.run()
    assert governor.samples_taken == samples


def test_sampling_period_validation():
    with pytest.raises(ValueError):
        OnDemandGovernor(sampling_period_s=0.0)


def test_governor_set_attaches_one_per_core(sim):
    cores = [Core(sim, i, XEON_E5_2640V3_PSTATES) for i in range(3)]
    group = GovernorSet(PowersaveGovernor)
    group.attach_all(cores, sim)
    assert all(c.freq == 1.2 for c in cores)
    assert len(group.governors) == 3
    with pytest.raises(RuntimeError):
        group.attach_all(cores, sim)
    group.detach_all()
    assert group.governors == []


def test_dynamic_base_requires_target_implementation(sim):
    core = make_core(sim)
    governor = DynamicGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    with pytest.raises(NotImplementedError):
        sim.run(until=0.02)
