"""OS frequency governors: static pinning and the dynamic decision rules."""

import pytest

from repro.cpu.core import Core, Job
from repro.cpu.pstates import XEON_E5_2640V3_PSTATES
from repro.governors.base import DynamicGovernor, GovernorSet
from repro.governors.conservative import ConservativeGovernor
from repro.governors.ondemand import OnDemandGovernor
from repro.governors.static import (
    PerformanceGovernor, PowersaveGovernor, UserspaceGovernor,
)
from repro.sim.engine import Simulator


def make_core(sim, freq=2.8):
    return Core(sim, 0, XEON_E5_2640V3_PSTATES, initial_freq=freq)


def keep_busy(sim, core, fraction, period=0.002, until=1.0):
    """Drive the core busy for ``fraction`` of every ``period``."""
    def tick():
        if sim.now >= until or core.busy:
            return
        core.start_job(Job(core.freq * period * fraction))
        sim.schedule(period, tick)

    sim.schedule(0.0, tick)


# ----------------------------------------------------------------------
# Static governors
# ----------------------------------------------------------------------
def test_performance_pins_max(sim):
    core = make_core(sim, freq=1.2)
    PerformanceGovernor().attach(core, sim)
    assert core.freq == 2.8


def test_powersave_pins_min(sim):
    core = make_core(sim, freq=2.8)
    PowersaveGovernor().attach(core, sim)
    assert core.freq == 1.2


def test_userspace_pins_requested(sim):
    core = make_core(sim)
    governor = UserspaceGovernor(2.4)
    governor.attach(core, sim)
    assert core.freq == 2.4
    governor.set_speed(1.6)
    assert core.freq == 1.6


def test_userspace_requires_grid_frequency(sim):
    core = make_core(sim)
    with pytest.raises(ValueError):
        UserspaceGovernor(2.45).attach(core, sim)


# ----------------------------------------------------------------------
# OnDemand
# ----------------------------------------------------------------------
def test_ondemand_jumps_to_max_when_saturated(sim):
    core = make_core(sim, freq=1.2)
    governor = OnDemandGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    core.start_job(Job(1000.0))  # saturate indefinitely
    sim.run(until=0.05)
    assert core.freq == 2.8


def test_ondemand_scales_proportionally_at_partial_load(sim):
    core = make_core(sim, freq=2.8)
    governor = OnDemandGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    keep_busy(sim, core, fraction=0.5, until=0.5)
    sim.run(until=0.5)
    # load 0.5 -> target 1.4 GHz; utilization rises as freq drops, so the
    # equilibrium sits in the middle of the grid, never back at max.
    assert 1.2 <= core.freq <= 2.2


def test_ondemand_idle_core_drops_to_min(sim):
    core = make_core(sim, freq=2.8)
    OnDemandGovernor(sampling_period_s=0.01).attach(core, sim)
    sim.run(until=0.1)
    assert core.freq == 1.2


def test_ondemand_threshold_validation():
    with pytest.raises(ValueError):
        OnDemandGovernor(up_threshold=0.0)
    with pytest.raises(ValueError):
        OnDemandGovernor(up_threshold=101.0)


def test_ondemand_up_threshold_boundary_is_strictly_greater(sim):
    """cpufreq_ondemand.c tests ``load > up_threshold``: a load exactly
    at the threshold takes the proportional path, one epsilon above it
    jumps to max."""
    core = make_core(sim)
    governor = OnDemandGovernor(sampling_period_s=0.01, up_threshold=95.0)
    governor.attach(core, sim)
    # Exactly at the threshold: proportional, relation L of 0.95 * 2.8
    # = 2.66 -> 2.8 happens to round to max on this grid, so use a
    # threshold the grid can distinguish.
    governor.up_threshold = 50.0
    at = governor.target_frequency(0.50)
    above = governor.target_frequency(0.50 + 1e-9)
    assert at == XEON_E5_2640V3_PSTATES.nearest_at_least(0.50 * 2.8)
    assert at < XEON_E5_2640V3_PSTATES.max_freq
    assert above == XEON_E5_2640V3_PSTATES.max_freq


# ----------------------------------------------------------------------
# Conservative
# ----------------------------------------------------------------------
def test_conservative_steps_up_gradually_under_load(sim):
    core = make_core(sim, freq=1.2)
    governor = ConservativeGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    core.start_job(Job(1000.0))
    sim.run(until=0.035)  # three samples: 3 steps of 0.14 GHz
    assert 1.2 < core.freq < 2.8
    after_three = core.freq
    sim.run(until=0.30)
    assert core.freq == 2.8
    assert after_three < 2.8


def test_conservative_steps_down_when_idle(sim):
    core = make_core(sim, freq=2.8)
    ConservativeGovernor(sampling_period_s=0.01).attach(core, sim)
    sim.run(until=0.05)
    assert core.freq < 2.8  # stepped, not jumped
    freq_after_short_idle = core.freq
    sim.run(until=1.5)
    assert core.freq == 1.2
    assert freq_after_short_idle > 1.2


def test_conservative_dead_zone_holds_frequency(sim):
    core = make_core(sim, freq=2.8)
    governor = ConservativeGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    keep_busy(sim, core, fraction=0.5, until=0.5)  # between 20% and 80%
    sim.run(until=0.5)
    assert core.freq == 2.8  # never left the starting frequency


def test_conservative_down_steps_round_to_at_most():
    """The down path resolves with highest-at-or-below: a decrease must
    never be rounded back up past the request.  On the 0.1 GHz grid a
    single 0.14 GHz step down from 2.8 lands on 2.6 (at-most of 2.66);
    at-least rounding would report 2.8 --- no movement at all."""
    sim = Simulator()
    core = make_core(sim, freq=2.8)
    governor = ConservativeGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    assert governor.target_frequency(0.0) == 2.6
    assert governor._requested == pytest.approx(2.8 - 0.14)
    # And the applied frequency never exceeds the internal request on
    # the way down.
    while core.freq > 1.2:
        target = governor.target_frequency(0.0)
        assert target <= governor._requested + 1e-12
        core.set_frequency(target)


def test_conservative_descends_to_min_on_coarse_grid():
    """Descent pin on the paper's 5-level grid (0.4 GHz gaps): every
    idle sample must make downward progress on the applied frequency
    within a few steps.  The old at-least rounding held the core a full
    P-state above the request --- three idle samples from 2.8 left the
    core still at 2.8 on this grid (requested 2.38, rounded up)."""
    sim = Simulator()
    grid = XEON_E5_2640V3_PSTATES.subset((1.2, 1.6, 2.0, 2.4, 2.8))
    core = Core(sim, 0, grid, initial_freq=2.8)
    ConservativeGovernor(sampling_period_s=0.01).attach(core, sim)
    sim.run(until=0.035)  # three idle samples: requested 2.8 -> 2.38
    assert core.freq == 2.0  # at-most of 2.38; at-least gave 2.4
    sim.run(until=0.2)
    assert core.freq == 1.2  # descent completes to the floor


def test_conservative_threshold_validation():
    with pytest.raises(ValueError):
        ConservativeGovernor(up_threshold=10.0, down_threshold=20.0)
    with pytest.raises(ValueError):
        ConservativeGovernor(freq_step_percent=0.0)


# ----------------------------------------------------------------------
# Sampling machinery / GovernorSet
# ----------------------------------------------------------------------
def test_dynamic_governor_detach_stops_sampling(sim):
    core = make_core(sim, freq=2.8)
    governor = OnDemandGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    sim.run(until=0.03)
    samples = governor.samples_taken
    governor.detach()
    sim.schedule(0.1, lambda: None)
    sim.run()
    assert governor.samples_taken == samples


def test_sampling_period_validation():
    with pytest.raises(ValueError):
        OnDemandGovernor(sampling_period_s=0.0)


def test_governor_set_attaches_one_per_core(sim):
    cores = [Core(sim, i, XEON_E5_2640V3_PSTATES) for i in range(3)]
    group = GovernorSet(PowersaveGovernor)
    group.attach_all(cores, sim)
    assert all(c.freq == 1.2 for c in cores)
    assert len(group.governors) == 3
    with pytest.raises(RuntimeError):
        group.attach_all(cores, sim)
    group.detach_all()
    assert group.governors == []


def test_dynamic_base_requires_target_implementation(sim):
    core = make_core(sim)
    governor = DynamicGovernor(sampling_period_s=0.01)
    governor.attach(core, sim)
    with pytest.raises(NotImplementedError):
        sim.run(until=0.02)
