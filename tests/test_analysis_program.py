"""Whole-program analyses: project model, call graph, units, flows.

Fixtures are synthetic packages written under ``tmp_path`` with a
``repro``-named root directory, so module naming, directory-scoped
rules, and cross-module resolution all see the real layout.  The final
tests run the full analyses over the shipped tree: the acceptance
criterion is zero findings within the CI runtime budget.
"""

import time
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.analysis.callgraph import CallGraph
from repro.analysis.flows import FlowAnalysis
from repro.analysis.project import Project
from repro.analysis.units import (
    SUFFIX_UNITS, UnitAnalysis, conversion_factor, name_unit,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def make_package(tmp_path, files):
    """Write ``{relpath: source}`` under a ``repro`` package root."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        for parent in target.parents:
            if parent == tmp_path:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
    return root


def unit_findings(tmp_path, files):
    project = Project.load([make_package(tmp_path, files)])
    return UnitAnalysis(project).run()


def flow_findings(tmp_path, files):
    project = Project.load([make_package(tmp_path, files)])
    return FlowAnalysis(project, CallGraph(project)).run()


# ----------------------------------------------------------------------
# Project model + call graph on synthetic packages
# ----------------------------------------------------------------------
def test_project_symbol_table(tmp_path):
    root = make_package(tmp_path, {
        "sim/engine.py": (
            "class Engine:\n"
            "    def schedule(self, delay_s):\n"
            "        return delay_s\n"
            "def run_s():\n"
            "    return 0.0\n"),
    })
    project = Project.load([root])
    assert "repro.sim.engine" in project.modules
    assert "repro.sim.engine.run_s" in project.functions
    assert "repro.sim.engine.Engine" in project.classes
    method = project.functions["repro.sim.engine.Engine.schedule"]
    assert method.params == ["delay_s"]  # self/cls are stripped
    assert any(f.qualname.endswith("Engine.schedule")
               for f in project.methods_by_name["schedule"])


def test_callgraph_resolves_cross_module_calls(tmp_path):
    root = make_package(tmp_path, {
        "a.py": "def leaf():\n    return 1\n",
        "b.py": ("from repro.a import leaf\n"
                 "def mid():\n    return leaf()\n"),
        "c.py": ("from repro import b\n"
                 "def top():\n    return b.mid()\n"),
    })
    project = Project.load([root])
    graph = CallGraph(project)
    assert "repro.a.leaf" in graph.reachable_from(["repro.c.top"])
    path = graph.shortest_path("repro.c.top", {"repro.a.leaf"})
    assert path == ["repro.c.top", "repro.b.mid", "repro.a.leaf"]
    assert "repro.c.top" not in graph.reachable_from(["repro.a.leaf"])


def test_callgraph_backward_reachability(tmp_path):
    root = make_package(tmp_path, {
        "a.py": "def sink():\n    return 1\n",
        "b.py": ("from repro.a import sink\n"
                 "def caller():\n    return sink()\n"
                 "def bystander():\n    return 2\n"),
    })
    project = Project.load([root])
    graph = CallGraph(project)
    tainted = graph.can_reach({"repro.a.sink"})
    assert "repro.b.caller" in tainted
    assert "repro.b.bystander" not in tainted


# ----------------------------------------------------------------------
# Unit lattice properties
# ----------------------------------------------------------------------
SUFFIXES = sorted(SUFFIX_UNITS)


@given(st.sampled_from(SUFFIXES), st.sampled_from(SUFFIXES))
@settings(max_examples=60, deadline=None)
def test_additive_join_is_commutative(tmp_path_factory, s1, s2):
    """`a + b` is flagged exactly when `b + a` is, for every unit pair."""
    def flagged(first, second):
        tmp = tmp_path_factory.mktemp("join")
        findings = unit_findings(tmp, {
            "sim/x.py": (f"def f(a_{first}, b_{second}):\n"
                         f"    return a_{first} + b_{second}\n"),
        })
        return sorted({f.code for f in findings})
    assert flagged(s1, s2) == flagged(s2, s1)


@given(st.sampled_from(SUFFIXES), st.sampled_from(SUFFIXES))
@settings(max_examples=60, deadline=None)
def test_multiplicative_dims_commute(s1, s2):
    u, v = SUFFIX_UNITS[s1], SUFFIX_UNITS[s2]
    assert (u * v).dims == (v * u).dims
    assert (u * v).scale == (v * u).scale


@given(st.integers(min_value=-4, max_value=4).map(lambda e: 3 * e))
def test_conversion_factor_round_trip(exp):
    factor = 10.0 ** exp
    if exp == 0:
        assert conversion_factor(factor) is None
    else:
        assert conversion_factor(factor) == factor
        # Scaling a value by f and back restores the unit exactly.
        unit = SUFFIX_UNITS["s"]
        assert unit.rescaled(factor).rescaled(1.0 / factor) \
            .same_scale(unit)


@given(st.integers(min_value=1, max_value=9),
       st.integers(min_value=-6, max_value=6))
def test_conversion_factor_rejects_coefficients(mantissa, exp):
    value = mantissa * 10.0 ** exp
    factor = conversion_factor(value)
    if mantissa != 1 or exp == 0 or exp % 3 != 0:
        assert factor is None
    else:
        assert factor == value


def test_name_unit_reads_suffix_and_conventions():
    assert name_unit("wake_delay_us").same_scale(
        SUFFIX_UNITS["s"].rescaled(1e6))
    assert name_unit("freq").same_dims(SUFFIX_UNITS["ghz"])
    assert name_unit("counter") is None


# ----------------------------------------------------------------------
# RL101-RL104 on synthetic shapes
# ----------------------------------------------------------------------
def test_rl101_cross_dimension_addition(tmp_path):
    findings = unit_findings(tmp_path, {
        "sim/x.py": ("def f(t_s, f_ghz):\n"
                     "    return t_s + f_ghz\n"),
    })
    assert "RL101" in {f.code for f in findings}


def test_rl102_magnitude_mismatch_and_conversion(tmp_path):
    dirty = unit_findings(tmp_path, {
        "sim/x.py": ("def f(a_s, b_us):\n"
                     "    return a_s + b_us\n"),
    })
    assert "RL102" in {f.code for f in dirty}
    clean_dir = tmp_path / "clean"
    clean = unit_findings(clean_dir, {
        "sim/y.py": ("def f(a_s, b_us):\n"
                     "    return a_s + b_us / 1e6\n"),
    })
    assert clean == []


def test_rl103_cross_module_argument_mismatch(tmp_path):
    findings = unit_findings(tmp_path, {
        "cpu/a.py": "def set_latency(wake_s):\n    return wake_s\n",
        "cpu/b.py": ("from repro.cpu.a import set_latency\n"
                     "def caller(wake_us):\n"
                     "    return set_latency(wake_us)\n"),
    })
    assert "RL103" in {f.code for f in findings}


def test_rl104_assignment_contradiction(tmp_path):
    findings = unit_findings(tmp_path, {
        "cpu/x.py": ("def f(work, freq):\n"
                     "    bad_s = work * freq\n"
                     "    return bad_s\n"),
    })
    assert "RL104" in {f.code for f in findings}
    clean_dir = tmp_path / "clean"
    clean = unit_findings(clean_dir, {
        "cpu/y.py": ("def f(work, freq):\n"
                     "    good_s = work / freq\n"
                     "    return good_s\n"),
    })
    assert clean == []


def test_class_attribute_units_propagate(tmp_path):
    findings = unit_findings(tmp_path, {
        "cpu/x.py": (
            "class Core:\n"
            "    def __init__(self, wake_us):\n"
            "        self.wake = wake_us\n"
            "    def deadline(self, now_s):\n"
            "        return now_s + self.wake\n"),
    })
    # self.wake learned as microseconds in __init__, so adding it to
    # seconds in another method is a magnitude mismatch.
    assert "RL102" in {f.code for f in findings}


def test_remaining_suffix_discipline(tmp_path):
    """Regression for the cross-module `remaining` rename: the name is
    seconds in core/cstates but giga-cycles in cpu/core, so only the
    suffixed forms type-check; the analyzer catches a misuse."""
    clean = unit_findings(tmp_path, {
        "cpu/core.py": ("def completion(work, freq):\n"
                        "    remaining_gcycles = work\n"
                        "    return remaining_gcycles / freq\n"),
        "core/sched.py": ("def slack(deadline, now_s):\n"
                          "    remaining_s = deadline - now_s\n"
                          "    return remaining_s\n"),
    })
    assert clean == []
    dirty = unit_findings(tmp_path, {
        "cpu/core.py": ("def completion(work, freq):\n"
                        "    remaining_s = work\n"
                        "    return remaining_s / freq\n"),
    })
    assert "RL104" in {f.code for f in dirty}


# ----------------------------------------------------------------------
# RL110-RL113 on synthetic shapes
# ----------------------------------------------------------------------
def test_rl110_wall_clock_taint_through_call_chain(tmp_path):
    findings = flow_findings(tmp_path, {
        "harness/clock.py": ("import time\n"
                             "def read_clock():\n"
                             "    return time.time()\n"),
        "sim/engine.py": ("from repro.harness.clock import read_clock\n"
                          "def step():\n"
                          "    return read_clock()\n"),
    })
    tainted = [f for f in findings if f.code == "RL110"]
    assert tainted and any("sim" in f.path for f in tainted)


def test_rl111_shared_stream_across_modules(tmp_path):
    findings = flow_findings(tmp_path, {
        "sim/a.py": ("def setup(streams):\n"
                     "    return streams.get('arrivals')\n"),
        "harness/b.py": ("def measure(streams):\n"
                         "    return streams.get('arrivals')\n"),
    })
    assert "RL111" in {f.code for f in findings}


def test_rl111_spawned_registry_is_independent(tmp_path):
    """Regression for the Figure 3 lineage fix: requesting the same
    stream names from a spawn()-ed child registry derives different
    seeds, so the aliasing finding must not fire."""
    findings = flow_findings(tmp_path, {
        "sim/a.py": ("def setup(streams):\n"
                     "    return streams.get('arrivals')\n"),
        "harness/b.py": ("def measure(parent):\n"
                         "    streams = parent.spawn('fig3-measured')\n"
                         "    return streams.get('arrivals')\n"),
    })
    assert "RL111" not in {f.code for f in findings}


def test_rl112_draw_inside_set_iteration(tmp_path):
    findings = flow_findings(tmp_path, {
        "sim/x.py": ("def assign(rng, cores):\n"
                     "    for core in set(cores):\n"
                     "        core.bias = rng.random()\n"),
    })
    assert "RL112" in {f.code for f in findings}


def test_rl113_forking_api_on_batched_stream(tmp_path):
    findings = flow_findings(tmp_path, {
        "sim/x.py": ("def setup(streams):\n"
                     "    arrivals = streams.get_batched('arrivals')\n"
                     "    return arrivals.randrange(10)\n"),
    })
    assert "RL113" in {f.code for f in findings}


# ----------------------------------------------------------------------
# Acceptance: the shipped tree analyzes clean, inside the CI budget
# ----------------------------------------------------------------------
def test_repo_tree_program_analyses_clean_within_budget():
    started = time.perf_counter()  # reprolint: disable=RL001 - test-only budget guard, measures the analyzer itself
    project = Project.load([REPO_SRC])
    findings = UnitAnalysis(project).run()
    findings += FlowAnalysis(project, CallGraph(project)).run()
    elapsed_s = time.perf_counter() - started  # reprolint: disable=RL001 - test-only budget guard, measures the analyzer itself
    assert findings == [], "\n".join(f.format() for f in findings)
    assert elapsed_s < 10.0, (
        f"whole-program analysis took {elapsed_s:.2f}s; "
        f"the CI budget is 10s")
