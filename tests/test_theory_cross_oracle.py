"""Cross-oracle property suite + regressions for the oracle bugfixes.

Three oracles over the same instances: YDS (offline optimal), OA and
AVR (online).  The invariants that must hold on *every* feasible
instance: both online schedules complete all work by its deadline, and
neither beats the offline optimum on energy.  The regression tests pin
the two bugs this arena promotion surfaced: OA silently dropping the
work of a tight-deadline arrival (infinite-density staircase group),
and AVR/ProblemInstance blowing up on degenerate windows.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.theory.avr import avr_energy, avr_schedule, avr_speed_profile
from repro.theory.instances import random_instance
from repro.theory.model import Job, ProblemInstance
from repro.theory.oa import oa_schedule
from repro.theory.yds import yds_energy

ALPHA = 3.0


# ----------------------------------------------------------------------
# Regression: OA dropped the work of infinite-density groups
# ----------------------------------------------------------------------
def test_oa_completes_late_tight_deadline_arrival():
    """A job whose deadline is within tolerance of its own arrival hits
    the infinite-density branch of ``_staircase_plan``; before the fix
    its executed segment had zero width and the work vanished from the
    schedule."""
    instance = ProblemInstance([
        Job(1, 0.0, 10.0, 4.0),
        Job(2, 5.0, 5.0 + 1e-13, 1.0),  # due the instant it arrives
    ])
    schedule = oa_schedule(instance)
    done = schedule.work_by_job()
    assert done[2] == pytest.approx(1.0, rel=1e-6)
    assert sum(done.values()) == pytest.approx(instance.total_work, rel=1e-6)
    schedule.check_feasible(instance)
    assert math.isfinite(schedule.energy(ALPHA))


def test_oa_inf_group_does_not_drag_staircase_backwards():
    """The group after an at/behind-start deadline must plan from the
    current start, not from the stale deadline --- otherwise its horizon
    inflates and its speed drops below feasibility."""
    instance = ProblemInstance([
        Job(1, 0.0, 10.0, 4.0),
        Job(2, 5.0, 5.0 + 1e-13, 1.0),
        Job(3, 5.0, 6.0, 2.0),  # needs density 2.0 from t=5, not less
    ])
    schedule = oa_schedule(instance)
    schedule.check_feasible(instance)
    assert sum(schedule.work_by_job().values()) == pytest.approx(
        instance.total_work, rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=10))
def test_oa_completes_all_work_under_tight_arrivals(seed, n):
    """Random instance plus one due-now arrival: no work may be lost."""
    rng = random.Random(seed)
    base = random_instance(n, rng)
    t = max(j.arrival for j in base.jobs)
    jobs = list(base.jobs) + [Job(n + 1, t, t + 1e-13,
                                  rng.uniform(0.5, 2.0))]
    instance = ProblemInstance(jobs)
    done = oa_schedule(instance).work_by_job()
    for job in instance.jobs:
        assert done.get(job.job_id, 0.0) == pytest.approx(job.work, rel=1e-6)


# ----------------------------------------------------------------------
# Regression: degenerate windows in AVR / ProblemInstance
# ----------------------------------------------------------------------
def _forged_job(job_id: int, arrival: float, deadline: float,
                work: float) -> Job:
    """A Job built past ``__post_init__`` validation, standing in for
    deserialized/corrupt inputs."""
    job = object.__new__(Job)
    object.__setattr__(job, "job_id", job_id)
    object.__setattr__(job, "arrival", arrival)
    object.__setattr__(job, "deadline", deadline)
    object.__setattr__(job, "work", work)
    return job


def test_job_rejects_zero_width_window():
    with pytest.raises(ValueError, match="deadline"):
        Job(1, 5.0, 5.0, 1.0)


def test_instance_rejects_forged_zero_width_window():
    """Before the fix this only surfaced later, as a ZeroDivisionError
    inside ``avr_speed_profile`` (``j.density`` with ``d == a``)."""
    jobs = [Job(1, 0.0, 10.0, 2.0), _forged_job(2, 5.0, 5.0, 1.0)]
    with pytest.raises(ValueError, match="zero-width window"):
        ProblemInstance(jobs)


def test_avr_live_predicate_excludes_point_deadline_jobs():
    """A sub-tolerance window satisfies both tolerance-padded endpoint
    tests for slots it cannot occupy; the guard keeps its near-infinite
    density out of the accumulator."""
    instance = ProblemInstance([
        Job(1, 0.0, 10.0, 5.0),          # density 0.5 over [0, 10]
        Job(2, 5.0, 5.0 + 1e-13, 1.0),   # point-deadline, density 1e13
    ])
    profile = avr_speed_profile(instance)
    assert profile, "profile must cover the wide job"
    for _start, _end, speed in profile:
        assert speed == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Cross-oracle energy and feasibility invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=12))
def test_oa_feasible_and_no_cheaper_than_yds(seed, n):
    instance = random_instance(n, random.Random(seed))
    schedule = oa_schedule(instance)
    schedule.check_feasible(instance)
    assert schedule.energy(ALPHA) >= yds_energy(instance, ALPHA) * (1 - 1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=12))
def test_avr_feasible_and_no_cheaper_than_yds(seed, n):
    instance = random_instance(n, random.Random(seed))
    schedule = avr_schedule(instance)
    schedule.check_feasible(instance)
    assert avr_energy(instance, ALPHA) >= \
        yds_energy(instance, ALPHA) * (1 - 1e-9)
