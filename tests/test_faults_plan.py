"""Fault plans: validation, serialization, merging, enable contract."""

import pytest

from repro.faults.plan import (
    FAULTS_ENV, BurstSpec, DegradationPolicy, FaultPlan, MsrFaultSpec,
    NodeCrashSpec, PartitionSpec, ReplicaLagSpec, SkewSpec, StallSpec,
    ThrottleSpec, plan_fingerprint, resolve_fault_plan,
)
from repro.faults.scenarios import (
    FLEET_SCENARIOS, SCENARIOS, fleet_scenario_names, scenario_named,
    scenario_names,
)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_windows_must_be_nonnegative_and_nonempty():
    with pytest.raises(ValueError):
        ThrottleSpec(-0.1, 1.0)
    with pytest.raises(ValueError):
        BurstSpec(1.0, 1.0)
    with pytest.raises(ValueError):
        SkewSpec(2.0, 1.0)


def test_msr_spec_validation():
    with pytest.raises(ValueError):
        MsrFaultSpec(0.0, 1.0, mode="explode")
    with pytest.raises(ValueError):
        MsrFaultSpec(0.0, 1.0, probability=0.0)
    with pytest.raises(ValueError):
        MsrFaultSpec(0.0, 1.0, probability=1.5)
    MsrFaultSpec(0.0, 1.0, mode="stuck", probability=1.0)  # ok


def test_stall_spec_validation():
    with pytest.raises(ValueError):
        StallSpec(at_s=-1.0)
    with pytest.raises(ValueError):
        StallSpec(at_s=0.5, duration_s=0.0)
    StallSpec(at_s=0.5, duration_s=None)  # permanent is fine


def test_throttle_and_skew_magnitudes():
    with pytest.raises(ValueError):
        ThrottleSpec(0.0, 1.0, ceiling_ghz=0.0)
    with pytest.raises(ValueError):
        SkewSpec(0.0, 1.0, factor=0.0)
    with pytest.raises(ValueError):
        BurstSpec(0.0, 1.0, multiplier=-2.0)


def test_degradation_policy_validation():
    with pytest.raises(ValueError):
        DegradationPolicy(msr_retry_limit=-1)
    with pytest.raises(ValueError):
        DegradationPolicy(retry_backoff_s=0.0)
    with pytest.raises(ValueError):
        DegradationPolicy(watchdog_interval_s=0.0)
    with pytest.raises(ValueError):
        DegradationPolicy(shed_queue_depth=0)
    with pytest.raises(ValueError):
        # Hysteresis: exit rate must sit strictly below the enter rate.
        DegradationPolicy(panic_enter_miss_rate=0.1,
                          panic_exit_miss_rate=0.1)
    with pytest.raises(ValueError):
        DegradationPolicy(panic_window=0)


def test_default_policy_is_inert():
    assert not DegradationPolicy().any_enabled
    assert FaultPlan().is_empty
    assert DegradationPolicy(shed_queue_depth=4).any_enabled
    assert not FaultPlan(degradation=DegradationPolicy()).degradation \
        .any_enabled


# ----------------------------------------------------------------------
# Serialization and fingerprints
# ----------------------------------------------------------------------
def _sample_plan() -> FaultPlan:
    return FaultPlan(
        msr_faults=(MsrFaultSpec(0.1, 2.0, mode="stuck", workers=(1,),
                                 probability=0.5),),
        throttles=(ThrottleSpec(0.2, 1.0, ceiling_ghz=1.6, workers=(0, 2)),),
        stalls=(StallSpec(0.3, duration_s=0.1, workers=(1,)),),
        bursts=(BurstSpec(0.4, 0.9, multiplier=2.5),),
        skews=(SkewSpec(0.5, 0.8, factor=0.7),),
        degradation=DegradationPolicy(msr_retry_limit=2,
                                      shed_queue_depth=8,
                                      panic_enter_miss_rate=0.3),
        name="kitchen-sink")


def test_json_roundtrip_preserves_plan():
    plan = _sample_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_roundtrip_restores_tuples():
    plan = FaultPlan.from_json(_sample_plan().to_json())
    assert isinstance(plan.msr_faults[0].workers, tuple)
    assert isinstance(plan.throttles, tuple)


def test_fingerprint_stable_and_content_sensitive():
    plan = _sample_plan()
    assert plan.fingerprint() == _sample_plan().fingerprint()
    other = FaultPlan(bursts=(BurstSpec(0.4, 0.9, multiplier=2.5),))
    assert plan.fingerprint() != other.fingerprint()
    # The fingerprint survives a serialization round trip.
    assert FaultPlan.from_json(plan.to_json()).fingerprint() \
        == plan.fingerprint()


def test_without_degradation_keeps_faults_disarms_policy():
    bare = _sample_plan().without_degradation()
    assert bare.msr_faults == _sample_plan().msr_faults
    assert not bare.degradation.any_enabled
    assert bare.name == "kitchen-sink-bare"


def test_merged_with_unions_faults():
    merged = scenario_named("burst").merged_with(scenario_named("brownout"))
    assert len(merged.bursts) == 1
    assert len(merged.throttles) == 1
    assert merged.name == "burst+brownout"


def test_merged_with_right_side_wins_armed_knobs():
    left = FaultPlan(degradation=DegradationPolicy(shed_queue_depth=4,
                                                   msr_retry_limit=1))
    right = FaultPlan(degradation=DegradationPolicy(shed_queue_depth=9))
    merged = left.merged_with(right).degradation
    assert merged.shed_queue_depth == 9       # right arms it -> right wins
    assert merged.msr_retry_limit == 1        # right leaves it off -> left


# ----------------------------------------------------------------------
# Enable contract (config > env > off)
# ----------------------------------------------------------------------
def test_resolve_off_by_default(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    assert resolve_fault_plan(None) is None
    assert plan_fingerprint(None) is None


def test_resolve_env_scenario(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "burst")
    plan = resolve_fault_plan(None)
    assert plan is not None and plan.name == "burst"
    assert plan_fingerprint(None) == plan.fingerprint()


def test_explicit_plan_overrides_env(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "burst")
    plan = resolve_fault_plan(scenario_named("brownout"))
    assert plan is not None and plan.name == "brownout"


def test_empty_plan_resolves_to_none(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "burst")
    # An explicit empty plan is inert --- not a fall-through to the env.
    assert resolve_fault_plan(FaultPlan()) is None


def test_resolve_scenario_by_name_and_composition(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    assert resolve_fault_plan("dying-core").name == "dying-core"
    composed = resolve_fault_plan("burst+brownout")
    assert composed.bursts and composed.throttles


def test_resolve_json_path(tmp_path, monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    path = tmp_path / "plan.json"
    path.write_text(_sample_plan().to_json(), encoding="utf-8")
    assert resolve_fault_plan(str(path)) == _sample_plan()


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown fault scenario"):
        scenario_named("meteor-strike")
    with pytest.raises(ValueError):
        scenario_named("  +  ")


def test_scenario_library_contents():
    assert set(scenario_names()) == set(SCENARIOS)
    for name in scenario_names():
        plan = scenario_named(name)
        assert plan.name == name
        assert not plan.is_empty


# ----------------------------------------------------------------------
# Fleet-scope specs (PR 9)
# ----------------------------------------------------------------------
def _fleet_plan() -> FaultPlan:
    return FaultPlan(
        node_crashes=(NodeCrashSpec(at_s=1.5, nodes=(0, 2)),
                      NodeCrashSpec(at_s=2.0)),
        partitions=(PartitionSpec(1.0, 4.0, shards=(1,)),),
        replica_lags=(ReplicaLagSpec(0.5, 6.0, extra_lag_s=0.25,
                                     nodes=(3,)),),
        name="fleet-sink")


def test_fleet_spec_validation():
    with pytest.raises(ValueError):
        NodeCrashSpec(at_s=-0.1)
    with pytest.raises(ValueError):
        PartitionSpec(2.0, 2.0)
    with pytest.raises(ValueError):
        ReplicaLagSpec(0.0, 1.0, extra_lag_s=0.0)
    NodeCrashSpec(at_s=0.0)  # a crash at t=0 is legal


def test_fleet_plan_json_roundtrip():
    plan = _fleet_plan()
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan
    # JSON turns the id tuples into lists; from_dict restores them.
    assert isinstance(restored.node_crashes[0].nodes, tuple)
    assert isinstance(restored.partitions[0].shards, tuple)
    assert isinstance(restored.replica_lags[0].nodes, tuple)
    assert restored.fingerprint() == plan.fingerprint()


def test_fleet_faults_show_in_the_tier_predicates():
    plan = _fleet_plan()
    assert plan.has_fleet_faults and not plan.has_server_faults
    assert not plan.is_empty
    server = scenario_named("brownout")
    assert server.has_server_faults and not server.has_fleet_faults
    # Bursts are load-side: they run at either tier.
    burst_only = scenario_named("burst").without_degradation()
    assert not burst_only.has_fleet_faults
    assert not burst_only.has_server_faults


def test_merged_with_unions_fleet_faults():
    merged = _fleet_plan().merged_with(scenario_named("shard-crash"))
    assert len(merged.node_crashes) == 3
    assert len(merged.partitions) == 1
    assert len(merged.replica_lags) == 1
    assert merged.has_fleet_faults
    assert merged.name == "fleet-sink+shard-crash"


def test_fleet_scenario_registry():
    assert set(fleet_scenario_names()) == set(FLEET_SCENARIOS)
    # Fleet scenarios stay out of the single-server registry (property
    # tests iterate scenario_names() against plain cells).
    assert not set(FLEET_SCENARIOS) & set(SCENARIOS)
    for name in fleet_scenario_names():
        plan = scenario_named(name)
        assert plan.name == name
        assert plan.has_fleet_faults
        assert not plan.has_server_faults


def test_shard_crash_scenario_targets_every_primary():
    plan = scenario_named("shard-crash")
    (crash,) = plan.node_crashes
    assert crash.nodes == ()  # empty tuple = the primary of every shard
    assert crash.at_s == 1.5
