"""ClusterRouter: sharding, replica reads, stale-read bounces."""

import pytest

from repro.core.request import Request
from repro.core.workload import Workload
from repro.db.server import DatabaseServer, ServerConfig
from repro.fleet.node import Node, NodeState, PRIMARY, REPLICA
from repro.fleet.router import ClusterRouter, ShardState, read_only_types
from repro.sim.engine import Simulator

WORKLOAD = Workload("w", 0.050)


def make_node(sim, node_id, role=REPLICA, lag_s=0.05, start_parked=False):
    server = DatabaseServer(sim, ServerConfig(workers=1,
                                              request_handlers=1))
    return Node(sim, node_id, 0, role, server, parked_floor_watts=4.0,
                replication_lag_s=lag_s if role == REPLICA else 0.0,
                start_parked=start_parked)


def make_shard(sim, replicas=1, **kwargs):
    primary = make_node(sim, 0, role=PRIMARY)
    nodes = [make_node(sim, 1 + i, **kwargs) for i in range(replicas)]
    return ShardState(0, primary, nodes)


def request(sim, txn="Write"):
    return Request(WORKLOAD, txn, sim.now, 2.8e-3)


def test_read_only_types_per_family():
    assert read_only_types("tpcc") == {"OrderStatus", "StockLevel"}
    assert "TradeStatus" in read_only_types("tpce")
    assert read_only_types("ycsb-b") == {"Read", "Scan"}
    with pytest.raises(ValueError):
        read_only_types("tpch")


def test_writes_go_to_primary_and_advance_the_write_clock(sim):
    shard = make_shard(sim)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    target = router.route(request(sim, "Write"), key=0)
    assert target is shard.primary
    assert shard.last_write_s == 0.0
    assert router.decision_counts()["routed_writes"] == 1


def test_fresh_read_served_by_replica(sim):
    shard = make_shard(sim, lag_s=0.05)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    # No write ever happened: the replica cannot be stale.
    target = router.route(request(sim, "Read"), key=0)
    assert target is shard.replicas[0]
    assert router.replica_reads == 1
    assert router.stale_read_bounces == 0


def test_stale_read_bounces_to_primary(sim):
    shard = make_shard(sim, lag_s=0.05)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    router.route(request(sim, "Write"), key=0)
    sim.schedule(0.01, lambda: None)
    sim.run()  # 10 ms later: still inside the 50 ms apply lag
    target = router.route(request(sim, "Read"), key=0)
    assert target is shard.primary
    assert router.stale_read_bounces == 1
    assert shard.stale_read_bounces == 1
    sim.schedule(0.1, lambda: None)
    sim.run()  # beyond the lag: the replica caught up
    assert router.route(request(sim, "Read"), key=0) \
        is shard.replicas[0]
    assert router.replica_reads == 1


def test_read_falls_back_to_primary_without_active_replicas(sim):
    shard = make_shard(sim, start_parked=True)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    target = router.route(request(sim, "Read"), key=0)
    assert target is shard.primary
    assert router.replica_fallbacks == 1


def test_round_robin_skips_inactive_replicas(sim):
    shard = make_shard(sim, replicas=3, lag_s=0.0)
    shard.replicas[1]._transition(NodeState.PARKED)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    served = [router.route(request(sim, "Read"), key=0).node_id
              for _ in range(4)]
    assert served == [1, 3, 1, 3]  # node 2 is parked


def test_key_sharding_is_modulo(sim):
    shards = [make_shard(sim), make_shard(sim)]
    shards[1].shard_id = 1
    router = ClusterRouter(sim, shards, frozenset())
    router.route(request(sim), key=5)
    assert shards[1].offered == 1 and shards[0].offered == 0
    router.route(request(sim), key=4)
    assert shards[0].offered == 1


def test_requests_actually_execute_on_the_target(sim):
    shard = make_shard(sim)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    write = request(sim, "Write")
    read = request(sim, "Read")
    router.route(write, key=0)
    router.route(read, key=0)  # stale (lag 50 ms) -> primary too
    sim.run()
    assert write.finish_time is not None
    assert read.finish_time is not None
    assert shard.primary.server.submitted == 2
    assert shard.replicas[0].server.submitted == 0


def test_router_needs_a_shard(sim):
    with pytest.raises(ValueError):
        ClusterRouter(sim, [], frozenset())
