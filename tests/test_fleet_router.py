"""ClusterRouter: sharding, replica reads, stale-read bounces, and the
self-healing machinery (typed no-active errors, circuit breakers,
retry-with-backoff, hedged reads) armed under chaos plans."""

import pytest

from repro.core.request import Request
from repro.core.workload import Workload
from repro.db.server import DatabaseServer, ServerConfig
from repro.fleet.node import Node, NodeState, PRIMARY, REPLICA
from repro.fleet.router import (
    BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN, CircuitBreaker,
    ClusterRouter, NoActiveNodeError, RouterPolicy, ShardState,
    read_only_types,
)
from repro.sim.engine import Simulator

WORKLOAD = Workload("w", 0.050)


def make_node(sim, node_id, role=REPLICA, lag_s=0.05, start_parked=False):
    server = DatabaseServer(sim, ServerConfig(workers=1,
                                              request_handlers=1))
    return Node(sim, node_id, 0, role, server, parked_floor_watts=4.0,
                replication_lag_s=lag_s if role == REPLICA else 0.0,
                start_parked=start_parked)


def make_shard(sim, replicas=1, **kwargs):
    primary = make_node(sim, 0, role=PRIMARY)
    nodes = [make_node(sim, 1 + i, **kwargs) for i in range(replicas)]
    return ShardState(0, primary, nodes)


def request(sim, txn="Write"):
    return Request(WORKLOAD, txn, sim.now, 2.8e-3)


def test_read_only_types_per_family():
    assert read_only_types("tpcc") == {"OrderStatus", "StockLevel"}
    assert "TradeStatus" in read_only_types("tpce")
    assert read_only_types("ycsb-b") == {"Read", "Scan"}
    with pytest.raises(ValueError):
        read_only_types("tpch")


def test_writes_go_to_primary_and_advance_the_write_clock(sim):
    shard = make_shard(sim)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    target = router.route(request(sim, "Write"), key=0)
    assert target is shard.primary
    assert shard.last_write_s == 0.0
    assert router.decision_counts()["routed_writes"] == 1


def test_fresh_read_served_by_replica(sim):
    shard = make_shard(sim, lag_s=0.05)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    # No write ever happened: the replica cannot be stale.
    target = router.route(request(sim, "Read"), key=0)
    assert target is shard.replicas[0]
    assert router.replica_reads == 1
    assert router.stale_read_bounces == 0


def test_stale_read_bounces_to_primary(sim):
    shard = make_shard(sim, lag_s=0.05)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    router.route(request(sim, "Write"), key=0)
    sim.schedule(0.01, lambda: None)
    sim.run()  # 10 ms later: still inside the 50 ms apply lag
    target = router.route(request(sim, "Read"), key=0)
    assert target is shard.primary
    assert router.stale_read_bounces == 1
    assert shard.stale_read_bounces == 1
    sim.schedule(0.1, lambda: None)
    sim.run()  # beyond the lag: the replica caught up
    assert router.route(request(sim, "Read"), key=0) \
        is shard.replicas[0]
    assert router.replica_reads == 1


def test_read_falls_back_to_primary_without_active_replicas(sim):
    shard = make_shard(sim, start_parked=True)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    target = router.route(request(sim, "Read"), key=0)
    assert target is shard.primary
    assert router.replica_fallbacks == 1


def test_round_robin_skips_inactive_replicas(sim):
    shard = make_shard(sim, replicas=3, lag_s=0.0)
    shard.replicas[1]._transition(NodeState.PARKED)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    served = [router.route(request(sim, "Read"), key=0).node_id
              for _ in range(4)]
    assert served == [1, 3, 1, 3]  # node 2 is parked


def test_key_sharding_is_modulo(sim):
    shards = [make_shard(sim), make_shard(sim)]
    shards[1].shard_id = 1
    router = ClusterRouter(sim, shards, frozenset())
    router.route(request(sim), key=5)
    assert shards[1].offered == 1 and shards[0].offered == 0
    router.route(request(sim), key=4)
    assert shards[0].offered == 1


def test_requests_actually_execute_on_the_target(sim):
    shard = make_shard(sim)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    write = request(sim, "Write")
    read = request(sim, "Read")
    router.route(write, key=0)
    router.route(read, key=0)  # stale (lag 50 ms) -> primary too
    sim.run()
    assert write.finish_time is not None
    assert read.finish_time is not None
    assert shard.primary.server.submitted == 2
    assert shard.replicas[0].server.submitted == 0


def test_router_needs_a_shard(sim):
    with pytest.raises(ValueError):
        ClusterRouter(sim, [], frozenset())


# ----------------------------------------------------------------------
# Typed no-active errors (unarmed routers)
# ----------------------------------------------------------------------
def test_unarmed_router_raises_typed_error(sim):
    shard = make_shard(sim, start_parked=True)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    shard.primary.crash()
    with pytest.raises(NoActiveNodeError) as excinfo:
        router.route(request(sim, "Write"), key=0)
    assert excinfo.value.shard_id == 0
    assert excinfo.value.kind == "write"
    with pytest.raises(NoActiveNodeError) as excinfo:
        router.route(request(sim, "Read"), key=0)
    assert excinfo.value.kind == "read"


def test_decision_counts_grow_only_when_armed(sim):
    shard = make_shard(sim)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    assert set(router.decision_counts()) == {
        "routed_writes", "routed_reads", "replica_reads",
        "stale_read_bounces", "replica_fallbacks"}
    router.arm_self_healing(RouterPolicy(), lambda r, s: None)
    counts = router.decision_counts()
    assert {"breaker_trips", "breaker_skips", "hedged_reads",
            "retries", "shed_no_active",
            "stale_reads_served"} <= set(counts)


# ----------------------------------------------------------------------
# CircuitBreaker state machine
# ----------------------------------------------------------------------
def test_breaker_opens_at_the_failure_threshold():
    breaker = CircuitBreaker(threshold=3, reset_s=0.5)
    assert breaker.record_failure(0.0) is False
    assert breaker.record_failure(0.0) is False
    assert breaker.record_failure(0.0) is True  # the trip
    assert breaker.state == BREAKER_OPEN
    assert breaker.allows(0.4) is False  # still inside reset_s


def test_breaker_half_open_probe_then_close():
    breaker = CircuitBreaker(threshold=1, reset_s=0.5)
    breaker.record_failure(0.0)
    assert breaker.allows(0.5) is True  # the probe
    assert breaker.state == BREAKER_HALF_OPEN
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED


def test_breaker_half_open_failure_reopens_and_restarts_the_clock():
    breaker = CircuitBreaker(threshold=1, reset_s=0.5)
    breaker.record_failure(0.0)
    breaker.allows(0.5)  # -> half-open
    assert breaker.record_failure(0.6) is True  # probe failed
    assert breaker.state == BREAKER_OPEN
    assert breaker.allows(1.0) is False  # reset clock restarted at 0.6
    assert breaker.allows(1.1) is True


def test_success_resets_the_consecutive_failure_count():
    breaker = CircuitBreaker(threshold=3, reset_s=0.5)
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    breaker.record_success()
    assert breaker.record_failure(0.0) is False  # count restarted
    assert breaker.state == BREAKER_CLOSED


# ----------------------------------------------------------------------
# Armed routing: retry, shed, breaker gating, hedged reads
# ----------------------------------------------------------------------
def arm(router, sheds, **overrides):
    policy = RouterPolicy(**overrides)
    router.arm_self_healing(policy,
                            lambda req, shard_id: sheds.append(
                                (req, shard_id)))
    return policy


def test_armed_router_retries_until_the_shard_recovers(sim):
    shard = make_shard(sim, start_parked=True)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    sheds = []
    arm(router, sheds, retry_backoff_s=0.05, retry_limit=3)
    shard.primary.crash()
    write = request(sim, "Write")
    assert router.route(write, key=0) is None  # deferred, not raised
    assert router.retries == 1
    # The primary comes back before the first retry fires.
    sim.schedule_at(0.01,
                    lambda: shard.primary._transition(NodeState.ACTIVE))
    sim.run(until=1.0)
    assert shard.primary.server.submitted == 1
    assert sheds == []
    assert router.shed_no_active == 0


def test_armed_router_sheds_after_the_retry_budget(sim):
    shard = make_shard(sim, start_parked=True)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    sheds = []
    arm(router, sheds, retry_backoff_s=0.05, retry_limit=3,
        breaker_failure_threshold=3)
    shard.primary.crash()
    write = request(sim, "Write")
    assert router.route(write, key=0) is None
    sim.run(until=5.0)
    # Backoff doubles per attempt: 0.05 + 0.1 + 0.2, then the shed.
    assert router.retries == 3
    assert sheds == [(write, 0)]
    assert router.shed_no_active == 1
    # The four consecutive write failures also tripped the primary's
    # breaker (threshold 3).
    assert router.breaker_trips == 1
    assert router.breaker_state(0) == BREAKER_OPEN


def test_flush_pending_retries_closes_the_books(sim):
    shard = make_shard(sim, start_parked=True)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    sheds = []
    arm(router, sheds, retry_backoff_s=0.05, retry_limit=3)
    shard.primary.crash()
    write = request(sim, "Write")
    router.route(write, key=0)
    # End of run arrives before the retry fires: the request must be
    # shed, never silently censored.
    assert router.flush_pending_retries() == 1
    assert sheds == [(write, 0)]
    assert router.shed_no_active == 1
    assert router.flush_pending_retries() == 0  # idempotent


def test_open_primary_breaker_serves_stale_reads_degraded(sim):
    shard = make_shard(sim, lag_s=0.05)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    arm(router, [], breaker_failure_threshold=1, breaker_reset_s=10.0)
    router.route(request(sim, "Write"), key=0)
    # Trip the primary's breaker while it stays nominally active.
    router._breakers[0].record_failure(sim.now)
    target = router.route(request(sim, "Read"), key=0)
    # Inside the apply lag the read is stale, but the bounce target is
    # breaker-gated: a stale answer on the replica beats no answer.
    assert target is shard.replicas[0]
    assert router.breaker_skips == 1
    assert router.stale_reads_served == 1
    assert router.stale_read_bounces == 0


def test_hedged_reads_take_the_shorter_queue(sim):
    shard = make_shard(sim, replicas=2, lag_s=0.0)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    arm(router, [], hedged_reads=True)
    # Pile queued work onto replica 1 (the round-robin's first pick).
    for _ in range(4):
        shard.replicas[0].server.submit(request(sim, "Read"))
    target = router.route(request(sim, "Read"), key=0)
    assert target is shard.replicas[1]
    assert router.hedged_read_switches == 1


def test_hedging_ties_keep_the_round_robin_pick_and_balance_load(sim):
    shard = make_shard(sim, replicas=2, lag_s=0.0)
    router = ClusterRouter(sim, [shard], frozenset({"Read"}))
    arm(router, [], hedged_reads=True)
    # Empty queues tie: the round-robin pick stands, no switch.
    assert router.route(request(sim, "Read"), key=0) \
        is shard.replicas[0]
    assert router.hedged_read_switches == 0
    # From here queues diverge and the hedge keeps them level.
    served = [router.route(request(sim, "Read"), key=0).node_id
              for _ in range(5)]
    assert sorted(served) == [1, 1, 2, 2, 2]
    queues = [r.server.total_queue_length() for r in shard.replicas]
    assert abs(queues[0] - queues[1]) <= 1
