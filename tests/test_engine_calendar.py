"""Calendar event queue vs the retained heapq oracle.

The calendar queue must be observationally identical to the heap
engine: same fire order, same clock, same accounting, under random
interleavings of schedule / cancel / reschedule / run(until) / step.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import (
    CalendarEventQueue, HeapEventQueue, SimulationError, Simulator,
)


class Driver:
    """Applies one operation trace to one simulator, logging everything
    observable: fire order, clock at fire time, peeks, final state."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.log = []
        self.handles = []

    def _fire(self, tag, chain_delay, chain_depth):
        self.log.append(("fire", tag, self.sim.now))
        if chain_depth > 0:
            self._schedule(f"{tag}c", chain_delay, 0,
                           chain_delay, chain_depth - 1)

    def _schedule(self, tag, delay, priority, chain_delay, chain_depth):
        event = self.sim.schedule(
            delay, lambda: self._fire(tag, chain_delay, chain_depth),
            priority=priority)
        self.handles.append(event)

    def apply(self, ops):
        for index, op in enumerate(ops):
            kind = op[0]
            if kind == "schedule":
                _, delay, priority, chain_delay, chain_depth = op
                self._schedule(str(index), delay, priority,
                               chain_delay, chain_depth)
            elif kind == "cancel":
                if self.handles:
                    self.handles[op[1] % len(self.handles)].cancel()
            elif kind == "reschedule":
                # The POLARIS core pattern: cancel + schedule later.
                if self.handles:
                    victim = self.handles[op[1] % len(self.handles)]
                    victim.cancel()
                    self._schedule(f"r{index}", op[2], 0, 0.0, 0)
            elif kind == "run_until":
                self.sim.run(until=self.sim.now + op[1])
                self.log.append(("ran", self.sim.now))
            elif kind == "step":
                self.log.append(("step", self.sim.step(), self.sim.now))
            elif kind == "peek":
                self.log.append(("peek", self.sim.peek_time()))
        self.sim.run()
        self.log.append(("end", self.sim.now, self.sim.events_processed,
                         self.sim.pending_count(), self.sim.heap_size()))
        return self.log


DELAYS = st.floats(min_value=0.0, max_value=5e-3, allow_nan=False,
                   allow_infinity=False)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), DELAYS,
                  st.integers(min_value=-5, max_value=5), DELAYS,
                  st.integers(min_value=0, max_value=3)),
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        st.tuples(st.just("reschedule"), st.integers(min_value=0), DELAYS),
        st.tuples(st.just("run_until"), DELAYS),
        st.tuples(st.just("step")),
        st.tuples(st.just("peek")),
    ),
    min_size=1, max_size=60)


@settings(max_examples=80, deadline=None)
@given(ops=OPS, width=st.sampled_from([1e-6, 97e-6, 250e-6, 1.0]))
def test_calendar_matches_heap_oracle(ops, width):
    calendar = Driver(Simulator(bucket_width_s=width)).apply(ops)
    heap = Driver(Simulator(queue="heap")).apply(ops)
    assert calendar == heap


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_calendar_sanitized_trace_is_clean(ops):
    """Every random trace keeps the bucket invariants intact."""
    sim = Simulator(sanitize=True)
    Driver(sim).apply(ops)
    sim.sanitize_check()


def test_gap_schedule_lands_behind_parked_bucket():
    """run(until=...) can park the cursor on a far-future bucket; a
    subsequent schedule into the gap must still fire first (the
    re-shelve path in CalendarEventQueue._advance)."""
    for queue in ("calendar", "heap"):
        sim = Simulator(queue=queue)
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("far"))
        sim.run(until=3.0)  # peeks at the 5.0 bucket, pops nothing
        assert sim.now == 3.0
        sim.schedule_at(3.5, lambda: fired.append("gap-late"))
        sim.schedule_at(3.2, lambda: fired.append("gap-early"))
        sim.run()
        assert fired == ["gap-early", "gap-late", "far"]


def test_gap_schedule_keeps_invariants():
    sim = Simulator(sanitize=True)
    sim.schedule_at(5.0, lambda: None)
    sim.run(until=3.0)
    sim.schedule_at(3.5, lambda: None)
    sim.sanitize_check()
    sim.run()
    assert sim.now == 5.0
    assert sim.events_processed == 2


def test_compaction_equivalent_across_queues():
    logs = []
    for queue in ("calendar", "heap"):
        sim = Simulator(queue=queue)
        fired = []
        for i in range(400):
            event = sim.schedule(1.0 + (i * 31 % 97), lambda i=i: fired.append(i))
            if i % 4:
                event.cancel()
        sim.run()
        logs.append((fired, sim.events_processed, sim.heap_size()))
    assert logs[0] == logs[1]


def test_non_finite_time_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_at(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(float("nan"), lambda: None)


def test_unknown_queue_rejected():
    with pytest.raises(ValueError):
        Simulator(queue="splay")


def test_queue_kinds_exposed():
    assert Simulator()._queue.kind == "calendar"
    assert Simulator(queue="heap")._queue.kind == "heap"
    assert isinstance(Simulator()._queue, CalendarEventQueue)
    assert isinstance(Simulator(queue="heap")._queue, HeapEventQueue)


def test_zero_width_rejected():
    with pytest.raises(ValueError):
        CalendarEventQueue(0.0)
