"""repro.obs.trace: enable hook, track registry, recording, finalize."""

import pytest

from repro.obs.trace import (
    NULL_TRACER, NULL_TRACK, TRACE_ENV, Tracer, resolve_tracer,
    to_trace_us, trace_enabled,
)


# ----------------------------------------------------------------------
# Enable hook (the simsan contract)
# ----------------------------------------------------------------------
def test_trace_enabled_override_wins(monkeypatch):
    monkeypatch.setenv(TRACE_ENV, "1")
    assert trace_enabled(False) is False
    monkeypatch.delenv(TRACE_ENV)
    assert trace_enabled(True) is True


def test_trace_enabled_env_values(monkeypatch):
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv(TRACE_ENV, value)
        assert trace_enabled() is True
    for value in ("", "0", "false", "off", "banana"):
        monkeypatch.setenv(TRACE_ENV, value)
        assert trace_enabled() is False
    monkeypatch.delenv(TRACE_ENV)
    assert trace_enabled() is False


def test_resolve_tracer(monkeypatch):
    monkeypatch.delenv(TRACE_ENV, raising=False)
    assert resolve_tracer() is NULL_TRACER
    monkeypatch.setenv(TRACE_ENV, "1")
    resolved = resolve_tracer()
    assert resolved.enabled and resolved is not NULL_TRACER
    explicit = Tracer()
    assert resolve_tracer(explicit) is explicit


def test_to_trace_us_is_integer_microseconds():
    assert to_trace_us(0.0) == 0
    assert to_trace_us(1.5) == 1_500_000
    assert to_trace_us(1e-6) == 1
    assert isinstance(to_trace_us(0.123456), int)


# ----------------------------------------------------------------------
# Track registry
# ----------------------------------------------------------------------
def test_tracks_are_deduplicated_and_registration_ordered():
    tracer = Tracer()
    a = tracer.track("cpu", "core-0")
    b = tracer.track("cpu", "core-1")
    c = tracer.track("server", "worker-0")
    assert tracer.track("cpu", "core-0") is a
    assert (a.pid, a.tid) == (1, 1)
    assert (b.pid, b.tid) == (1, 2)
    assert (c.pid, c.tid) == (2, 1)
    assert tracer.tracks() == [a, b, c]


def test_disabled_tracer_returns_null_track_and_records_nothing():
    tracer = Tracer(enabled=False)
    track = tracer.track("cpu", "core-0")
    assert track is NULL_TRACK
    tracer.begin(track, "x", 0.0)
    tracer.end(track, 1.0)
    tracer.instant(track, "x", 0.5)
    tracer.counter(track, "c", 0.5, value=1.0)
    tracer.async_begin("txn", 1, "x", 0.0)
    tracer.async_end("txn", 1, "x", 1.0)
    assert len(tracer) == 0
    assert tracer.tracks() == []
    assert tracer.finalize(2.0) == 0


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def test_span_recording_and_stack():
    tracer = Tracer()
    track = tracer.track("server", "worker-0")
    tracer.begin(track, "exec:payment", 1.0, freq_ghz=2.8)
    tracer.end(track, 2.0, met_deadline=True)
    b, e = tracer.events
    assert (b.ph, b.name, b.ts_us) == ("B", "exec:payment", 1_000_000)
    assert b.args == {"freq_ghz": 2.8}
    assert (e.ph, e.name, e.ts_us) == ("E", "exec:payment", 2_000_000)


def test_async_ids_are_dense_and_run_local():
    """Trace async ids must not depend on process-global counters
    (Request ids keep counting across runs in one process); keys map to
    dense local ids in first-touch order."""
    tracer = Tracer()
    assert tracer.async_id(1000) == 1
    assert tracer.async_id(7) == 2
    assert tracer.async_id(1000) == 1
    fresh = Tracer()
    assert fresh.async_id(999999) == 1


def test_async_span_lifecycle():
    tracer = Tracer()
    tracer.async_begin("txn", "r1", "txn:payment", 0.0, worker=0)
    tracer.async_instant("txn", "r1", "txn:dispatch", 0.5)
    tracer.async_end("txn", "r1", "txn:payment", 1.0, met_deadline=True)
    phases = [e.ph for e in tracer.events]
    assert phases == ["b", "n", "e"]
    assert all(e.cat == "txn" and e.scope_id == 1 for e in tracer.events)


def test_finalize_closes_dangling_spans():
    tracer = Tracer()
    track = tracer.track("server", "worker-0")
    tracer.begin(track, "exec:a", 1.0)
    tracer.begin(track, "exec:b", 2.0)
    tracer.async_begin("txn", "r1", "txn:a", 0.5)
    closed = tracer.finalize(5.0)
    assert closed == 3
    tail = tracer.events[-3:]
    assert [e.ph for e in tail] == ["E", "E", "e"]
    assert all(e.ts_us == 5_000_000 for e in tail)
    assert all(e.args == {"truncated": True} for e in tail)
    # Idempotent: nothing left to close.
    assert tracer.finalize(6.0) == 0


def test_end_without_begin_still_records():
    tracer = Tracer()
    track = tracer.track("p", "t")
    tracer.end(track, 1.0)
    assert tracer.events[0].ph == "E"


def test_clear_resets_everything():
    tracer = Tracer()
    track = tracer.track("p", "t")
    tracer.begin(track, "x", 0.0)
    tracer.async_begin("c", 1, "y", 0.0)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.tracks() == []
    assert tracer.async_id("fresh") == 1
    assert tracer.finalize(1.0) == 0


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_same_recording_sequence_gives_identical_events():
    def record():
        tracer = Tracer()
        for i in range(3):
            track = tracer.track("cpu", f"core-{i}")
            tracer.instant(track, "pstate:transition", 0.1 * i,
                           old_ghz=1.2, new_ghz=2.8)
            tracer.counter(track, "freq_ghz", 0.1 * i, freq_ghz=2.8)
        return [(e.ph, e.ts_us, e.pid, e.tid, e.name, e.args)
                for e in tracer.events]

    assert record() == record()
