"""Named random streams: determinism, independence, batching."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import BatchedStream, RandomStreams, derive_seed


def test_same_seed_same_streams():
    a = RandomStreams(7).get("arrivals")
    b = RandomStreams(7).get("arrivals")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_differ():
    streams = RandomStreams(7)
    a = streams.get("arrivals")
    b = streams.get("service")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(7).get("x")
    b = RandomStreams(8).get("x")
    assert a.random() != b.random()


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.get("s") is streams.get("s")


def test_draw_order_isolation():
    """Consuming one stream must not perturb another."""
    streams_a = RandomStreams(3)
    streams_b = RandomStreams(3)
    # In A, interleave heavy use of "other" before sampling "target".
    other = streams_a.get("other")
    for _ in range(1000):
        other.random()
    target_a = [streams_a.get("target").random() for _ in range(5)]
    target_b = [streams_b.get("target").random() for _ in range(5)]
    assert target_a == target_b


def test_spawn_children_independent():
    parent = RandomStreams(9)
    child1 = parent.spawn("w1")
    child2 = parent.spawn("w2")
    assert child1.get("x").random() != child2.get("x").random()
    # Deterministic: same spawn name gives the same child streams.
    again = RandomStreams(9).spawn("w1")
    assert again.get("x").random() == RandomStreams(9).spawn("w1") \
        .get("x").random()


def test_derive_seed_stable():
    assert derive_seed(42, "abc") == derive_seed(42, "abc")
    assert derive_seed(42, "abc") != derive_seed(42, "abd")
    assert derive_seed(41, "abc") != derive_seed(42, "abc")


def test_names_sorted():
    streams = RandomStreams(0)
    streams.get("zeta")
    streams.get("alpha")
    assert streams.names() == ["alpha", "zeta"]


# ----------------------------------------------------------------------
# BatchedStream: bit-identity with random.Random
# ----------------------------------------------------------------------
def test_batched_random_bit_identical_across_blocks():
    """The core batching contract: random() serves exactly the plain
    sequence, including across multiple block refills."""
    n = 3 * BatchedStream.BLOCK_SIZE + 17
    plain = random.Random(1234)
    batched = BatchedStream(1234)
    assert [batched.random() for _ in range(n)] \
        == [plain.random() for _ in range(n)]


def test_batched_distribution_methods_bit_identical():
    plain = random.Random(99)
    batched = BatchedStream(99)
    for _ in range(2000):
        assert batched.uniform(-3.0, 7.0) == plain.uniform(-3.0, 7.0)
        assert batched.lognormvariate(0.5, 0.8) \
            == plain.lognormvariate(0.5, 0.8)
        assert batched.expovariate(2.0) == plain.expovariate(2.0)


@given(st.integers(min_value=0, max_value=2**32),
       st.integers(min_value=1, max_value=300))
def test_batched_interleaving_preserves_sequence(seed, n):
    """Any interleaving of random()/uniform() draws matches plain."""
    plain = random.Random(seed)
    batched = BatchedStream(seed)
    mixer = random.Random(n)
    for _ in range(n):
        if mixer.random() < 0.5:
            assert batched.random() == plain.random()
        else:
            assert batched.uniform(0.0, 2.5) == plain.uniform(0.0, 2.5)


def test_batched_getrandbits_family_fails_loudly():
    batched = BatchedStream(7)
    with pytest.raises(TypeError):
        batched.getrandbits(8)
    with pytest.raises(TypeError):
        batched.randrange(10)
    with pytest.raises(TypeError):
        batched.randint(0, 5)
    with pytest.raises(TypeError):
        batched.choice([1, 2, 3])
    with pytest.raises(TypeError):
        batched.shuffle([1, 2, 3])


def test_batched_reseed_and_state_rejected():
    batched = BatchedStream(7)
    with pytest.raises(TypeError):
        batched.seed(8)
    with pytest.raises(TypeError):
        batched.getstate()
    with pytest.raises(TypeError):
        batched.setstate(random.Random(7).getstate())


def test_get_batched_caches_and_guards_promotion():
    streams = RandomStreams(5)
    batched = streams.get_batched("arrivals")
    assert streams.get_batched("arrivals") is batched
    # Promoting an existing plain stream would fork the sequence.
    streams.get("plain")
    with pytest.raises(ValueError):
        streams.get_batched("plain")


def test_get_rejects_existing_batched_stream():
    # The mirror guard: get() used to hand the BatchedStream out as if
    # it were a full random.Random, and the first forking call
    # (randrange, choice, ...) then raised TypeError far from the
    # aliasing site.  Both directions of the batched/plain mismatch now
    # fail at the registry, where the stream name is in hand.
    streams = RandomStreams(5)
    streams.get_batched("arrivals")
    with pytest.raises(ValueError, match="already exists batched"):
        streams.get("arrivals")


def test_get_batched_serves_same_sequence_as_get():
    a = RandomStreams(11).get("s")
    b = RandomStreams(11).get_batched("s")
    assert [a.random() for _ in range(50)] == [b.random() for _ in range(50)]
