"""Named random streams: determinism and independence."""

from repro.sim.rng import RandomStreams, derive_seed


def test_same_seed_same_streams():
    a = RandomStreams(7).get("arrivals")
    b = RandomStreams(7).get("arrivals")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_differ():
    streams = RandomStreams(7)
    a = streams.get("arrivals")
    b = streams.get("service")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(7).get("x")
    b = RandomStreams(8).get("x")
    assert a.random() != b.random()


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.get("s") is streams.get("s")


def test_draw_order_isolation():
    """Consuming one stream must not perturb another."""
    streams_a = RandomStreams(3)
    streams_b = RandomStreams(3)
    # In A, interleave heavy use of "other" before sampling "target".
    other = streams_a.get("other")
    for _ in range(1000):
        other.random()
    target_a = [streams_a.get("target").random() for _ in range(5)]
    target_b = [streams_b.get("target").random() for _ in range(5)]
    assert target_a == target_b


def test_spawn_children_independent():
    parent = RandomStreams(9)
    child1 = parent.spawn("w1")
    child2 = parent.spawn("w2")
    assert child1.get("x").random() != child2.get("x").random()
    # Deterministic: same spawn name gives the same child streams.
    again = RandomStreams(9).spawn("w1")
    assert again.get("x").random() == RandomStreams(9).spawn("w1") \
        .get("x").random()


def test_derive_seed_stable():
    assert derive_seed(42, "abc") == derive_seed(42, "abc")
    assert derive_seed(42, "abc") != derive_seed(42, "abd")
    assert derive_seed(41, "abc") != derive_seed(42, "abc")


def test_names_sorted():
    streams = RandomStreams(0)
    streams.get("zeta")
    streams.get("alpha")
    assert streams.names() == ["alpha", "zeta"]
