"""Standard-model primitives: jobs, instances, schedules."""

import pytest

from repro.theory.model import Job, ProblemInstance, Schedule, Segment


def test_job_validation():
    with pytest.raises(ValueError):
        Job(1, 1.0, 0.5, 1.0)  # deadline before arrival
    with pytest.raises(ValueError):
        Job(1, 0.0, 1.0, 0.0)  # zero work


def test_job_density_and_window():
    job = Job(1, 1.0, 3.0, 4.0)
    assert job.window == 2.0
    assert job.density == 2.0


def test_instance_sorted_and_validated():
    jobs = [Job(2, 5.0, 6.0, 1.0), Job(1, 0.0, 1.0, 1.0)]
    instance = ProblemInstance(jobs)
    assert [j.job_id for j in instance] == [1, 2]
    assert instance.total_work == 2.0
    assert instance.horizon == (0.0, 6.0)
    with pytest.raises(ValueError):
        ProblemInstance([])
    with pytest.raises(ValueError):
        ProblemInstance([Job(1, 0, 1, 1), Job(1, 0, 1, 1)])


def test_agreeable_detection():
    agreeable = ProblemInstance([
        Job(1, 0.0, 2.0, 1.0), Job(2, 1.0, 3.0, 1.0)])
    assert agreeable.is_agreeable()
    disagreeable = ProblemInstance([
        Job(1, 0.0, 10.0, 1.0), Job(2, 1.0, 2.0, 1.0)])
    assert not disagreeable.is_agreeable()
    # Simultaneous arrivals never violate agreeability.
    simultaneous = ProblemInstance([
        Job(1, 0.0, 10.0, 1.0), Job(2, 0.0, 2.0, 1.0)])
    assert simultaneous.is_agreeable()


def test_scaled_instance():
    instance = ProblemInstance([Job(1, 0.0, 1.0, 2.0)])
    scaled = instance.scaled(3.0)
    assert scaled.jobs[0].work == 6.0
    assert scaled.jobs[0].deadline == 1.0
    with pytest.raises(ValueError):
        instance.scaled(0.0)


def test_c_factor():
    instance = ProblemInstance([
        Job(1, 0.0, 1.0, 10.0), Job(2, 0.0, 1.0, 0.1)])
    assert instance.c_factor() == pytest.approx(1.0 + 100.0)
    assert instance.load_extremes() == (0.1, 10.0)


def test_segment_validation():
    with pytest.raises(ValueError):
        Segment(1.0, 1.0, 1.0, 1)
    with pytest.raises(ValueError):
        Segment(0.0, 1.0, 0.0, 1)


def test_schedule_energy():
    schedule = Schedule([Segment(0.0, 2.0, 3.0, 1)])
    assert schedule.energy(alpha=3.0) == pytest.approx(54.0)
    assert schedule.max_speed() == 3.0
    with pytest.raises(ValueError):
        schedule.energy(alpha=1.0)


def test_schedule_work_by_job():
    schedule = Schedule([
        Segment(0.0, 1.0, 2.0, 1),
        Segment(1.0, 2.0, 1.0, 2),
        Segment(2.0, 3.0, 1.0, 1),
    ])
    assert schedule.work_by_job() == {1: 3.0, 2: 1.0}


def test_feasibility_accepts_valid_schedule():
    instance = ProblemInstance([Job(1, 0.0, 2.0, 2.0)])
    Schedule([Segment(0.0, 2.0, 1.0, 1)]).check_feasible(instance)


def test_feasibility_rejects_missed_deadline():
    instance = ProblemInstance([Job(1, 0.0, 2.0, 2.0)])
    bad = Schedule([Segment(0.0, 4.0, 0.5, 1)])
    with pytest.raises(AssertionError):
        bad.check_feasible(instance)


def test_feasibility_rejects_early_start():
    instance = ProblemInstance([Job(1, 1.0, 3.0, 2.0)])
    bad = Schedule([Segment(0.0, 2.0, 1.0, 1)])
    with pytest.raises(AssertionError):
        bad.check_feasible(instance)


def test_feasibility_rejects_wrong_work():
    instance = ProblemInstance([Job(1, 0.0, 2.0, 2.0)])
    bad = Schedule([Segment(0.0, 1.0, 1.0, 1)])
    with pytest.raises(AssertionError):
        bad.check_feasible(instance)


def test_feasibility_rejects_overlap():
    instance = ProblemInstance([
        Job(1, 0.0, 2.0, 1.0), Job(2, 0.0, 2.0, 1.0)])
    bad = Schedule([Segment(0.0, 1.0, 1.0, 1), Segment(0.5, 1.5, 1.0, 2)])
    with pytest.raises(AssertionError):
        bad.check_feasible(instance)


def test_nonpreemptive_check_rejects_preemption():
    instance = ProblemInstance([
        Job(1, 0.0, 4.0, 2.0), Job(2, 0.0, 4.0, 1.0)])
    preempted = Schedule([
        Segment(0.0, 1.0, 1.0, 1),
        Segment(1.0, 2.0, 1.0, 2),
        Segment(2.0, 3.0, 1.0, 1),
    ])
    preempted.check_feasible(instance, preemptive=True)  # fine if allowed
    with pytest.raises(AssertionError):
        preempted.check_feasible(instance, preemptive=False)


def test_nonpreemptive_check_allows_speed_changes():
    instance = ProblemInstance([Job(1, 0.0, 3.0, 3.0)])
    stepped = Schedule([
        Segment(0.0, 1.0, 2.0, 1),
        Segment(1.0, 2.0, 1.0, 1),  # same job, back-to-back
    ])
    stepped.check_feasible(instance, preemptive=False)
