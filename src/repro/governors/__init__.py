"""OS frequency governors --- the paper's baselines.

Reimplementations of the Linux ``cpufreq`` governors the paper compares
POLARIS against (Section 6.1):

* static governors that pin a core at a fixed frequency (the "2.8 GHz"
  and "2.4 GHz" baselines, plus performance/powersave);
* the **OnDemand** dynamic governor: jump to the maximum frequency when
  utilization exceeds ``up_threshold``, otherwise scale the frequency
  proportionally to utilization;
* the **Conservative** dynamic governor: step the frequency gradually up
  or down when utilization crosses its thresholds.

All dynamic governors are *deadline-blind*: they see only per-core busy
time, sampled every ``sampling_period_s`` --- exactly the information
asymmetry versus POLARIS that the paper is about.
"""

from repro.governors.base import Governor, DynamicGovernor, GovernorSet
from repro.governors.static import PerformanceGovernor, PowersaveGovernor, UserspaceGovernor
from repro.governors.ondemand import OnDemandGovernor
from repro.governors.conservative import ConservativeGovernor
from repro.governors.nonclairvoyant import NonclairvoyantScheduler

__all__ = [
    "Governor", "DynamicGovernor", "GovernorSet",
    "PerformanceGovernor", "PowersaveGovernor", "UserspaceGovernor",
    "OnDemandGovernor", "ConservativeGovernor",
    "NonclairvoyantScheduler",
]
