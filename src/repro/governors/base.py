"""Governor interfaces and the utilization-sampling loop.

Mirrors the structure of the Linux ``cpufreq`` core: a governor is
attached to one core ("policy"), static governors act once, dynamic
governors re-evaluate every ``sampling_period_s`` based on the busy
fraction of the elapsed window.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cpu.core import Core
from repro.obs.trace import NULL_TRACER, NULL_TRACK
from repro.sim.engine import Event, Simulator

#: Linux's default sampling interval on the paper's kernel era was
#: ``sampling_rate = 10000`` microseconds for both dynamic governors.
DEFAULT_SAMPLING_PERIOD = 0.010


class Governor:
    """A frequency-control policy for one core."""

    name = "governor"

    def __init__(self):
        self.core: Optional[Core] = None
        self.sim: Optional[Simulator] = None
        self.tracer = NULL_TRACER
        self.trace_track = NULL_TRACK

    def attach(self, core: Core, sim: Simulator) -> None:
        """Take control of ``core``; static policies act immediately."""
        self.core = core
        self.sim = sim
        #: repro.obs: governors record on their core's track, so a
        #: governor decision and the P-state transition it caused land
        #: on the same Perfetto row.
        self.tracer = sim.tracer
        self.trace_track = core.trace_track
        self.on_attach()

    def detach(self) -> None:
        """Release the core (stops any sampling)."""
        self.on_detach()
        self.core = None
        self.sim = None

    # Hooks -------------------------------------------------------------
    def on_attach(self) -> None:
        """Called once when attached; override in subclasses."""

    def on_detach(self) -> None:
        """Called when detached; override to cancel timers."""

    def trace_args(self) -> dict:
        """Extra per-policy fields for this governor's trace instants.

        Overridden by governors with tunables worth seeing next to each
        decision (ondemand's threshold, conservative's requested
        frequency); the base contributes nothing.
        """
        return {}

    def _trace_pin(self, freq_ghz: float) -> None:
        """Record a static governor pinning its core at ``freq_ghz``."""
        if self.tracer.enabled:
            assert self.sim is not None
            self.tracer.instant(self.trace_track,
                                f"governor:{self.name}:pin",
                                self.sim.now, pinned_ghz=freq_ghz)


class DynamicGovernor(Governor):
    """Base for utilization-driven governors.

    Subclasses implement :meth:`target_frequency` mapping the sampled
    utilization (busy fraction in [0, 1] over the last window) to a
    frequency on the core's grid.
    """

    def __init__(self, sampling_period_s: float = DEFAULT_SAMPLING_PERIOD):
        super().__init__()
        if sampling_period_s <= 0:
            raise ValueError("sampling period must be positive")
        self.sampling_period_s = sampling_period_s
        self._timer: Optional[Event] = None
        self._last_sample_time_s = 0.0
        self._last_busy = 0.0
        self.samples_taken = 0

    def on_attach(self) -> None:
        assert self.sim is not None and self.core is not None
        self._last_sample_time_s = self.sim.now
        self._last_busy = self.core.busy_seconds_at(self.sim.now)
        self._timer = self.sim.schedule(self.sampling_period_s, self._sample)

    def on_detach(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _sample(self) -> None:
        assert self.sim is not None and self.core is not None
        now = self.sim.now
        busy = self.core.busy_seconds_at(now)
        window = now - self._last_sample_time_s
        utilization = 0.0
        if window > 0:
            utilization = min(1.0, (busy - self._last_busy) / window)
        self._last_sample_time_s = now
        self._last_busy = busy
        self.samples_taken += 1

        target = self.target_frequency(utilization)
        if self.tracer.enabled:
            self.tracer.instant(
                self.trace_track, f"governor:{self.name}", now,
                utilization=round(utilization, 6),
                target_ghz=target if target is not None else self.core.freq,
                **self.trace_args())
        if target is not None:
            if self.core.domain is not None:
                # Shared frequency domain: always re-file the vote.  The
                # core may be riding a sibling's higher vote, so "target
                # equals current frequency" does not mean "nothing to
                # say" --- skipping would leave a stale vote pinning the
                # whole domain high after the sibling steps down.
                self.core.request_frequency(target)
            elif abs(target - self.core.freq) > 1e-12:
                self.core.set_frequency(target)
        self._timer = self.sim.schedule(self.sampling_period_s, self._sample)

    def target_frequency(self, utilization: float) -> Optional[float]:
        """Map the last window's utilization to a grid frequency.

        Return ``None`` to keep the current frequency.
        """
        raise NotImplementedError


class GovernorSet:
    """One governor instance per core, built from a factory.

    Mirrors how Linux instantiates a governor per cpufreq policy.
    """

    def __init__(self, factory: Callable[[], Governor]):
        self._factory = factory
        self.governors: List[Governor] = []

    def attach_all(self, cores: Sequence[Core], sim: Simulator) -> None:
        if self.governors:
            raise RuntimeError("governor set already attached")
        for core in cores:
            governor = self._factory()
            governor.attach(core, sim)
            self.governors.append(governor)

    def detach_all(self) -> None:
        for governor in self.governors:
            governor.detach()
        self.governors.clear()
