"""The Linux ``conservative`` dynamic governor.

Decision rule (faithful to ``drivers/cpufreq/cpufreq_conservative.c``):

* keep an internal ``requested_freq``;
* if the sampled load exceeds ``up_threshold`` (default 80%), raise
  ``requested_freq`` by ``freq_step`` (default 5% of max frequency);
* if the load falls below ``down_threshold`` (default 20%), lower it by
  the same step;
* between the thresholds, leave the frequency alone.

That dead zone is why the paper observes Conservative "rarely lowers
frequency below 2.8 GHz" at medium load (utilization sits between the
thresholds, so the governor never moves off its starting point) yet
drifts all the way down --- saving as much power as POLARIS but missing
deadlines --- at low load, where enough sampling windows dip under the
down threshold (Section 6.3).
"""

from __future__ import annotations

from typing import Optional

from repro.governors.base import DEFAULT_SAMPLING_PERIOD, DynamicGovernor

DEFAULT_UP_THRESHOLD = 80.0
DEFAULT_DOWN_THRESHOLD = 20.0
#: Kernel default freq_step is 5 (percent of max frequency).
DEFAULT_FREQ_STEP_PERCENT = 5.0


class ConservativeGovernor(DynamicGovernor):
    """Gradual stepping between utilization thresholds."""

    name = "conservative"

    def __init__(self, sampling_period_s: float = DEFAULT_SAMPLING_PERIOD,
                 up_threshold: float = DEFAULT_UP_THRESHOLD,
                 down_threshold: float = DEFAULT_DOWN_THRESHOLD,
                 freq_step_percent: float = DEFAULT_FREQ_STEP_PERCENT):
        super().__init__(sampling_period_s)
        if not 0 <= down_threshold < up_threshold <= 100:
            raise ValueError(
                "need 0 <= down_threshold < up_threshold <= 100")
        if freq_step_percent <= 0:
            raise ValueError("freq_step_percent must be positive")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.freq_step_percent = freq_step_percent
        self._requested: Optional[float] = None

    def on_attach(self) -> None:
        assert self.core is not None
        self._requested = self.core.freq
        super().on_attach()

    def target_frequency(self, utilization: float) -> Optional[float]:
        assert self.core is not None
        table = self.core.pstates
        if self._requested is None:
            self._requested = self.core.freq
        step = self.freq_step_percent / 100.0 * table.max_freq
        load = utilization * 100.0
        if load > self.up_threshold:
            # Raising: lowest grid frequency at or above the request,
            # so the step is always honored in the safe direction.
            self._requested = min(self._requested + step, table.max_freq)
            return table.nearest_at_least(self._requested)
        if load < self.down_threshold:
            # Lowering: highest grid frequency at or below the request.
            # Rounding a *decrease* upward would overstate the applied
            # frequency by up to one P-state on coarse grids (the
            # 5-level POLARIS table has 0.4 GHz gaps) and hold the core
            # above what the governor decided --- on the paper's grid
            # the old at-least rounding kept every down step pinned one
            # level high until ``_requested`` crossed the next boundary.
            self._requested = max(self._requested - step, table.min_freq)
            return table.nearest_at_most(self._requested)
        return None

    def trace_args(self) -> dict:
        return {"requested_ghz": self._requested}
