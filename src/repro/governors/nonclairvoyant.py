"""Nonclairvoyant speed scaling: no execution-time estimate at all.

Chan, Edmonds, Lam, Lee, Marchetti-Spaccamela & Pruhs studied speed
scaling when job sizes are *unknown* (nonclairvoyance is about
processing times --- arrival times and deadlines are declared on the
request, so reading them is fair).  Their flow+energy scaler runs at a
speed proportional to ``n^(1/alpha)`` for ``n`` active jobs: with
power ``s^alpha``, that spends energy at the same rate the algorithm
accumulates flow, which is the balance point of the potential-function
analysis.

:class:`NonclairvoyantScheduler` embeds that rule in the
:class:`~repro.core.polaris.PolarisScheduler` worker contract --- EDF
dispatch, replan on every arrival/completion, relation-L rounding ---
but, unlike every other scheduler in the arena, it never reads the
``mu(c, f)`` estimator and never feeds completions back into it.  Its
whole input is the observable queue state:

* ``n`` --- the number of active requests (queued + running); the base
  speed is ``f_min * n^(1/alpha)``.
* queue age --- when any active request has burned more than
  :attr:`urgency_threshold` of its own window sitting in the system,
  the scheduler escalates flat out (deadline pressure without a time
  estimate: "it has been here too long" is observable, "it needs X
  more seconds" is not).

It lives in ``repro.governors`` because informationally it belongs
with the OS governors: like OnDemand/Conservative it is blind to
execution times and scales on an aggregate activity signal --- it just
happens to speak the scheduler interface so it can also own EDF
ordering, making it the bridge between the governor family and the
estimator-based schedulers in the arena.
"""

from __future__ import annotations

from typing import Optional

from repro.core.polaris import PolarisScheduler
from repro.core.request import Request


class NonclairvoyantScheduler(PolarisScheduler):
    """Active-job-count speed scaling with a queue-age escape hatch."""

    name = "nonclairvoyant"

    #: Power-model exponent; the base speed is ``f_min * n^(1/alpha)``.
    alpha = 3.0

    #: Fraction of its own window an active request may spend in the
    #: system before the scheduler runs flat out.
    urgency_threshold = 0.75

    def _target_speed(self, now: float, running: Optional[Request]) -> float:
        active = list(self.queue)
        if running is not None:
            active.append(running)
        if not active:
            return self.frequencies[0]
        for request in active:
            window = request.deadline - request.arrival_time
            if window <= 1e-12 \
                    or now - request.arrival_time \
                    > self.urgency_threshold * window:
                return float("inf")
        return self.frequencies[0] * len(active) ** (1.0 / self.alpha)

    def select_frequency(self, now: float, running: Optional[Request],
                         running_elapsed: float = 0.0) -> float:
        self.invocations += 1
        freqs = self.frequencies
        if self.panic:
            if self.trace_decisions:
                self.last_decision = {
                    "selected_ghz": freqs[-1], "floor_ghz": freqs[-1],
                    "queue_len": len(self.queue), "active_n": 0,
                    "early_exit": True, "panic": True,
                }
            return freqs[-1]
        target = self._target_speed(now, running)
        self.queue_items_scanned += len(self.queue)
        selected = freqs[-1]
        for f in freqs:
            if f + 1e-9 >= target:
                selected = f
                break
        if self.sanitize:
            self._sanitize_selected(selected, 0, now)
        if self.trace_decisions:
            self.last_decision = {
                "selected_ghz": selected,
                "floor_ghz": freqs[0],
                "queue_len": len(self.queue),
                "active_n": len(self.queue) + (1 if running else 0),
                "early_exit": target > freqs[-1],
            }
        return selected

    def record_completion(self, request: Request) -> None:
        """Nonclairvoyant: completions never update the estimator ---
        measured execution times are exactly the information this
        scheme is defined not to have."""
        if request.dispatch_freq is None:
            raise ValueError("request has no dispatch frequency recorded")
