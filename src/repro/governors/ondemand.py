"""The Linux ``ondemand`` dynamic governor.

Decision rule (faithful to ``drivers/cpufreq/cpufreq_ondemand.c`` of the
paper-era kernels):

* if the sampled load *strictly exceeds* ``up_threshold`` (default 95%,
  kernel test ``load > up_threshold`` — equality takes the proportional
  path), jump straight to the maximum frequency;
* otherwise set ``freq_next = utilization * max_freq`` — the kernel's
  ``load * max_freq / 100`` with percent load rewritten for our
  fractional (0..1) utilization — and map it onto the grid with
  relation *L* (lowest grid frequency at or above the target).

The paper characterizes OnDemand as the governor that "adjusts core
frequencies more aggressively to save power" (Section 6.2): under
partial load it repeatedly scales down proportionally, saving power at
the cost of more missed latency targets when slack is tight.
"""

from __future__ import annotations

from typing import Optional

from repro.governors.base import DEFAULT_SAMPLING_PERIOD, DynamicGovernor

#: Kernel default for ondemand's up_threshold (percent).
DEFAULT_UP_THRESHOLD = 95.0


class OnDemandGovernor(DynamicGovernor):
    """Proportional scale-down with jump-to-max above ``up_threshold``."""

    name = "ondemand"

    def __init__(self, sampling_period_s: float = DEFAULT_SAMPLING_PERIOD,
                 up_threshold: float = DEFAULT_UP_THRESHOLD):
        super().__init__(sampling_period_s)
        if not 0 < up_threshold <= 100:
            raise ValueError("up_threshold must be in (0, 100]")
        self.up_threshold = up_threshold

    def target_frequency(self, utilization: float) -> Optional[float]:
        assert self.core is not None
        table = self.core.pstates
        # Strictly greater, matching cpufreq_ondemand.c's
        # ``if (load > od_tuners->up_threshold)``: a load exactly at the
        # threshold takes the proportional path below.
        if utilization * 100.0 > self.up_threshold:
            return table.max_freq
        # freq_next = utilization * max_freq (the kernel computes
        # load * max_freq / 100 with load in percent), relation L.
        target = utilization * table.max_freq
        return table.nearest_at_least(max(target, table.min_freq))

    def trace_args(self) -> dict:
        return {"up_threshold": self.up_threshold}
