"""Static governors: pin a core at a fixed frequency.

The paper's "2.8 GHz" and "2.4 GHz" baselines set all cores to a fixed
frequency through the MSRs with ACPI software control disabled
(Section 6.1).  ``performance`` and ``powersave`` are the two standard
static cpufreq policies; ``userspace`` accepts an arbitrary grid
frequency, which is how the fixed-frequency baselines are expressed.
"""

from __future__ import annotations

from repro.governors.base import Governor


class PerformanceGovernor(Governor):
    """Pin the core at its maximum frequency."""

    name = "performance"

    def on_attach(self) -> None:
        assert self.core is not None
        self._trace_pin(self.core.pstates.max_freq)
        self.core.request_frequency(self.core.pstates.max_freq)


class PowersaveGovernor(Governor):
    """Pin the core at its minimum frequency."""

    name = "powersave"

    def on_attach(self) -> None:
        assert self.core is not None
        self._trace_pin(self.core.pstates.min_freq)
        self.core.request_frequency(self.core.pstates.min_freq)


class UserspaceGovernor(Governor):
    """Pin the core at a caller-chosen frequency (``scaling_setspeed``)."""

    def __init__(self, freq_ghz: float):
        super().__init__()
        self.freq_ghz = freq_ghz
        self.name = f"userspace-{freq_ghz:g}GHz"

    def on_attach(self) -> None:
        assert self.core is not None
        if self.freq_ghz not in self.core.pstates:
            raise ValueError(
                f"{self.freq_ghz} GHz not on core's P-state grid")
        self._trace_pin(self.freq_ghz)
        self.core.request_frequency(self.freq_ghz)

    def set_speed(self, freq_ghz: float) -> None:
        """Change the pinned frequency (the sysfs ``scaling_setspeed`` knob)."""
        self.freq_ghz = freq_ghz
        if self.core is not None:
            self.core.request_frequency(freq_ghz)
