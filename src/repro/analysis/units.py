"""Whole-program dimensional analysis over the unit-suffix discipline.

The simulator's quantities live in a small physical algebra --- time,
energy, and CPU cycles, with frequency = cycles/time and power =
energy/time --- and the codebase already *names* most of them with unit
suffixes (``_s``, ``_us``, ``_ghz``, ``_w``, ``_j``, ``_cycles``,
``_ratio``; enforced by per-file rule RL006).  This module turns those
names into typed dimensions and propagates them through assignments,
arithmetic, returns, and cross-module call arguments, flagging:

========  =============================================================
RL101     Cross-dimension arithmetic/comparison: ``a_s + b_ghz``,
          ``min(x_w, y_j)``, ``t_s < f_hz``.
RL102     Same dimension, mismatched magnitude: ``a_s + b_us`` with no
          conversion factor, ``x_ghz < y_hz``.  Adjacent-SI factors
          (powers of ten with exponent a multiple of 3) applied by
          ``*``/``/`` are understood as conversions and change the
          tracked scale.
RL103     Suffix-mismatched argument binding: a ``_us`` value passed to
          a parameter declared ``_s`` in another module (the classic
          cross-module leak per-file linting cannot see).
RL104     Suffix-mismatched assignment or return: ``x_s = y_us``,
          ``return cycles`` from a function named ``*_seconds``.
========  =============================================================

The analysis is *suffix-anchored*: a name's suffix is authoritative,
inference only fills the gaps (unsuffixed locals, call results via the
project signature table).  Unknown stays unknown --- no finding is ever
raised on a value whose unit could not be established, so the engine
errs silent, and the baseline ratchet handles the survivors.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.linter import Finding
from repro.analysis.project import (
    ClassInfo, FunctionInfo, ModuleInfo, Project,
)

# ----------------------------------------------------------------------
# The unit algebra
# ----------------------------------------------------------------------
#: Base dimensions: T(ime), E(nergy), C(ycles).  Frequency and power are
#: derived: Hz = C/T, W = E/T.  ``scale`` is SI-per-1.0-of-the-value
#: (a value in microseconds has scale 1e-6).
@dataclass(frozen=True)
class Unit:
    dims: Tuple[Tuple[str, int], ...]
    scale: float

    def __mul__(self, other: "Unit") -> "Unit":
        return Unit(_merge_dims(self.dims, other.dims, 1),
                    self.scale * other.scale)

    def __truediv__(self, other: "Unit") -> "Unit":
        return Unit(_merge_dims(self.dims, other.dims, -1),
                    self.scale / other.scale)

    def __pow__(self, n: int) -> "Unit":
        return Unit(tuple((d, e * n) for d, e in self.dims),
                    self.scale ** n)

    def rescaled(self, factor: float) -> "Unit":
        """The unit after the *value* is multiplied by ``factor``."""
        return Unit(self.dims, self.scale / factor)

    @property
    def dimensionless(self) -> bool:
        return not self.dims

    def same_dims(self, other: "Unit") -> bool:
        return self.dims == other.dims

    def same_scale(self, other: "Unit", rel_tol: float = 1e-6) -> bool:
        if self.scale == other.scale:
            return True
        if other.scale == 0:
            return False
        return abs(self.scale / other.scale - 1.0) <= rel_tol

    def render(self) -> str:
        name = _CANONICAL_NAMES.get((self.dims, round_scale(self.scale)))
        if name is not None:
            return name
        dims = "*".join(f"{d}^{e}" if e != 1 else d
                        for d, e in self.dims) or "1"
        return f"{dims}x{self.scale:g}"


def _merge_dims(a, b, sign: int) -> Tuple[Tuple[str, int], ...]:
    acc: Dict[str, int] = dict(a)
    for dim, exp in b:
        acc[dim] = acc.get(dim, 0) + sign * exp
    return tuple(sorted((d, e) for d, e in acc.items() if e != 0))


def round_scale(scale: float) -> float:
    """Snap a scale to the nearest power of ten when it is one."""
    if scale <= 0:
        return scale
    exp = round(math.log10(scale))
    return 10.0 ** exp if abs(scale / 10.0 ** exp - 1.0) < 1e-9 else scale


def _u(dims: Dict[str, int], scale: float = 1.0) -> Unit:
    return Unit(tuple(sorted(dims.items())), scale)


TIME = {"T": 1}
FREQ = {"C": 1, "T": -1}
POWER = {"E": 1, "T": -1}
ENERGY = {"E": 1}
CYCLES = {"C": 1}

#: Suffix -> unit.  The last ``_``-separated component of a name is
#: looked up here (case-insensitively).
SUFFIX_UNITS: Dict[str, Unit] = {
    "s": _u(TIME), "sec": _u(TIME), "secs": _u(TIME),
    "seconds": _u(TIME),
    "ms": _u(TIME, 1e-3), "us": _u(TIME, 1e-6), "ns": _u(TIME, 1e-9),
    "hz": _u(FREQ), "khz": _u(FREQ, 1e3), "mhz": _u(FREQ, 1e6),
    "ghz": _u(FREQ, 1e9),
    "w": _u(POWER), "watts": _u(POWER), "mw": _u(POWER, 1e-3),
    "j": _u(ENERGY), "joules": _u(ENERGY), "uj": _u(ENERGY, 1e-6),
    "cycles": _u(CYCLES), "gcycles": _u(CYCLES, 1e9),
    "ratio": _u({}), "frac": _u({}), "fraction": _u({}),
}

_CANONICAL_NAMES = {(u.dims, round_scale(u.scale)): name
                    for name, u in reversed(list(SUFFIX_UNITS.items()))}

#: Established unsuffixed conventions, mirroring the RL006 audited
#: exemption table: these names *mean* these units everywhere in the
#: tree (documented in the respective module docstrings), so the
#: analysis treats them as typed.  ``work`` is in giga-cycles by the
#: cpu.core execution model (``w / f`` seconds at ``f`` GHz).
KNOWN_NAME_UNITS: Dict[str, Unit] = {
    "time": _u(TIME), "now": _u(TIME), "start_time": _u(TIME),
    "finish_time": _u(TIME), "arrival_time": _u(TIME),
    "dispatch_time": _u(TIME), "deadline": _u(TIME), "delay": _u(TIME),
    "elapsed": _u(TIME), "running_elapsed": _u(TIME),
    "transition_latency": _u(TIME),
    "freq": _u(FREQ, 1e9), "dispatch_freq": _u(FREQ, 1e9),
    "initial_freq": _u(FREQ, 1e9),
    "work": _u(CYCLES, 1e9),
}

#: Conversion factors: literal multipliers/divisors that re-scale a
#: value between SI magnitudes.  Only powers of ten whose exponent is a
#: multiple of 3 qualify (1e3, 1e-6, 1e9, ...); ``* 10`` or ``* 100``
#: are coefficients (backoff factors, percentages), not conversions.
def conversion_factor(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    v = float(value)
    if v <= 0:
        return None
    exp = round(math.log10(v))
    if exp == 0 or exp % 3 != 0:
        return None
    return 10.0 ** exp if abs(v / 10.0 ** exp - 1.0) < 1e-9 else None


def name_unit(name: str) -> Optional[Unit]:
    """The unit a bare name declares, by suffix or known convention."""
    lowered = name.lower().lstrip("_")
    if lowered in KNOWN_NAME_UNITS:
        return KNOWN_NAME_UNITS[lowered]
    if "_" not in lowered:
        return None
    suffix = lowered.rsplit("_", 1)[1]
    return SUFFIX_UNITS.get(suffix)


# ----------------------------------------------------------------------
# Rule descriptors (registered with the driver, not the per-file
# registry --- these need the whole project)
# ----------------------------------------------------------------------
PROGRAM_UNIT_RULES: Dict[str, Tuple[str, str]] = {
    "RL101": ("cross-dimension",
              "arithmetic/comparison between different physical "
              "dimensions (e.g. seconds + GHz)"),
    "RL102": ("unit-magnitude",
              "same dimension, mismatched magnitude with no conversion "
              "factor (e.g. seconds + microseconds)"),
    "RL103": ("unit-argument",
              "argument's unit suffix contradicts the parameter's "
              "declared unit at a resolved call site"),
    "RL104": ("unit-assignment",
              "assigned/returned value's unit contradicts the target "
              "name's declared unit"),
}


# ----------------------------------------------------------------------
# Expression/function analysis
# ----------------------------------------------------------------------
_PASSTHROUGH_CALLS = frozenset({
    "abs", "float", "round", "sorted", "sum", "int",
    "math.fabs", "math.floor", "math.ceil", "copysign",
})
_JOINING_CALLS = frozenset({"min", "max"})


class _FunctionAnalyzer:
    """Abstract interpretation of one function body over the unit
    lattice.  ``collect=True`` emits findings; either way the walk
    records the units of ``return`` expressions for signature
    inference."""

    def __init__(self, analysis: "UnitAnalysis", module: ModuleInfo,
                 func: FunctionInfo, enclosing: Optional[ClassInfo],
                 collect: bool):
        self.analysis = analysis
        self.module = module
        self.func = func
        self.enclosing = enclosing
        self.cls_qual = enclosing.qualname if enclosing is not None else None
        self.collect = collect
        self.env: Dict[str, Optional[Unit]] = {}
        self.return_units: List[Optional[Unit]] = []
        for param in func.all_params:
            self.env[param] = name_unit(param)

    # -- findings ------------------------------------------------------
    def flag(self, code: str, node: ast.AST, message: str) -> None:
        if not self.collect:
            return
        name, _ = PROGRAM_UNIT_RULES[code]
        self.analysis.findings.append(Finding(
            code, name, self.module.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0), message))

    def _mismatch(self, node: ast.AST, what: str, left: Unit,
                  right: Unit) -> None:
        if not left.same_dims(right):
            self.flag("RL101", node,
                      f"{what} mixes dimensions: {left.render()} vs "
                      f"{right.render()}")
        elif not left.same_scale(right):
            factor = right.scale / left.scale
            self.flag("RL102", node,
                      f"{what} mixes magnitudes: {left.render()} vs "
                      f"{right.render()} (off by x{factor:g}; apply an "
                      f"explicit conversion)")

    # -- statements ----------------------------------------------------
    def run(self) -> None:
        self.walk_body(self.func.node.body)

    def walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            unit = self.infer(stmt.value)
            for target in stmt.targets:
                self.assign(target, unit, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.infer(stmt.value),
                            stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value_unit = self.infer(stmt.value)
            target_unit = self.target_unit(stmt.target)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and \
                    target_unit is not None and value_unit is not None \
                    and not self.is_literal(stmt.value):
                self._mismatch(stmt, "augmented assignment",
                               target_unit, value_unit)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self.infer(stmt.value)
                if not self.is_literal(stmt.value):
                    self.return_units.append(unit)
                declared = name_unit(self.func.name)
                if declared is not None and unit is not None and \
                        not self.is_literal(stmt.value):
                    if not (declared.same_dims(unit)
                            and declared.same_scale(unit)):
                        self._mismatch(
                            stmt, f"return from `{self.func.name}()` "
                            f"(declared {declared.render()} by suffix)",
                            declared, unit)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_unit = self.infer(stmt.iter)
            self.assign(stmt.target, iter_unit, None, check=False)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.infer(item.context_expr)
            self.walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested defs: analyzed via the symbol table if named
        elif isinstance(stmt, (ast.Assert,)):
            self.infer(stmt.test)
        elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
            self.infer(stmt.exc)

    def _is_self_attr(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
                and self.cls_qual is not None)

    def target_unit(self, target: ast.AST) -> Optional[Unit]:
        if isinstance(target, ast.Name):
            declared = name_unit(target.id)
            return declared if declared is not None \
                else self.env.get(target.id)
        if isinstance(target, ast.Attribute):
            declared = name_unit(target.attr)
            if declared is None and self._is_self_attr(target):
                return self.analysis.attr_unit(self.cls_qual, target.attr)
            return declared
        return None

    def assign(self, target: ast.AST, unit: Optional[Unit],
               value: Optional[ast.AST], check: bool = True) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, None, None, check=False)
            return
        declared = None
        if isinstance(target, ast.Name):
            declared = name_unit(target.id)
        elif isinstance(target, ast.Attribute):
            declared = name_unit(target.attr)
        if check and declared is not None and unit is not None and \
                value is not None and not self.is_literal(value):
            if not (declared.same_dims(unit)
                    and declared.same_scale(unit)):
                name = target.id if isinstance(target, ast.Name) \
                    else target.attr
                if not declared.same_dims(unit):
                    self.flag("RL104", target,
                              f"`{name}` declares {declared.render()} "
                              f"but is assigned {unit.render()}")
                else:
                    factor = declared.scale / unit.scale
                    self.flag("RL104", target,
                              f"`{name}` declares {declared.render()} "
                              f"but is assigned {unit.render()} "
                              f"(multiply by {factor:g} to convert)")
        if isinstance(target, ast.Name):
            # The suffix stays authoritative for later uses; inference
            # only fills unsuffixed locals.
            self.env[target.id] = declared if declared is not None \
                else unit
        elif not self.collect and self._is_self_attr(target):
            # Signature pass: learn instance-attribute units from what
            # the class's own methods assign (``self.interval = 1.0``
            # teaches nothing; ``self.width = bucket_width_s`` pins
            # seconds).  Conflicting writes collapse to unknown.
            self.analysis.record_attr(
                self.cls_qual, target.attr,
                declared if declared is not None else unit,
                known=unit is not None or declared is not None)

    # -- expressions ---------------------------------------------------
    def is_literal(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and \
                not isinstance(node.value, bool)
        if isinstance(node, ast.UnaryOp) and \
                isinstance(node.op, (ast.USub, ast.UAdd)):
            return self.is_literal(node.operand)
        return False

    def literal_value(self, node: ast.AST) -> Optional[float]:
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, (int, float)) and \
                not isinstance(node.value, bool):
            return float(node.value)
        if isinstance(node, ast.UnaryOp) and \
                isinstance(node.op, (ast.USub, ast.UAdd)):
            inner = self.literal_value(node.operand)
            if inner is None:
                return None
            return -inner if isinstance(node.op, ast.USub) else inner
        return None

    def infer(self, node: ast.AST) -> Optional[Unit]:
        """Infer ``node``'s unit; emits findings along the way when in
        collect mode.  ``None`` = unknown (never flagged)."""
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return name_unit(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            declared = name_unit(node.attr)
            if declared is None and self._is_self_attr(node):
                return self.analysis.attr_unit(self.cls_qual, node.attr)
            return declared
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Compare):
            return self._infer_compare(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            return self._join_units([self.infer(node.body),
                                     self.infer(node.orelse)])
        if isinstance(node, ast.BoolOp):
            return self._join_units([self.infer(v) for v in node.values])
        if isinstance(node, ast.Subscript):
            unit = self.infer(node.value)
            self.infer(node.slice)
            return unit
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            units = [self.infer(e) for e in node.elts]
            concrete = [u for u, e in zip(units, node.elts)
                        if u is not None and not self.is_literal(e)]
            if concrete and all(
                    c.same_dims(concrete[0]) and c.same_scale(concrete[0])
                    for c in concrete):
                return concrete[0]
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.infer(key)
            values = [self.infer(v) for v in node.values]
            concrete = [u for u in values if u is not None]
            if concrete and all(
                    c.same_dims(concrete[0]) and c.same_scale(concrete[0])
                    for c in concrete):
                return concrete[0]
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                self.infer(gen.iter)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        # walk remaining children so nested compares/calls get checked
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child)
        return None

    def _join_units(self, units: List[Optional[Unit]]) -> Optional[Unit]:
        concrete = [u for u in units if u is not None]
        if not concrete:
            return None
        first = concrete[0]
        if all(u.same_dims(first) and u.same_scale(first)
               for u in concrete[1:]):
            return first
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[Unit]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and \
                    not self.is_literal(node.left) and \
                    not self.is_literal(node.right):
                self._mismatch(node, "additive expression", left, right)
                if not (left.same_dims(right)
                        and left.same_scale(right)):
                    return None
            return left if left is not None else right
        if isinstance(node.op, ast.Mult):
            return self._scaleop(node, left, right, invert=False,
                                 symmetric=True)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return self._scaleop(node, left, right, invert=True,
                                 symmetric=False)
        if isinstance(node.op, ast.Pow):
            exp = self.literal_value(node.right)
            if left is not None and exp is not None and \
                    float(exp).is_integer():
                return left ** int(exp)
            return None
        if isinstance(node.op, ast.Mod):
            return left
        return None

    def _scaleop(self, node: ast.BinOp, left: Optional[Unit],
                 right: Optional[Unit], invert: bool,
                 symmetric: bool) -> Optional[Unit]:
        lval = self.literal_value(node.left)
        rval = self.literal_value(node.right)
        # unit op literal: conversion factor or plain coefficient
        if left is not None and rval is not None:
            factor = conversion_factor(rval)
            if factor is None:
                return left
            return left.rescaled(1.0 / factor if invert else factor)
        if symmetric and right is not None and lval is not None:
            factor = conversion_factor(lval)
            return right if factor is None else right.rescaled(factor)
        if left is not None and right is not None:
            return left / right if invert else left * right
        if invert and lval is None and left is None and right is not None:
            return None  # unknown / unit: unknown
        return None

    def _infer_compare(self, node: ast.Compare) -> Optional[Unit]:
        sides = [node.left, *node.comparators]
        units = [self.infer(s) for s in sides]
        for op, (a, ua), (b, ub) in zip(
                node.ops, zip(sides, units), zip(sides[1:], units[1:])):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                continue
            if ua is None or ub is None:
                continue
            if self.is_literal(a) or self.is_literal(b):
                continue
            self._mismatch(node, "comparison", ua, ub)
        return None

    # -- calls ---------------------------------------------------------
    def _infer_call(self, node: ast.Call) -> Optional[Unit]:
        arg_units = [self.infer(a) for a in node.args]
        kw_units = {kw.arg: self.infer(kw.value) for kw in node.keywords
                    if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value)

        func = node.func
        simple_name = None
        if isinstance(func, ast.Name):
            simple_name = func.id
        dotted = Project._dotted_text(func)

        if simple_name in _JOINING_CALLS or dotted in _JOINING_CALLS:
            concrete = [(a, u) for a, u in zip(node.args, arg_units)
                        if u is not None and not self.is_literal(a)]
            for arg, unit in concrete[1:]:
                self._mismatch(node, f"`{simple_name}(...)` arguments",
                               concrete[0][1], unit)
            return concrete[0][1] if concrete else None
        if (simple_name in _PASSTHROUGH_CALLS
                or dotted in _PASSTHROUGH_CALLS):
            return arg_units[0] if arg_units else None

        targets = self.analysis.project.function_for_call(
            self.module, node, enclosing_class=self.enclosing)
        if len(targets) == 1:
            self._check_call_args(node, targets[0], arg_units, kw_units)
            declared = self.analysis.signature_return(targets[0])
            if declared is not None:
                return declared
        # Unresolved calls: trust the called name's suffix
        # (``to_trace_us(...)`` yields microseconds).
        if isinstance(func, ast.Attribute):
            return name_unit(func.attr)
        if simple_name is not None:
            return name_unit(simple_name)
        return None

    def _check_call_args(self, node: ast.Call, target: FunctionInfo,
                         arg_units: List[Optional[Unit]],
                         kw_units: Dict[str, Optional[Unit]]) -> None:
        if any(isinstance(a, ast.Starred) for a in node.args):
            return
        params = target.params
        bindings: List[Tuple[str, ast.AST, Optional[Unit]]] = []
        for i, (arg, unit) in enumerate(zip(node.args, arg_units)):
            if i < len(params):
                bindings.append((params[i], arg, unit))
        by_name = {p: p for p in target.all_params}
        for kw in node.keywords:
            if kw.arg in by_name:
                bindings.append((kw.arg, kw.value,
                                 kw_units.get(kw.arg)))
        for param, arg, unit in bindings:
            declared = name_unit(param)
            if declared is None or unit is None or self.is_literal(arg):
                continue
            if declared.same_dims(unit) and declared.same_scale(unit):
                continue
            if not declared.same_dims(unit):
                self.flag("RL103", arg,
                          f"argument of {unit.render()} bound to "
                          f"parameter `{param}` of "
                          f"`{target.qualname}()` which declares "
                          f"{declared.render()}")
            else:
                factor = declared.scale / unit.scale
                self.flag("RL103", arg,
                          f"argument magnitude {unit.render()} bound to "
                          f"parameter `{param}` of "
                          f"`{target.qualname}()` declaring "
                          f"{declared.render()} (multiply by "
                          f"{factor:g} to convert)")


# ----------------------------------------------------------------------
# The whole-program pass
# ----------------------------------------------------------------------
class UnitAnalysis:
    """Two-pass dimensional analysis over a :class:`Project`.

    Pass 1 (signatures): every function gets parameter units from its
    parameter suffixes and a return unit from its name suffix or, when
    unsuffixed, a fixpoint over the units of its ``return`` expressions
    (so ``CStateModel.wake_latency`` infers *seconds* from returning
    ``wake_latency_s`` fields).  Pass 2 (check): every function body is
    re-walked with the signature table available, emitting RL101-RL104.
    """

    #: Signature-inference fixpoint rounds (call chains deeper than
    #: this propagate partially; in practice 3 converges the repo).
    MAX_ROUNDS = 3

    def __init__(self, project: Project):
        self.project = project
        self.findings: List[Finding] = []
        self._returns: Dict[str, Optional[Unit]] = {}
        self._declared: Dict[str, Optional[Unit]] = {}
        #: class qualname -> unsuffixed attr -> inferred unit (``None``
        #: marks an attr whose writes disagree: poisoned, never used).
        self._attr_units: Dict[str, Dict[str, Optional[Unit]]] = {}
        self._round_changed = False
        for qualname, func in project.functions.items():
            self._declared[qualname] = name_unit(func.name)

    def signature_return(self, func: FunctionInfo) -> Optional[Unit]:
        declared = self._declared.get(func.qualname)
        if declared is not None:
            return declared
        return self._returns.get(func.qualname)

    # -- instance-attribute units --------------------------------------
    def attr_unit(self, cls_qualname: str, attr: str) -> Optional[Unit]:
        """Inferred unit of an *unsuffixed* instance attribute, walking
        project base classes (suffixed attrs resolve via name_unit)."""
        seen = set()
        stack = [cls_qualname]
        while stack:
            qualname = stack.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            attrs = self._attr_units.get(qualname)
            if attrs is not None and attr in attrs:
                return attrs[attr]
            cls = self.project.classes.get(qualname)
            if cls is not None:
                stack.extend(cls.bases)
        return None

    def record_attr(self, cls_qualname: str, attr: str,
                    unit: Optional[Unit], known: bool) -> None:
        """Accumulate one ``self.attr = ...`` observation.  Two writes
        that disagree poison the attr (recorded as ``None``); writes of
        unknown unit neither teach nor poison."""
        if not known or unit is None:
            return
        attrs = self._attr_units.setdefault(cls_qualname, {})
        if attr not in attrs:
            attrs[attr] = unit
            self._round_changed = True
            return
        current = attrs[attr]
        if current is None:
            return
        if not (current.same_dims(unit) and current.same_scale(unit)):
            attrs[attr] = None
            self._round_changed = True

    def _iter_functions(self) -> Iterator[Tuple[ModuleInfo, FunctionInfo,
                                                Optional[ClassInfo]]]:
        for module in self.project.modules.values():
            for func in self.project.functions.values():
                if func.module != module.name:
                    continue
                enclosing = None
                if func.class_name is not None:
                    enclosing = self.project.classes.get(
                        f"{module.name}.{func.class_name}")
                yield module, func, enclosing

    def run(self) -> List[Finding]:
        # Pass 1: signature + attribute fixpoint.
        for _ in range(self.MAX_ROUNDS):
            changed = False
            self._round_changed = False
            for module, func, enclosing in self._iter_functions():
                if self._declared.get(func.qualname) is not None and \
                        enclosing is None:
                    continue
                analyzer = _FunctionAnalyzer(self, module, func,
                                             enclosing, collect=False)
                analyzer.run()
                if self._declared.get(func.qualname) is not None:
                    continue
                concrete = [u for u in analyzer.return_units
                            if u is not None]
                inferred = None
                if concrete and all(
                        c.same_dims(concrete[0])
                        and c.same_scale(concrete[0])
                        for c in concrete[1:]):
                    inferred = concrete[0]
                if self._returns.get(func.qualname) != inferred:
                    self._returns[func.qualname] = inferred
                    changed = True
            if not changed and not self._round_changed:
                break
        # Pass 2: checking.
        self.findings = []
        for module, func, enclosing in self._iter_functions():
            _FunctionAnalyzer(self, module, func, enclosing,
                              collect=True).run()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return self.findings


__all__ = [
    "KNOWN_NAME_UNITS", "PROGRAM_UNIT_RULES", "SUFFIX_UNITS", "Unit",
    "UnitAnalysis", "conversion_factor", "name_unit",
]
