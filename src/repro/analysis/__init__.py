"""Static and runtime correctness tooling for the reproduction.

Two halves:

* **reprolint** (:mod:`repro.analysis.linter`,
  :mod:`repro.analysis.rules`, CLI ``python -m repro.analysis``) ---
  AST lint rules RL001-RL008 enforcing the determinism contract
  (no wall clocks, no global RNG, no set-order dependence, unit-suffix
  discipline, ...).
* **simsan** (:mod:`repro.analysis.sanitizer`) --- the opt-in runtime
  invariant checker (``REPRO_SIMSAN=1`` / ``sanitize=True``) that the
  engine, schedulers, and CPU model consult.

Only the sanitizer names are re-exported here: simulation modules
import them at startup, and they must stay dependency-free (``os``
only).  The linter is imported on demand by the CLI and tests.
"""

from repro.analysis.sanitizer import (
    SIMSAN_ENV, SimulationInvariantError, invariant, simsan_enabled,
)

__all__ = [
    "SIMSAN_ENV", "SimulationInvariantError", "invariant", "simsan_enabled",
]
