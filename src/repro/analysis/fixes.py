"""``--fix``: mechanical autofixes for a safe subset of findings.

Only fixes whose rewrite is semantically forced are automated:

* **RL003** (set iteration) --- wrap the flagged iterable in
  ``sorted(...)``.  The rule anchors its finding at the iterable
  expression node, so the fixer re-parses the file, finds the set
  expression at exactly that position, and splices ``sorted(`` / ``)``
  around its source span.  Sorting is the rule's own suggested rewrite;
  element order becomes deterministic and every downstream consumer
  already accepts a list.
* **Unused suppressions** (the driver-synthesized RL009 variant) ---
  delete the ``# reprolint: disable`` comment; by construction it
  silences nothing.

The *missing-reason* RL009 variant is deliberately not fixable: the
reason is the point, and only a human can write it.

``apply_fixes`` never touches a file whose finding cannot be re-located
in the current source (stale findings after an edit race just drop
out), and applies edits bottom-up so earlier spans stay valid.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.linter import SUPPRESSION_HYGIENE_CODE, Finding
from repro.analysis.rules import _is_set_expr

#: (start_offset, end_offset, replacement) --- replace source[start:end].
_Edit = Tuple[int, int, str]


def _line_starts(source: str) -> List[int]:
    starts = [0]
    for line in source.splitlines(keepends=True):
        starts.append(starts[-1] + len(line))
    return starts


def _offset(starts: List[int], line: int, col: int) -> Optional[int]:
    if not (1 <= line < len(starts) + 1):
        return None
    return starts[line - 1] + col


def _rl003_edits(source: str, tree: ast.Module,
                 findings: Sequence[Finding]) -> List[Tuple[_Edit, str]]:
    """sorted(...) wraps for RL003 findings located in this source."""
    wanted = {(f.line, f.col) for f in findings}
    starts = _line_starts(source)
    edits: List[Tuple[_Edit, str]] = []
    for node in ast.walk(tree):
        pos = (getattr(node, "lineno", None),
               getattr(node, "col_offset", None))
        if pos not in wanted or not _is_set_expr(node):
            continue
        begin = _offset(starts, node.lineno, node.col_offset)
        end = _offset(starts, node.end_lineno, node.end_col_offset)
        if begin is None or end is None or end <= begin:
            continue
        label = (f"{node.lineno}:{node.col_offset + 1}: wrapped set "
                 f"iterable in sorted(...)")
        # Two splices forming one wrap; recorded as separate edits so
        # the bottom-up application order handles them naturally.
        edits.append(((end, end, ")"), label))
        edits.append(((begin, begin, "sorted("), ""))
        wanted.discard(pos)  # one wrap per location
    return edits


def _unused_suppression_edits(
        source: str,
        findings: Sequence[Finding]) -> List[Tuple[_Edit, str]]:
    """Comment deletions for driver-synthesized unused-RL009 findings."""
    starts = _line_starts(source)
    lines = source.splitlines(keepends=True)
    edits: List[Tuple[_Edit, str]] = []
    for finding in findings:
        if not (1 <= finding.line <= len(lines)):
            continue
        text = lines[finding.line - 1]
        bare = text.rstrip("\r\n")
        if finding.col >= len(bare) or \
                not bare[finding.col:].startswith("#"):
            continue  # source moved since the analysis ran
        begin = _offset(starts, finding.line, finding.col)
        # Eat the indentation left of the comment too; a comment-only
        # line collapses to an empty line rather than trailing spaces.
        while begin > starts[finding.line - 1] and \
                source[begin - 1] in " \t":
            begin -= 1
        end = starts[finding.line - 1] + len(bare)
        edits.append(((begin, end, ""),
                      f"{finding.line}:{finding.col + 1}: removed "
                      f"unused suppression comment"))
    return edits


def _is_unused_suppression(finding: Finding) -> bool:
    return finding.code == SUPPRESSION_HYGIENE_CODE and \
        finding.message.startswith("unused ")


def fix_source(source: str,
               findings: Sequence[Finding]) -> Tuple[str, List[str]]:
    """Apply every automatable fix to one source string.

    Returns ``(new_source, descriptions)``; the source is unchanged
    when nothing was fixable.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, []
    edits: List[Tuple[_Edit, str]] = []
    edits.extend(_rl003_edits(
        source, tree, [f for f in findings if f.code == "RL003"]))
    edits.extend(_unused_suppression_edits(
        source, [f for f in findings if _is_unused_suppression(f)]))
    if not edits:
        return source, []
    descriptions = [label for _, label in edits if label]
    for (begin, end, replacement), _ in sorted(
            edits, key=lambda e: e[0][0], reverse=True):
        source = source[:begin] + replacement + source[end:]
    return source, sorted(descriptions)


def apply_fixes(findings: Sequence[Finding]) -> Dict[str, List[str]]:
    """Fix what can be fixed, in place, file by file.

    Returns path -> list of human-readable fix descriptions for every
    file that changed.
    """
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    applied: Dict[str, List[str]] = {}
    for path, file_findings in sorted(by_path.items()):
        target = Path(path)
        try:
            source = target.read_text(encoding="utf-8")
        except OSError:
            continue
        fixed, descriptions = fix_source(source, file_findings)
        if descriptions and fixed != source:
            target.write_text(fixed, encoding="utf-8")
            applied[path] = descriptions
    return applied


__all__ = ["apply_fixes", "fix_source"]
