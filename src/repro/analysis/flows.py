"""Flow analyses: wall-clock taint and RNG stream lineage.

Two families of whole-program rules ride on the call graph:

**Wall-clock taint (RL110).**  Per-file rule RL001 catches a *direct*
host-clock read outside the sanctioned ``harness.profiling`` helpers.
This analysis closes the indirect hole: a simulation-state function
(``sim/``, ``core/``, ``cpu/``, ``db/``, ``workloads/``, ``governors/``,
``metrics/``, ``obs/``, ``faults/``) that *reaches* a clock read
through any unambiguous call chain --- including through the sanctioned
helpers themselves --- makes simulated results depend on host timing,
which breaks run-to-run byte identity and poisons the sweep cache.

**RNG stream lineage (RL111-RL113).**  The determinism contract says
one named stream per stochastic concern (:mod:`repro.sim.rng`):

========  =============================================================
RL111     Shared-stream aliasing: the same literal stream name
          requested from two different modules couples their draw
          sequences --- adding a draw in one silently perturbs the
          other (variance isolation is lost).
RL112     RNG draw inside iteration over a ``set``: draw *order*
          follows hash order, so the stream's assignment of values to
          items varies with PYTHONHASHSEED even if the totals match.
RL113     Sequence-forking API (``getrandbits``/``randrange``/
          ``shuffle``/``sample``/``getstate``...) reachable on a value
          created by ``get_batched()``/``BatchedStream``: the batched
          stream serves pre-drawn blocks, so these calls would bypass
          the blocks and fork the sequence.  BatchedStream raises at
          runtime; this finds the path before a run does.
========  =============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, iter_calls
from repro.analysis.linter import Finding
from repro.analysis.project import (
    ClassInfo, FunctionInfo, ModuleInfo, Project,
)
from repro.analysis.rules import WALL_CLOCK_FQNS

PROGRAM_FLOW_RULES: Dict[str, Tuple[str, str]] = {
    "RL110": ("wall-clock-taint",
              "simulation-state function reaches a host-clock read "
              "through its call chain"),
    "RL111": ("shared-stream",
              "the same literal RNG stream name is requested from "
              "multiple modules (draw sequences couple)"),
    "RL112": ("draw-in-set-iteration",
              "RNG draw inside iteration over a set: draw order "
              "follows hash order"),
    "RL113": ("batched-stream-fork",
              "sequence-forking RNG API used on a BatchedStream value"),
}

#: Directories whose functions must never see host time.
SIM_STATE_DIRS = ("sim", "core", "governors", "cpu", "db", "workloads",
                  "metrics", "obs", "faults")

#: Receiver names that identify a RandomStreams registry.
_STREAMS_NAMES = frozenset({
    "streams", "_streams", "rng_streams", "random_streams", "rngs",
})

#: Methods that consume Mersenne-Twister words directly instead of
#: going through ``random()`` --- forbidden on a BatchedStream.
FORKING_METHODS = frozenset({
    "getrandbits", "randrange", "randint", "choice", "shuffle",
    "sample", "randbytes", "getstate", "setstate", "seed",
})

#: Distinctive draw methods (safe to match on any receiver) vs generic
#: ones (matched only on an rng-looking receiver).
_DISTINCT_DRAWS = frozenset({
    "expovariate", "normalvariate", "lognormvariate", "gauss",
    "betavariate", "gammavariate", "paretovariate", "weibullvariate",
    "vonmisesvariate", "triangular", "binomialvariate",
})
_GENERIC_DRAWS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "getrandbits",
})


def _receiver_text(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _looks_like_rng(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return any(tag in lowered for tag in ("rng", "random", "stream"))


class FlowAnalysis:
    """Runs RL110-RL113 over a project and its call graph."""

    def __init__(self, project: Project,
                 callgraph: Optional[CallGraph] = None):
        self.project = project
        self.callgraph = callgraph or CallGraph(project)
        self.findings: List[Finding] = []

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        self.findings = []
        self._check_wall_clock_taint()
        self._check_shared_streams()
        self._check_draws_in_set_iteration()
        self._check_batched_forks()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return self.findings

    def _flag(self, code: str, module: ModuleInfo, node: ast.AST,
              message: str) -> None:
        name, _ = PROGRAM_FLOW_RULES[code]
        self.findings.append(Finding(
            code, name, module.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0), message))

    # ------------------------------------------------------------------
    # RL110 --- wall-clock taint
    # ------------------------------------------------------------------
    def _direct_clock_readers(self) -> Set[str]:
        readers: Set[str] = set()
        for module in self.project.modules.values():
            for owner, call, _ in iter_calls(self.project, module):
                if owner is None:
                    continue
                fqn = module.ctx.resolve_dotted(call.func)
                if fqn is None and isinstance(call.func, ast.Name):
                    fqn = module.ctx.imported_names.get(call.func.id)
                if fqn in WALL_CLOCK_FQNS:
                    readers.add(owner.qualname)
        return readers

    def _check_wall_clock_taint(self) -> None:
        sources = self._direct_clock_readers()
        if not sources:
            return
        tainted = self.callgraph.can_reach(sources)
        for module in self.project.modules.values():
            if not module.ctx.in_dirs(SIM_STATE_DIRS):
                continue
            for owner, call, _ in iter_calls(self.project, module):
                if owner is None or owner.qualname in sources:
                    continue  # direct reads are RL001's finding
                for site in self.callgraph.calls_from.get(
                        owner.qualname, ()):
                    if site.line != getattr(call, "lineno", -1) or \
                            site.col != getattr(call, "col_offset", -1):
                        continue
                    if site.ambiguous or site.callee not in tainted:
                        continue
                    path = self.callgraph.shortest_path(
                        site.callee, sources) or [site.callee]
                    chain = " -> ".join(p.split(".")[-1] for p in path)
                    self._flag(
                        "RL110", module, call,
                        f"`{owner.qualname}` reaches a host-clock read "
                        f"via {chain}; simulation state must only see "
                        f"the virtual clock")
                    break

    # ------------------------------------------------------------------
    # RL111 --- shared literal stream names across modules
    # ------------------------------------------------------------------
    def _iter_owned_stmts(self, module: ModuleInfo) -> Iterator[
            Tuple[Optional[str], ast.AST]]:
        """Every AST node paired with the qualname of its innermost
        *indexed* enclosing function (same attribution as
        :func:`iter_calls`: nested defs belong to their outer def)."""
        def walk(node: ast.AST, owner: Optional[str], cls: Optional[str]):
            for child in ast.iter_child_nodes(node):
                next_owner, next_cls = owner, cls
                if isinstance(child, ast.ClassDef):
                    next_cls, next_owner = child.name, None
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    qual = f"{module.name}.{cls}.{child.name}" \
                        if cls else f"{module.name}.{child.name}"
                    if qual in self.project.functions:
                        next_owner = qual
                yield owner, child
                yield from walk(child, next_owner, next_cls)

        yield from walk(module.tree, None, None)

    def _spawned_locals(self, module: ModuleInfo) -> Set[Tuple[
            Optional[str], str]]:
        """``(function qualname | None, local name)`` pairs bound from a
        ``*.spawn(...)`` call: a spawned child registry derives a fresh
        seed family, so its stream names never alias another module's.
        Plain name aliases and closure default-argument bindings
        (``def cb(..., _streams=streams)``) keep the mark."""
        spawned: Set[Tuple[Optional[str], str]] = set()
        owned = list(self._iter_owned_stmts(module))
        for _ in range(4):
            added = False
            for owner, node in owned:
                if isinstance(node, ast.Assign):
                    value = node.value
                    from_spawn = (isinstance(value, ast.Call)
                                  and isinstance(value.func, ast.Attribute)
                                  and value.func.attr == "spawn")
                    aliased = (isinstance(value, ast.Name)
                               and (owner, value.id) in spawned)
                    if from_spawn or aliased:
                        for target in node.targets:
                            if isinstance(target, ast.Name) and \
                                    (owner, target.id) not in spawned:
                                spawned.add((owner, target.id))
                                added = True
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    args = node.args
                    positional = args.posonlyargs + args.args
                    for arg, default in zip(
                            positional[len(positional)
                                       - len(args.defaults):],
                            args.defaults):
                        if isinstance(default, ast.Name) and \
                                (owner, default.id) in spawned and \
                                (owner, arg.arg) not in spawned:
                            spawned.add((owner, arg.arg))
                            added = True
            if not added:
                break
        return spawned

    def _iter_stream_requests(self) -> Iterator[
            Tuple[ModuleInfo, ast.Call, str, str]]:
        """Yield ``(module, call, method, stream_name)`` for literal
        ``<streams>.get/get_batched("name")`` requests on non-spawned
        registries."""
        for module in self.project.modules.values():
            spawned = self._spawned_locals(module)
            for owner, call, _ in iter_calls(self.project, module):
                func = call.func
                if not isinstance(func, ast.Attribute) or \
                        func.attr not in ("get", "get_batched"):
                    continue
                receiver = _receiver_text(func.value)
                if receiver not in _STREAMS_NAMES:
                    continue
                key = (owner.qualname if owner else None, receiver)
                if key in spawned:
                    continue
                if not call.args or not isinstance(
                        call.args[0], ast.Constant) or not isinstance(
                        call.args[0].value, str):
                    continue
                yield module, call, func.attr, call.args[0].value

    def _check_shared_streams(self) -> None:
        by_name: Dict[str, List[Tuple[ModuleInfo, ast.Call, str]]] = {}
        for module, call, method, stream in self._iter_stream_requests():
            by_name.setdefault(stream, []).append((module, call, method))
        for stream in sorted(by_name):
            sites = by_name[stream]
            modules = sorted({m.name for m, _, _ in sites})
            if len(modules) < 2:
                continue
            for module, call, method in sites:
                others = [m for m in modules if m != module.name]
                self._flag(
                    "RL111", module, call,
                    f"stream {stream!r} ({method}) is also requested "
                    f"from {', '.join(others)}; shared streams couple "
                    f"draw sequences across components -- derive a "
                    f"distinct name or spawn() a child registry")

    # ------------------------------------------------------------------
    # RL112 --- draws inside set iteration
    # ------------------------------------------------------------------
    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset")

    def _check_draws_in_set_iteration(self) -> None:
        for module in self.project.modules.values():
            for node in ast.walk(module.tree):
                bodies: List[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)) and \
                        self._is_set_expr(node.iter):
                    bodies.extend(node.body)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    if any(self._is_set_expr(gen.iter)
                           for gen in node.generators):
                        if isinstance(node, ast.DictComp):
                            bodies.extend([node.key, node.value])
                        else:
                            bodies.append(node.elt)
                for body in bodies:
                    for inner in ast.walk(body):
                        if self._is_draw_call(inner):
                            self._flag(
                                "RL112", module, inner,
                                "RNG draw inside iteration over a set: "
                                "the value each element receives "
                                "depends on hash order; iterate "
                                "sorted(...) so draws bind "
                                "deterministically")

    @staticmethod
    def _is_draw_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Attribute):
            return False
        method = node.func.attr
        if method in _DISTINCT_DRAWS:
            return True
        if method in _GENERIC_DRAWS:
            return _looks_like_rng(_receiver_text(node.func.value))
        return False

    # ------------------------------------------------------------------
    # RL113 --- forking APIs on BatchedStream values
    # ------------------------------------------------------------------
    def _check_batched_forks(self) -> None:
        # Fixpoint state, all keyed by qualnames.
        batched_params: Dict[str, Set[str]] = {}
        batched_attrs: Dict[str, Set[str]] = {}   # class qualname -> attrs
        returns_batched: Set[str] = set()

        def is_batched_expr(module: ModuleInfo, func: FunctionInfo,
                            enclosing: Optional[ClassInfo],
                            env: Set[str], node: ast.AST) -> bool:
            if isinstance(node, ast.Name):
                if node.id in env:
                    return True
                return node.id in batched_params.get(func.qualname,
                                                     set())
            if isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and \
                        node.value.id == "self" and enclosing is not None:
                    return node.attr in batched_attrs.get(
                        enclosing.qualname, set())
                return False
            if isinstance(node, ast.Call):
                f = node.func
                if isinstance(f, ast.Attribute) and \
                        f.attr == "get_batched":
                    return True
                name = self.project.resolve_expr(module, f)
                if name is not None and \
                        name.endswith(".BatchedStream"):
                    return True
                if isinstance(f, ast.Name) and f.id == "BatchedStream":
                    return True
                targets = self.project.function_for_call(
                    module, node, enclosing_class=enclosing)
                return len(targets) == 1 and \
                    targets[0].qualname in returns_batched
            return False

        def sweep(collect: bool) -> bool:
            changed = False
            for module in self.project.modules.values():
                for owner_func, enclosing in self._iter_funcs(module):
                    env: Set[str] = set()
                    for stmt in ast.walk(owner_func.node):
                        if isinstance(stmt, ast.Assign) and \
                                is_batched_expr(module, owner_func,
                                                enclosing, env,
                                                stmt.value):
                            for target in stmt.targets:
                                if isinstance(target, ast.Name):
                                    if target.id not in env:
                                        env.add(target.id)
                                elif isinstance(target, ast.Attribute) \
                                        and isinstance(target.value,
                                                       ast.Name) \
                                        and target.value.id == "self" \
                                        and enclosing is not None:
                                    attrs = batched_attrs.setdefault(
                                        enclosing.qualname, set())
                                    if target.attr not in attrs:
                                        attrs.add(target.attr)
                                        changed = True
                        elif isinstance(stmt, ast.Return) and \
                                stmt.value is not None and \
                                is_batched_expr(module, owner_func,
                                                enclosing, env,
                                                stmt.value):
                            if owner_func.qualname not in returns_batched:
                                returns_batched.add(owner_func.qualname)
                                changed = True
                    # Re-walk for calls with the final env.
                    for node in ast.walk(owner_func.node):
                        if not isinstance(node, ast.Call):
                            continue
                        func = node.func
                        if isinstance(func, ast.Attribute) and \
                                func.attr in FORKING_METHODS and \
                                is_batched_expr(module, owner_func,
                                                enclosing, env,
                                                func.value):
                            if collect:
                                self._flag(
                                    "RL113", module, node,
                                    f"`{func.attr}()` on a "
                                    f"BatchedStream value: it bypasses "
                                    f"the pre-drawn blocks and forks "
                                    f"the draw sequence (raises at "
                                    f"runtime); use an unbatched "
                                    f"stream for this draw")
                            continue
                        targets = self.project.function_for_call(
                            module, node, enclosing_class=enclosing)
                        if len(targets) != 1 or \
                                any(isinstance(a, ast.Starred)
                                    for a in node.args):
                            continue
                        target = targets[0]
                        params = target.params
                        for i, arg in enumerate(node.args):
                            if i < len(params) and is_batched_expr(
                                    module, owner_func, enclosing, env,
                                    arg):
                                marked = batched_params.setdefault(
                                    target.qualname, set())
                                if params[i] not in marked:
                                    marked.add(params[i])
                                    changed = True
                        for kw in node.keywords:
                            if kw.arg is not None and is_batched_expr(
                                    module, owner_func, enclosing, env,
                                    kw.value):
                                marked = batched_params.setdefault(
                                    target.qualname, set())
                                if kw.arg not in marked:
                                    marked.add(kw.arg)
                                    changed = True
            return changed

        for _ in range(8):
            if not sweep(collect=False):
                break
        sweep(collect=True)
        # One param flagged in multiple fixpoint rounds could duplicate;
        # final collect runs once, so findings are already unique.

    def _iter_funcs(self, module: ModuleInfo) -> Iterator[
            Tuple[FunctionInfo, Optional[ClassInfo]]]:
        for func in self.project.functions.values():
            if func.module != module.name:
                continue
            enclosing = None
            if func.class_name is not None:
                enclosing = self.project.classes.get(
                    f"{module.name}.{func.class_name}")
            yield func, enclosing


__all__ = [
    "FORKING_METHODS", "FlowAnalysis", "PROGRAM_FLOW_RULES",
    "SIM_STATE_DIRS",
]
