"""The reprolint driver: one entry point over both rule layers.

``run_analysis`` orchestrates

1. the **per-file** AST rules (RL001-RL009, :mod:`repro.analysis.rules`)
   over every target file,
2. the **whole-program** analyses --- unit-dimension inference
   (RL101-RL104, :mod:`repro.analysis.units`) and wall-clock/RNG flow
   analysis (RL110-RL113, :mod:`repro.analysis.flows`) --- over the
   project model built once from all target files, and
3. **suppression accounting**: program findings honour the same
   ``# reprolint: disable`` comments as per-file ones (looked up
   through the module's :class:`FileContext`), and on a full run every
   suppression that silenced nothing is reported as an unused-RL009
   finding, so dead opt-outs cannot linger.

Incremental mode (``cache_path``) persists per-file results keyed on
``(mtime_ns, sha256)`` plus one program-level fingerprint over all
file hashes, so a pre-commit run on an unchanged tree does no AST
work at all.  The cache is an optimisation only: a cold, stale, or
corrupt cache file just means a full re-analysis.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import rules  # noqa: F401 - populates the registry
from repro.analysis.linter import (
    PARSE_ERROR_CODE, SUPPRESSION_HYGIENE_CODE, FileContext, Finding,
    Suppression, _select_rules, iter_python_files, parse_suppressions,
    suppression_covers,
)

CACHE_VERSION = 1

#: Whole-program rule codes, by analysis.
UNIT_CODES = ("RL101", "RL102", "RL103", "RL104")
FLOW_CODES = ("RL110", "RL111", "RL112", "RL113")
PROGRAM_CODES = UNIT_CODES + FLOW_CODES


def program_rule_table() -> List[Tuple[str, str, str]]:
    """(code, name, description) for the whole-program rules."""
    from repro.analysis.flows import PROGRAM_FLOW_RULES
    from repro.analysis.units import PROGRAM_UNIT_RULES
    merged = {**PROGRAM_UNIT_RULES, **PROGRAM_FLOW_RULES}
    return [(code, name, desc)
            for code, (name, desc) in sorted(merged.items())]


@dataclass
class AnalysisResult:
    """Everything one analysis run produced, before baselining."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    files_from_cache: int = 0
    program_ran: bool = False

    def sort(self) -> None:
        key = lambda f: (f.path, f.line, f.col, f.code)  # noqa: E731
        self.findings.sort(key=key)
        self.suppressed.sort(key=key)


# ----------------------------------------------------------------------
# Per-file unit of work (cacheable)
# ----------------------------------------------------------------------
@dataclass
class _FileResult:
    kept: List[Finding]
    suppressed: List[Finding]
    used_lines: List[int]
    suppressions: List[Suppression]

    def to_dict(self) -> Dict[str, object]:
        return {
            "kept": [f.to_dict() for f in self.kept],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "used_lines": sorted(self.used_lines),
            "suppressions": [s.to_dict() for s in self.suppressions],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "_FileResult":
        return cls(
            kept=_findings_from(payload.get("kept", [])),
            suppressed=_findings_from(payload.get("suppressed", [])),
            used_lines=[int(n) for n in payload.get("used_lines", [])],
            suppressions=[Suppression.from_dict(d)
                          for d in payload.get("suppressions", [])],
        )


def _lint_one(path: str, source: str,
              select: Optional[Sequence[str]]) -> _FileResult:
    """Run the per-file rules, partitioning kept vs suppressed."""
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return _FileResult(
            kept=[Finding(PARSE_ERROR_CODE, "parse-error", str(path),
                          exc.lineno or 0, exc.offset or 0,
                          f"cannot parse file: {exc.msg}")],
            suppressed=[], used_lines=[],
            suppressions=list(parse_suppressions(source).values()))
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    used: Set[int] = set()
    for rule in _select_rules(select):
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.code, finding.line):
                suppressed.append(finding)
                used.add(finding.line)
            else:
                kept.append(finding)
    return _FileResult(kept=kept, suppressed=suppressed,
                       used_lines=sorted(used),
                       suppressions=list(ctx.suppressions.values()))


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
class _Cache:
    """``.reprolint-cache.json``: per-file and program-level results."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.files: Dict[str, Dict] = {}
        self.program: Dict[str, object] = {}
        self.dirty = False
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            if payload.get("version") == CACHE_VERSION:
                self.files = payload.get("files", {})
                self.program = payload.get("program", {})
        except (OSError, ValueError):
            pass  # cold/corrupt cache: plain full run

    def lookup(self, path: str, mtime_ns: int,
               sha: Optional[str]) -> Optional[Dict]:
        """The cached entry when it still matches the file on disk.

        ``sha=None`` means the caller has not hashed the file yet and
        only an mtime match counts; with a hash, a content match
        revalidates the entry even after a touch.
        """
        entry = self.files.get(path)
        if entry is None:
            return None
        if entry.get("mtime_ns") == mtime_ns:  # reprolint: disable=RL004 - exact integer os.stat key, not computed time
            return entry
        if sha is not None and entry.get("sha256") == sha:
            entry["mtime_ns"] = mtime_ns  # touch-only change
            self.dirty = True
            return entry
        return None

    def store(self, path: str, mtime_ns: int, sha: str,
              result: _FileResult) -> None:
        payload = result.to_dict()
        payload.update({"mtime_ns": mtime_ns, "sha256": sha})
        self.files[path] = payload
        self.dirty = True

    def save(self, current_paths: Iterable[str]) -> None:
        keep = set(current_paths)
        stale = [p for p in self.files if p not in keep]
        for p in stale:
            del self.files[p]
        if stale:
            self.dirty = True
        if not self.dirty:
            return
        payload = {"version": CACHE_VERSION, "files": self.files,
                   "program": self.program}
        self.path.write_text(json.dumps(payload, sort_keys=True) + "\n",
                             encoding="utf-8")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _findings_from(payloads: Iterable[Dict]) -> List[Finding]:
    return [Finding(code=d["code"], rule=d["rule"], path=d["path"],
                    line=int(d["line"]), col=int(d["col"]),
                    message=d["message"]) for d in payloads]


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def _wants_program(select: Optional[Sequence[str]]) -> bool:
    if select is None:
        return True
    return any(code in PROGRAM_CODES for code in select)


def _run_program_rules(paths: Sequence,
                       select: Optional[Sequence[str]]) -> List[Finding]:
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.flows import FlowAnalysis
    from repro.analysis.project import Project
    from repro.analysis.units import UnitAnalysis

    wanted = None if select is None else set(select)
    run_units = wanted is None or any(c in wanted for c in UNIT_CODES)
    run_flows = wanted is None or any(c in wanted for c in FLOW_CODES)
    project = Project.load(paths)
    findings: List[Finding] = []
    if run_units:
        findings.extend(UnitAnalysis(project).run())
    if run_flows:
        findings.extend(FlowAnalysis(project, CallGraph(project)).run())
    if wanted is not None:
        findings = [f for f in findings if f.code in wanted]
    return findings


def _unused_suppression_findings(
        per_file: Dict[str, _FileResult],
        used_program: Dict[str, Set[int]]) -> Tuple[List[Finding],
                                                    List[Finding]]:
    """Synthesize RL009 findings for suppressions that silenced nothing.

    Returns (kept, suppressed): an unused-suppression finding whose
    comment explicitly lists RL009 is itself suppressed (the sanctioned
    opt-out), everything else is reported.
    """
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for path, result in per_file.items():
        used = set(result.used_lines) | used_program.get(path, set())
        reasonless = {f.line for f in result.kept + result.suppressed
                      if f.code == SUPPRESSION_HYGIENE_CODE}
        for sup in result.suppressions:
            if sup.line in used:
                continue
            if sup.line in reasonless:
                continue  # already flagged for the missing reason
            what = "blanket suppression" if sup.codes is None else \
                f"suppression of {', '.join(sorted(sup.codes))}"
            finding = Finding(
                SUPPRESSION_HYGIENE_CODE, "suppression-hygiene", path,
                sup.line, sup.col,
                f"unused {what}: no finding on this line needs it; "
                f"remove the disable comment")
            if sup.codes is not None and \
                    SUPPRESSION_HYGIENE_CODE in sup.codes:
                suppressed.append(finding)
            else:
                kept.append(finding)
    return kept, suppressed


def run_analysis(paths: Sequence,
                 select: Optional[Sequence[str]] = None,
                 cache_path=None) -> AnalysisResult:
    """Analyze ``paths`` with both rule layers; see the module docstring.

    ``select`` restricts the run to the listed codes (per-file and/or
    program); unused-suppression detection only happens on unrestricted
    runs, where "nothing needed this suppression" is actually known.
    """
    result = AnalysisResult()
    # The cache only describes unrestricted runs; a --select run with a
    # cache would poison (or be poisoned by) full-run entries.
    cache = _Cache(cache_path) \
        if cache_path is not None and select is None else None

    files = [str(p) for p in iter_python_files(paths)]
    per_file: Dict[str, _FileResult] = {}
    hashes: Dict[str, str] = {}
    for path in files:
        entry = None
        mtime_ns = 0
        if cache is not None:
            try:
                mtime_ns = os.stat(path).st_mtime_ns
            except OSError:
                mtime_ns = 0
            entry = cache.lookup(path, mtime_ns, None)
        if entry is not None:
            hashes[path] = str(entry["sha256"])
            per_file[path] = _FileResult.from_dict(entry)
            result.files_from_cache += 1
            continue
        data = Path(path).read_bytes()
        sha = _sha256(data)
        hashes[path] = sha
        if cache is not None:
            entry = cache.lookup(path, mtime_ns, sha)
            if entry is not None:
                per_file[path] = _FileResult.from_dict(entry)
                result.files_from_cache += 1
                continue
        file_result = _lint_one(path, data.decode("utf-8"), select)
        per_file[path] = file_result
        if cache is not None:
            cache.store(path, mtime_ns, sha, file_result)
    result.files_checked = len(files)

    for file_result in per_file.values():
        result.findings.extend(file_result.kept)
        result.suppressed.extend(file_result.suppressed)

    # ------------------------------------------------------------------
    # Whole-program layer
    # ------------------------------------------------------------------
    used_program: Dict[str, Set[int]] = {}
    if _wants_program(select):
        fingerprint = _sha256("\n".join(
            f"{p}:{hashes[p]}" for p in sorted(hashes)).encode("utf-8"))
        if cache is not None and \
                cache.program.get("fingerprint") == fingerprint:
            cached = cache.program
            program_findings = _findings_from(cached.get("findings", []))
            program_suppressed = _findings_from(
                cached.get("suppressed", []))
            used_program = {p: set(lines) for p, lines in
                            cached.get("used_lines", {}).items()}
        else:
            raw = _run_program_rules(paths, select)
            # Program findings honour per-file disable comments.
            program_findings = []
            program_suppressed = []
            suppressions = {
                path: {s.line: s for s in file_result.suppressions}
                for path, file_result in per_file.items()}
            for finding in raw:
                sup = suppressions.get(finding.path, {}) \
                    .get(finding.line)
                if sup is not None and \
                        suppression_covers(sup, finding.code):
                    program_suppressed.append(finding)
                    used_program.setdefault(finding.path,
                                            set()).add(finding.line)
                else:
                    program_findings.append(finding)
            if cache is not None:
                cache.program = {
                    "fingerprint": fingerprint,
                    "findings": [f.to_dict()
                                 for f in program_findings],
                    "suppressed": [f.to_dict()
                                   for f in program_suppressed],
                    "used_lines": {p: sorted(lines) for p, lines
                                   in used_program.items()},
                }
                cache.dirty = True
        result.findings.extend(program_findings)
        result.suppressed.extend(program_suppressed)
        result.program_ran = True

    # ------------------------------------------------------------------
    # Unused suppressions (full runs only)
    # ------------------------------------------------------------------
    if select is None and result.program_ran:
        unused_kept, unused_suppressed = _unused_suppression_findings(
            per_file, used_program)
        result.findings.extend(unused_kept)
        result.suppressed.extend(unused_suppressed)

    if cache is not None:
        cache.save(files)
    result.sort()
    return result


__all__ = ["AnalysisResult", "FLOW_CODES", "PROGRAM_CODES", "UNIT_CODES",
           "program_rule_table", "run_analysis"]
