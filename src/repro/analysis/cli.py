"""``python -m repro.analysis`` --- the reprolint command line.

Exit status is 1 when any unsuppressed finding remains (CI fails on
it), 2 on usage errors, 0 on a clean tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import rules  # noqa: F401 - populates the registry
from repro.analysis.linter import (
    RULE_REGISTRY, iter_python_files, lint_file, render_json, render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("reprolint: determinism/invariant lint rules for "
                     "the POLARIS reproduction"))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also report findings silenced by "
             "`# reprolint: disable` comments")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    return parser


def list_rules() -> str:
    lines = []
    for code, cls in sorted(RULE_REGISTRY.items()):
        lines.append(f"{code}  {cls.name:<22} {cls.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [c.strip().upper() for c in args.select.split(",")
                  if c.strip()]
        unknown = [c for c in select if c not in RULE_REGISTRY]
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(unknown)}")

    files = list(iter_python_files(args.paths))
    findings = []
    for path in files:
        findings.extend(lint_file(
            path, select=select,
            include_suppressed=args.show_suppressed))

    if args.format == "json":
        print(render_json(findings, files_checked=len(files)))
    else:
        print(render_text(findings, files_checked=len(files)))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["build_parser", "list_rules", "main"]
