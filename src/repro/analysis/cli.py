"""``python -m repro.analysis`` --- the reprolint command line.

v2 drives both rule layers through :mod:`repro.analysis.driver` and
adds the CI enforcement surface:

``--baseline FILE``
    Apply the checked-in finding baseline; only *new* findings fail
    the run.  ``--update-baseline`` rewrites the file ratcheted down
    to the current findings (stale entries pruned, reasons preserved).
``--sarif [FILE]``
    Emit SARIF 2.1.0 (to FILE, or stdout with no argument) for CI
    annotation surfaces; composes with ``--baseline`` via
    ``baselineState``.
``--fix``
    Apply the mechanical autofixes (RL003 ``sorted()`` wraps, unused
    suppression removal) and re-analyze.
``--incremental [CACHE]``
    Reuse per-file and program results for unchanged files via the
    cache file (default ``.reprolint-cache.json``).

Exit status: 0 when clean or fully baselined, 1 when new findings
remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import rules  # noqa: F401 - populates the registry
from repro.analysis.driver import (
    PROGRAM_CODES, AnalysisResult, program_rule_table, run_analysis,
)
from repro.analysis.linter import RULE_REGISTRY, render_json, render_text

DEFAULT_CACHE = ".reprolint-cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("reprolint: determinism/invariant lint rules and "
                     "whole-program unit/RNG-flow analysis for the "
                     "POLARIS reproduction"))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all, "
             "including the whole-program RL1xx rules)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also report findings silenced by "
             "`# reprolint: disable` comments")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    parser.add_argument(
        "--no-program", action="store_true",
        help="per-file rules only; skip the whole-program analyses")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="apply the finding baseline; only new findings fail")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE from the current findings "
             "(ratchet: stale entries pruned, reasons preserved)")
    parser.add_argument(
        "--sarif", metavar="FILE", nargs="?", const="-",
        help="write a SARIF 2.1.0 log to FILE (stdout if omitted)")
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical autofixes, then re-analyze")
    parser.add_argument(
        "--incremental", metavar="CACHE", nargs="?", const=DEFAULT_CACHE,
        help=f"cache per-file/program results keyed on file hashes "
             f"(default cache file: {DEFAULT_CACHE})")
    return parser


def list_rules() -> str:
    lines = ["per-file rules:"]
    for code, cls in sorted(RULE_REGISTRY.items()):
        lines.append(f"  {code}  {cls.name:<22} {cls.description}")
    lines.append("whole-program rules:")
    for code, name, description in program_rule_table():
        lines.append(f"  {code}  {name:<22} {description}")
    return "\n".join(lines)


def _parse_select(parser: argparse.ArgumentParser,
                  raw: Optional[str]) -> Optional[List[str]]:
    if not raw:
        return None
    select = [c.strip().upper() for c in raw.split(",") if c.strip()]
    known = set(RULE_REGISTRY) | set(PROGRAM_CODES)
    unknown = [c for c in select if c not in known]
    if unknown:
        parser.error(f"unknown rule code(s): {', '.join(unknown)}")
    return select


def _analyze(args, select: Optional[List[str]]) -> AnalysisResult:
    if args.no_program:
        effective = select if select is not None else \
            sorted(RULE_REGISTRY)
        effective = [c for c in effective if c not in PROGRAM_CODES]
    else:
        effective = select
    return run_analysis(args.paths, select=effective,
                        cache_path=args.incremental)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline FILE")

    select = _parse_select(parser, args.select)

    from repro.harness.profiling import perf_clock
    started = perf_clock()
    result = _analyze(args, select)

    if args.fix and result.findings:
        from repro.analysis.fixes import apply_fixes
        applied = apply_fixes(result.findings)
        for path, descriptions in sorted(applied.items()):
            for description in descriptions:
                print(f"fixed {path}:{description}", file=sys.stderr)
        if applied:
            result = _analyze(args, select)

    new = list(result.findings)
    baselined: List = []
    stale: List[str] = []
    baseline = None
    if args.baseline:
        from repro.analysis.baseline import Baseline
        baseline = Baseline.load(args.baseline)
        new, baselined, stale = baseline.partition(result.findings)
        if args.update_baseline:
            baseline.updated(result.findings).save(args.baseline)

    elapsed_s = perf_clock() - started

    if args.sarif is not None:
        from repro.analysis.sarif import render_sarif
        log = render_sarif(new, baselined,
                           baseline_applied=baseline is not None)
        if args.sarif == "-":
            print(log)
        else:
            with open(args.sarif, "w", encoding="utf-8") as handle:
                handle.write(log + "\n")

    reported = new + (result.suppressed if args.show_suppressed else [])
    reported.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    if args.sarif != "-":
        if args.format == "json":
            print(render_json(reported,
                              files_checked=result.files_checked))
        else:
            print(render_text(reported,
                              files_checked=result.files_checked))
            notes = [f"analyzed {result.files_checked} file(s) in "
                     f"{elapsed_s:.2f}s"]
            if result.files_from_cache:
                notes.append(
                    f"{result.files_from_cache} from cache")
            if baseline is not None:
                notes.append(f"{len(baselined)} baselined finding(s)")
                if stale:
                    notes.append(
                        f"{len(stale)} stale baseline entr"
                        f"{'y' if len(stale) == 1 else 'ies'}"
                        + ("" if args.update_baseline
                           else " (run --update-baseline)"))
            print("reprolint: " + ", ".join(notes))

    if args.update_baseline:
        return 0
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["build_parser", "list_rules", "main"]
