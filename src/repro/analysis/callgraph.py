"""Call-graph construction and reachability over a :class:`Project`.

The graph is a conservative over-approximation: an edge ``A -> B``
means "a call expression in ``A``'s body may land on ``B``".  Direct
calls, constructor calls, and ``self.method`` dispatch resolve to a
single target; attribute calls on unknown receivers fan out to every
project method of that name (capped --- a call to a name defined on
dozens of classes carries no information and would only add noise).

Reachability queries power the flow analyses: "can this engine function
reach a wall-clock read?", "does a BatchedStream ever flow into
``shuffle``?".  Edges are tagged with the call site so findings can
show the *path*, not just the endpoints.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.project import (
    ClassInfo, FunctionInfo, ModuleInfo, Project,
)

#: An attribute call matching more project methods than this resolves
#: to nothing: past that fan-out the edge set is noise, not signal.
MAX_ATTR_CANDIDATES = 6


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    caller: str              #: qualname of the enclosing function
    callee: str              #: qualname of a candidate target
    line: int
    col: int
    ambiguous: bool          #: True when resolved via the name index


def iter_calls(project: Project, module: ModuleInfo) -> Iterator[
        Tuple[Optional[FunctionInfo], ast.Call, Optional[ClassInfo]]]:
    """Yield ``(enclosing_function, call, enclosing_class)`` for every
    call expression in ``module``; the enclosing function is the
    innermost named def (lambdas/comprehensions attribute to it)."""

    def walk(node: ast.AST, owner: Optional[FunctionInfo],
             cls: Optional[ClassInfo]):
        for child in ast.iter_child_nodes(node):
            next_owner, next_cls = owner, cls
            if isinstance(child, ast.ClassDef):
                next_cls = project.classes.get(
                    f"{module.name}.{child.name}")
                next_owner = None
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                if cls is not None:
                    qual = f"{module.name}.{cls.name}.{child.name}"
                else:
                    qual = f"{module.name}.{child.name}"
                next_owner = project.functions.get(qual, owner)
            if isinstance(child, ast.Call):
                yield owner, child, cls
            yield from walk(child, next_owner, next_cls)

    yield from walk(module.tree, None, None)


class CallGraph:
    """Directed multigraph of call sites between project functions."""

    def __init__(self, project: Project):
        self.project = project
        self.edges: List[CallSite] = []
        #: caller qualname -> callee qualnames (deduplicated)
        self.successors: Dict[str, Set[str]] = {}
        #: callee qualname -> caller qualnames
        self.predecessors: Dict[str, Set[str]] = {}
        #: function qualname -> call sites made from its body
        self.calls_from: Dict[str, List[CallSite]] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for module in self.project.modules.values():
            for owner, call, enclosing in iter_calls(self.project, module):
                caller = owner.qualname if owner is not None \
                    else f"{module.name}.<module>"
                targets = self.project.function_for_call(
                    module, call, enclosing_class=enclosing)
                ambiguous = len(targets) > 1
                if ambiguous and len(targets) > MAX_ATTR_CANDIDATES:
                    continue
                for target in targets:
                    self._add(CallSite(
                        caller=caller, callee=target.qualname,
                        line=getattr(call, "lineno", 0),
                        col=getattr(call, "col_offset", 0),
                        ambiguous=ambiguous))

    def _add(self, site: CallSite) -> None:
        self.edges.append(site)
        self.successors.setdefault(site.caller, set()).add(site.callee)
        self.predecessors.setdefault(site.callee, set()).add(site.caller)
        self.calls_from.setdefault(site.caller, []).append(site)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable_from(self, roots: Iterable[str],
                       include_ambiguous: bool = True) -> Set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            for site in self.calls_from.get(name, ()):
                if include_ambiguous or not site.ambiguous:
                    stack.append(site.callee)
        return seen

    def can_reach(self, sinks: Iterable[str],
                  include_ambiguous: bool = False) -> Set[str]:
        """Every function from which some sink is reachable.

        This is backward reachability over the edge set --- the taint
        query.  Ambiguous edges are *excluded* by default: taint through
        a many-candidate method name is overwhelmingly a false positive.
        """
        tainted: Set[str] = set()
        stack = list(sinks)
        while stack:
            name = stack.pop()
            if name in tainted:
                continue
            tainted.add(name)
            for caller in sorted(self.predecessors.get(name, ())):
                if caller in tainted:
                    continue
                for site in self.calls_from.get(caller, ()):
                    if site.callee == name and \
                            (include_ambiguous or not site.ambiguous):
                        stack.append(caller)
                        break
        return tainted

    def shortest_path(self, source: str,
                      sinks: Set[str],
                      include_ambiguous: bool = False,
                      ) -> Optional[List[str]]:
        """BFS path from ``source`` to any of ``sinks`` (inclusive)."""
        if source in sinks:
            return [source]
        parents: Dict[str, str] = {}
        queue = [source]
        seen = {source}
        while queue:
            name = queue.pop(0)
            succs = set()
            for site in self.calls_from.get(name, ()):
                if include_ambiguous or not site.ambiguous:
                    succs.add(site.callee)
            for succ in sorted(succs):
                if succ in seen:
                    continue
                parents[succ] = name
                if succ in sinks:
                    path = [succ]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    return path[::-1]
                seen.add(succ)
                queue.append(succ)
        return None


__all__ = ["CallGraph", "CallSite", "MAX_ATTR_CANDIDATES", "iter_calls"]
