"""reprolint --- an AST lint framework for determinism/invariant rules.

The framework is deliberately small: a rule is a class with a ``code``
(``RL###``), a ``name``, and a ``check(ctx)`` generator yielding
:class:`Finding` objects; rules register themselves with
:func:`register` and :func:`lint_source` runs every registered (or
selected) rule over one parsed file.  The rules themselves live in
:mod:`repro.analysis.rules` and are specific to this codebase's
determinism contract --- see that module and ``README.md`` for the rule
table.

Suppressions
------------
A finding is suppressed by a trailing comment on the *flagged line*::

    t = time.time()  # reprolint: disable=RL001 - reason why this is fine

``disable=RL001,RL004`` suppresses several codes at once and a bare
``# reprolint: disable`` (no codes) suppresses every rule on that line.
Suppressions must carry a reason after the code list: since v2 the
RL009 hygiene rule flags reasonless comments, and the driver reports
suppressions that silenced nothing as unused.

Paths
-----
Rules that only apply to parts of the tree (e.g. RL006's unit-suffix
discipline in ``cpu/``, ``sim/``, ``core/``) scope themselves on the
file's path *relative to the* ``repro`` *package* (``sim/engine.py``).
Files outside a ``repro`` directory only see the unscoped rules, so the
linter stays usable on scratch files and test fixtures.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type,
)

#: A suppression comment: ``reprolint: disable`` optionally followed
#: by ``=CODE,...`` and ``- reason``.  Matched against *comment tokens*
#: (see :func:`parse_suppressions`) and anchored at the comment start,
#: so prose that merely mentions the syntax (docstrings, ``#:`` doc
#: comments like this one) never parses as a suppression.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?:=(?P<codes>[A-Za-z0-9_,\s]*?))?"
    r"(?:\s*-\s*(?P<reason>\S.*))?$")

#: Finding code used when a file cannot be parsed at all.
PARSE_ERROR_CODE = "RL000"

#: Suppression-hygiene rule code: comments without a reason, and
#: suppressions that silence nothing, are findings themselves.  The
#: code is special-cased in :meth:`FileContext.is_suppressed` --- a
#: blanket or reasonless comment cannot silence the finding *about*
#: that comment; only an explicit ``disable=RL009`` listing can.
SUPPRESSION_HYGIENE_CODE = "RL009"


@dataclass(frozen=True)
class Finding:
    """One lint finding, pinned to a source location."""

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code, "rule": self.rule, "path": self.path,
            "line": self.line, "col": self.col, "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One ``# reprolint: disable`` comment."""

    line: int
    col: int                       #: column where the comment starts
    codes: Optional[frozenset]     #: ``None`` = blanket (all codes)
    reason: str                    #: "" when no ``- reason`` was given

    def covers(self, code: str) -> bool:
        return self.codes is None or code in self.codes

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "col": self.col,
                "codes": sorted(self.codes) if self.codes is not None
                else None,
                "reason": self.reason}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Suppression":
        codes = payload.get("codes")
        return cls(line=int(payload["line"]), col=int(payload["col"]),
                   codes=frozenset(codes) if codes is not None else None,
                   reason=str(payload.get("reason", "")))


def suppression_covers(suppression: Suppression, code: str) -> bool:
    """Whether one disable comment silences ``code`` --- with the RL009
    special case: the hygiene finding about a comment is silenced only
    by an *explicit* RL009 listing, never by the blanket form it is
    complaining about."""
    if code == SUPPRESSION_HYGIENE_CODE:
        return suppression.codes is not None and \
            code in suppression.codes
    return suppression.covers(code)


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Map line number -> the suppression comment on that line.

    Comments are found by tokenizing, not by grepping lines, so a
    docstring showing the ``# reprolint: disable`` syntax is not a
    suppression; and the pattern must start the comment, so a doc
    comment mentioning it mid-text is not one either.  When the file
    does not tokenize (the per-file linter reports RL000 for it) the
    line-grep fallback keeps suppression data available.
    """
    suppressions: Dict[int, Suppression] = {}
    for lineno, col, text in _iter_comments(source):
        match = _SUPPRESS_RE.match(text)
        if match is None:
            continue
        codes = match.group("codes")
        reason = match.group("reason") or ""
        parsed: Optional[frozenset] = None
        if codes is not None and codes.strip():
            parsed = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip())
        suppressions[lineno] = Suppression(
            line=lineno, col=col, codes=parsed, reason=reason.strip())
    return suppressions


def _iter_comments(source: str) -> Iterator[Tuple[int, int, str]]:
    """(line, col, text) for every comment token in ``source``."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable file: fall back to grepping raw lines so the
        # suppression table still exists alongside the RL000 finding.
        for lineno, text in enumerate(source.splitlines(), start=1):
            hash_at = text.find("#")
            if hash_at >= 0:
                yield lineno, hash_at, text[hash_at:]


class FileContext:
    """Everything a rule needs about one source file.

    Attributes
    ----------
    path / rel:
        The path as given, and the path relative to the innermost
        ``repro`` package directory (``sim/engine.py``); ``rel`` falls
        back to the bare filename when the path has no ``repro`` part.
    tree:
        The parsed :mod:`ast` module.
    module_aliases:
        Local name -> imported module (``import random as rnd`` binds
        ``rnd -> random``).
    imported_names:
        Local name -> dotted origin for ``from``-imports
        (``from time import perf_counter`` binds
        ``perf_counter -> time.perf_counter``).
    """

    def __init__(self, path: str, source: str):
        self.path = str(path)
        self.source = source
        self.tree = ast.parse(source)
        parts = Path(self.path).parts
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            self.rel = "/".join(parts[anchor + 1:])
        else:
            self.rel = Path(self.path).name
        self.suppressions = parse_suppressions(source)
        self.module_aliases: Dict[str, str] = {}
        self.imported_names: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.imported_names[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    # ------------------------------------------------------------------
    def in_dirs(self, dirs: Iterable[str]) -> bool:
        """Whether this file sits under one of the package directories."""
        head = self.rel.split("/", 1)[0]
        return head in set(dirs)

    def is_suppressed(self, code: str, line: int) -> bool:
        suppression = self.suppressions.get(line)
        if suppression is None:
            return False
        return suppression_covers(suppression, code)

    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Fully-qualify a ``Name``/``Attribute`` chain through imports.

        ``time.perf_counter`` -> ``"time.perf_counter"``;
        with ``from datetime import datetime``, ``datetime.now`` ->
        ``"datetime.datetime.now"``.  Returns ``None`` for anything that
        is not a plain dotted chain rooted at an imported name.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.module_aliases:
            base = self.module_aliases[root]
        elif root in self.imported_names:
            base = self.imported_names[root]
        else:
            return None
        return ".".join([base] + chain[::-1])


class LintRule:
    """Base class: subclass, set ``code``/``name``/``description``,
    implement :meth:`check` as a generator of findings."""

    code = "RL000"
    name = "base"
    description = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - generator typing aid

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(self.code, self.name, ctx.path,
                       getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0), message)


#: code -> rule class; populated by the :func:`register` decorator.
RULE_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the registry (unique codes)."""
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def _select_rules(select: Optional[Iterable[str]]) -> List[LintRule]:
    wanted = None if select is None else {c.upper() for c in select}
    rules = []
    for code in sorted(RULE_REGISTRY):
        if wanted is None or code in wanted:
            rules.append(RULE_REGISTRY[code]())
    return rules


def lint_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None,
                include_suppressed: bool = False) -> List[Finding]:
    """Run the registered rules over one source string.

    Returns findings ordered by (line, col, code); suppressed findings
    are dropped unless ``include_suppressed`` asks for them (used by the
    self-tests and ``--show-suppressed``).
    """
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [Finding(PARSE_ERROR_CODE, "parse-error", str(path),
                        exc.lineno or 0, exc.offset or 0,
                        f"cannot parse file: {exc.msg}")]
    findings: List[Finding] = []
    for rule in _select_rules(select):
        for finding in rule.check(ctx):
            if include_suppressed or \
                    not ctx.is_suppressed(finding.code, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def lint_file(path, select: Optional[Iterable[str]] = None,
              include_suppressed: bool = False) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select,
                       include_suppressed=include_suppressed)


def iter_python_files(paths: Sequence) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted, skipping
    hidden directories, caches, and egg-info."""
    skip_parts = {"__pycache__"}
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for path in sorted(entry.rglob("*.py")):
                parts = path.parts
                if any(p in skip_parts or p.startswith(".")
                       or p.endswith(".egg-info") for p in parts):
                    continue
                yield path
        elif entry.suffix == ".py":
            yield entry


def lint_paths(paths: Sequence, select: Optional[Iterable[str]] = None,
               include_suppressed: bool = False) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select,
                                  include_suppressed=include_suppressed))
    return findings


# ----------------------------------------------------------------------
# Output
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    lines = [f.format() for f in findings]
    per_code: Dict[str, int] = {}
    for f in findings:
        per_code[f.code] = per_code.get(f.code, 0) + 1
    summary = ", ".join(f"{code}: {count}"
                        for code, count in sorted(per_code.items()))
    lines.append(
        f"reprolint: {len(findings)} finding(s) in {files_checked} file(s)"
        + (f" [{summary}]" if summary else ""))
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    return json.dumps({
        "findings": [f.to_dict() for f in findings],
        "files_checked": files_checked,
        "counts": _count_by_code(findings),
    }, indent=2, sort_keys=True)


def _count_by_code(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    return counts


__all__ = [
    "FileContext", "Finding", "LintRule", "PARSE_ERROR_CODE",
    "RULE_REGISTRY", "SUPPRESSION_HYGIENE_CODE", "Suppression",
    "iter_python_files", "lint_file", "lint_paths", "lint_source",
    "parse_suppressions", "register", "render_json", "render_text",
    "suppression_covers",
]
