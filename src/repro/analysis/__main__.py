"""Entry point: ``python -m repro.analysis [paths...]``."""

import sys

from repro.analysis.cli import main

try:
    code = main()
except BrokenPipeError:
    # Output piped into head/less that exited early; not an error.
    sys.stderr.close()
    code = 0
sys.exit(code)
