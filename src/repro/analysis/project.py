"""Whole-program project model: modules, symbols, import resolution.

reprolint v1 ran every rule over one file at a time, so a rule could
never see that ``cpu/msr.py`` passes a microsecond value into a
``cpu/core.py`` parameter declared in seconds.  This module builds the
shared substrate the whole-program analyses (:mod:`~repro.analysis.
callgraph`, :mod:`~repro.analysis.units`, :mod:`~repro.analysis.flows`)
work on:

* a **module index** mapping dotted module names
  (``repro.cpu.core``) to parsed files,
* a **symbol table** of every top-level function, class, and method
  with stable qualified names (``repro.cpu.core.Core.set_frequency``),
* **import resolution** from local names to project symbols, so a call
  expression in one module can be resolved to the function object it
  lands on in another.

The model is deliberately syntactic --- no imports are executed, the
project is never run.  Everything is derived from the ASTs that
:class:`repro.analysis.linter.FileContext` already parses, so the
per-file rules and the whole-program analyses agree byte-for-byte on
source positions and suppression comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import ast

from repro.analysis.linter import FileContext, iter_python_files


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str                 #: ``repro.cpu.core.Core.set_frequency``
    module: str                   #: ``repro.cpu.core``
    name: str                     #: ``set_frequency``
    node: ast.AST                 #: the FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None   #: enclosing class, if a method
    is_method: bool = False
    is_static: bool = False
    is_property: bool = False

    @property
    def params(self) -> List[str]:
        """Positional parameter names, ``self``/``cls`` stripped."""
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        if self.is_method and not self.is_static and names:
            names = names[1:]
        return names

    @property
    def kwonly_params(self) -> List[str]:
        return [a.arg for a in self.node.args.kwonlyargs]

    @property
    def all_params(self) -> List[str]:
        return self.params + self.kwonly_params


@dataclass
class ClassInfo:
    """One class definition, with its methods and project base classes."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Qualnames of base classes *resolved within the project*; external
    #: bases (``random.Random``) are kept as their dotted text.
    bases: List[str] = field(default_factory=list)

    def method(self, name: str,
               project: "Project") -> Optional[FunctionInfo]:
        """Look ``name`` up through this class and its project bases."""
        seen = set()
        stack = [self.qualname]
        while stack:
            qualname = stack.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            cls = project.classes.get(qualname)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None


class ModuleInfo:
    """One parsed source file plus its name bindings.

    ``bindings`` maps every local (module-level) name to the dotted
    thing it refers to: its own definitions, ``import`` aliases, and
    ``from``-imports, with relative imports resolved against the module
    package.  Resolution through ``bindings`` is how cross-module
    references become project symbols.
    """

    def __init__(self, name: str, path: str, ctx: FileContext):
        self.name = name
        self.path = path
        self.ctx = ctx
        self.tree = ctx.tree
        self.is_package = Path(path).name == "__init__.py"
        #: local name -> dotted target (module or module.attr)
        self.bindings: Dict[str, str] = {}
        self._collect_bindings()

    # ------------------------------------------------------------------
    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    def _collect_bindings(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.bindings[alias.asname or
                                  alias.name.split(".")[0]] = \
                        alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    if alias.asname:
                        self.bindings[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.bindings[alias.asname or alias.name] = \
                        f"{base}.{alias.name}"
        # Also pick up imports made inside functions (lazy imports are
        # common in the CLI paths); later bindings never shadow
        # module-level ones.
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and \
                    node not in self.tree.body:
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.bindings.setdefault(
                        alias.asname or alias.name, f"{base}.{alias.name}")

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: climb ``level`` packages up from here.
        parts = self.package.split(".") if self.package else []
        climb = node.level - 1
        if climb > len(parts):
            return None
        base_parts = parts[:len(parts) - climb] if climb else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None


class Project:
    """The whole-program model over a set of source files.

    >>> import textwrap, tempfile, os
    >>> root = tempfile.mkdtemp()
    >>> pkg = os.path.join(root, "repro"); os.makedirs(pkg)
    >>> _ = open(os.path.join(pkg, "__init__.py"), "w")
    >>> with open(os.path.join(pkg, "a.py"), "w") as f:
    ...     _ = f.write("def helper_s(x_s):\\n    return x_s\\n")
    >>> project = Project.load([pkg])
    >>> sorted(project.modules)
    ['repro', 'repro.a']
    >>> project.functions["repro.a.helper_s"].params
    ['x_s']
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> every FunctionInfo with that name (used for
        #: attribute-call resolution when the receiver type is unknown).
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths: Sequence, package_roots: Iterable[str] =
             ("repro",)) -> "Project":
        """Parse every ``.py`` file under ``paths`` into a project.

        Module names are derived from the innermost directory named in
        ``package_roots`` (``.../src/repro/cpu/core.py`` ->
        ``repro.cpu.core``); files outside any root get a flat
        single-segment name from their stem, so the loader stays usable
        on synthetic test packages.
        """
        project = cls()
        roots = tuple(package_roots)
        for path in iter_python_files(paths):
            source = Path(path).read_text(encoding="utf-8")
            try:
                ctx = FileContext(str(path), source)
            except SyntaxError:
                continue  # the per-file linter reports RL000 for these
            project.add_module(cls._module_name(path, roots), str(path),
                               ctx)
        project.index()
        return project

    @staticmethod
    def _module_name(path, roots: Tuple[str, ...]) -> str:
        parts = Path(path).parts
        anchor = None
        for root in roots:
            if root in parts:
                anchor = len(parts) - 1 - parts[::-1].index(root)
                break
        if anchor is None:
            # Fall back to "package dirs after the last non-identifier
            # component": supports loading bare synthetic trees.
            anchor = max(0, len(parts) - 2)
        names = list(parts[anchor:])
        if names[-1] == "__init__.py":
            names = names[:-1]
        else:
            names[-1] = names[-1][:-3]  # strip .py
        return ".".join(names)

    def add_module(self, name: str, path: str, ctx: FileContext) -> None:
        self.modules[name] = ModuleInfo(name, path, ctx)

    def index(self) -> None:
        """(Re)build the symbol table from the loaded modules."""
        self.functions.clear()
        self.classes.clear()
        self.methods_by_name.clear()
        for module in self.modules.values():
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    info = self._function(module, node)
                    self.functions[info.qualname] = info
                elif isinstance(node, ast.ClassDef):
                    self._index_class(module, node)
        # Resolve class bases now that every class is known.
        for cls_info in self.classes.values():
            module = self.modules[cls_info.module]
            resolved = []
            for base in cls_info.node.bases:
                dotted = self._dotted_text(base)
                if dotted is None:
                    continue
                target = self.resolve_name(module, dotted)
                resolved.append(target if target in self.classes
                                else dotted)
            cls_info.bases = resolved
        for info in self.functions.values():
            if info.is_method:
                self.methods_by_name.setdefault(info.name, []).append(info)

    def _function(self, module: ModuleInfo, node,
                  class_name: Optional[str] = None) -> FunctionInfo:
        deco_names = set()
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            text = self._dotted_text(target)
            if text:
                deco_names.add(text.split(".")[-1])
        qual = f"{module.name}.{class_name}.{node.name}" if class_name \
            else f"{module.name}.{node.name}"
        return FunctionInfo(
            qualname=qual, module=module.name, name=node.name, node=node,
            class_name=class_name, is_method=class_name is not None,
            is_static="staticmethod" in deco_names
                      or "classmethod" in deco_names,
            is_property="property" in deco_names
                        or "cached_property" in deco_names)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        cls_info = ClassInfo(qualname=f"{module.name}.{node.name}",
                             module=module.name, name=node.name, node=node)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function(module, stmt, class_name=node.name)
                cls_info.methods[stmt.name] = info
                self.functions[info.qualname] = info
        self.classes[cls_info.qualname] = cls_info

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _dotted_text(node: ast.AST) -> Optional[str]:
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(node.id)
        return ".".join(reversed(chain))

    def resolve_name(self, module: ModuleInfo,
                     dotted: str) -> Optional[str]:
        """Resolve a dotted reference *as written in ``module``* to a
        project symbol qualname (function, class, or module), or
        ``None`` when it leaves the project."""
        head, _, rest = dotted.partition(".")
        target = module.bindings.get(head)
        if target is None:
            # An unimported bare name: a definition in this module?
            candidate = f"{module.name}.{dotted}"
            if candidate in self.functions or candidate in self.classes:
                return candidate
            if head == module.name.split(".")[0]:
                target = head  # absolute reference to our own root pkg
            else:
                return None
        full = f"{target}.{rest}" if rest else target
        # Walk the dotted chain down through packages re-exporting names
        # (``from repro.harness import ExperimentConfig`` via __init__).
        return self._canonical(full, depth=0)

    def _canonical(self, dotted: str, depth: int) -> Optional[str]:
        if depth > 8:  # re-export cycle guard
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        if dotted in self.modules:
            return dotted
        head, _, tail = dotted.rpartition(".")
        if not head:
            return None
        # ``repro.harness.ExperimentConfig`` where repro.harness is a
        # package __init__ re-exporting the name.
        owner = self.modules.get(head)
        if owner is not None and tail in owner.bindings:
            return self._canonical(owner.bindings[tail], depth + 1)
        # ``pkg.module.Class.attr``: resolve the class, keep the attr.
        parent = self._canonical(head, depth + 1)
        if parent is not None and parent != head:
            return self._canonical(f"{parent}.{tail}", depth + 1)
        if parent is not None and f"{parent}.{tail}" in self.functions:
            return f"{parent}.{tail}"
        return None

    def resolve_expr(self, module: ModuleInfo,
                     node: ast.AST) -> Optional[str]:
        """Resolve a ``Name``/``Attribute`` expression to a qualname."""
        dotted = self._dotted_text(node)
        if dotted is None:
            return None
        return self.resolve_name(module, dotted)

    def function_for_call(self, module: ModuleInfo, node: ast.Call,
                          enclosing_class: Optional[ClassInfo] = None,
                          ) -> List[FunctionInfo]:
        """Candidate targets of a call expression (possibly empty).

        Unambiguous paths: direct calls to project functions,
        ``Class(...)`` (resolving to ``__init__``), and
        ``self.method(...)`` within a known class.  Attribute calls on
        unknown receivers fall back to the project-wide method-name
        index; callers decide how much ambiguity they tolerate.
        """
        func = node.func
        # self.method(...) inside a class body
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in ("self", "cls") and \
                enclosing_class is not None:
            target = enclosing_class.method(func.attr, self)
            return [target] if target is not None else []
        qualname = self.resolve_expr(module, func)
        if qualname is not None:
            if qualname in self.functions:
                return [self.functions[qualname]]
            if qualname in self.classes:
                init = self.classes[qualname].method("__init__", self)
                return [init] if init is not None else []
        if isinstance(func, ast.Attribute):
            return list(self.methods_by_name.get(func.attr, []))
        return []


__all__ = ["ClassInfo", "FunctionInfo", "ModuleInfo", "Project"]
