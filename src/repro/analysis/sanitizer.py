"""simsan --- the opt-in runtime simulation sanitizer.

The reproduction's core claim is that every figure is a deterministic
function of ``(ExperimentConfig, seed)`` and that scheduler decisions
follow provable invariants (EDF pop order, monotone frequency
selection, P-state bounds, monotone virtual clock).  The sanitizer
turns those invariants into *checked* assertions: components that hold
simulation state (:class:`repro.sim.engine.Simulator`,
:class:`repro.core.polaris.PolarisScheduler`,
:class:`repro.cpu.core.Core`) consult :func:`simsan_enabled` at
construction time and, when it is on, verify their invariants as the
simulation runs, raising :class:`SimulationInvariantError` with the
offending event's context instead of silently corrupting results.

Enabling
--------
* Environment: ``REPRO_SIMSAN=1`` (accepted truthy spellings: ``1``,
  ``true``, ``yes``, ``on``; anything else, including unset, is off).
* Per instance: ``Simulator(sanitize=True)`` /
  ``PolarisScheduler(..., sanitize=True)`` override the environment in
  either direction.

When the sanitizer is off the hooks reduce to a single pre-resolved
boolean test (usually hoisted into a local before hot loops), so the
disabled overhead is indistinguishable from noise --- the
``test_bench_simsan_*`` microbenchmarks guard this.

Sanitized runs are byte-identical to unsanitized runs (all checks are
read-only); the sweep cache nevertheless salts its keys with the
sanitizer state (see :func:`repro.harness.parallel.config_key`) so a
sanitizer experiment can never be confused with a figure cell.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable that switches the sanitizer on globally.
SIMSAN_ENV = "REPRO_SIMSAN"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def simsan_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the sanitizer state for a component being constructed.

    ``override`` is the component's explicit ``sanitize=`` argument:
    ``True``/``False`` win outright, ``None`` defers to the
    :data:`SIMSAN_ENV` environment variable.
    """
    if override is not None:
        return bool(override)
    return os.environ.get(SIMSAN_ENV, "").strip().lower() in _TRUTHY


class SimulationInvariantError(AssertionError):
    """A simulation invariant was violated.

    Carries the machine-readable ``invariant`` name and a ``context``
    dict (event times, core ids, frequencies, ...) so violation reports
    name *what* broke and *where in virtual time*, not just that
    something did.
    """

    def __init__(self, invariant: str, message: str, **context: object):
        self.invariant = invariant
        self.context = dict(context)
        detail = ", ".join(f"{key}={value!r}"
                           for key, value in sorted(self.context.items()))
        text = f"simsan [{invariant}]: {message}"
        if detail:
            text = f"{text} ({detail})"
        super().__init__(text)


def invariant(condition: bool, name: str, message: str,
              **context: object) -> None:
    """Raise :class:`SimulationInvariantError` unless ``condition`` holds.

    Callers are expected to have already tested their ``sanitize``
    flag --- this helper only packages the failure.
    """
    if not condition:
        raise SimulationInvariantError(name, message, **context)


__all__ = [
    "SIMSAN_ENV", "SimulationInvariantError", "invariant", "simsan_enabled",
]
