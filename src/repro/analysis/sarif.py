"""SARIF 2.1.0 export for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is what code-review
UIs and CI annotation surfaces ingest; emitting it lets the reprolint
run show up as inline review comments instead of a wall of log text.
One ``run`` object per invocation:

* ``tool.driver.rules`` carries the full rule table (per-file RL0xx
  and whole-program RL1xx), so viewers can render rule help without
  reprolint installed.
* Each ``result`` points at the finding's physical location
  (1-based line/column per the SARIF spec --- note the +1 on our
  0-based AST columns), carries the baseline fingerprint under
  ``partialFingerprints``, and --- when a baseline was applied ---
  a ``baselineState`` of ``"new"`` or ``"unchanged"`` so viewers can
  hide the audited backlog by default.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import _norm_path, fingerprint
from repro.analysis.linter import RULE_REGISTRY, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: ``partialFingerprints`` key; versioned so the hashing scheme can
#: change without colliding with stored fingerprints.
FINGERPRINT_KEY = "reprolint/v1"

TOOL_NAME = "reprolint"
TOOL_VERSION = "2.0"


def _rule_metadata() -> List[Dict[str, object]]:
    """The combined rule table: per-file registry + program rules."""
    from repro.analysis.flows import PROGRAM_FLOW_RULES
    from repro.analysis.units import PROGRAM_UNIT_RULES

    rules: Dict[str, Tuple[str, str]] = {}
    for code, cls in RULE_REGISTRY.items():
        rules[code] = (cls.name, cls.description)
    rules.update(PROGRAM_UNIT_RULES)
    rules.update(PROGRAM_FLOW_RULES)
    return [
        {
            "id": code,
            "name": rules[code][0],
            "shortDescription": {"text": rules[code][1]},
        }
        for code in sorted(rules)
    ]


def _result(finding: Finding, rule_index: Dict[str, int],
            baseline_state: Optional[str]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": _norm_path(finding.path)},
                "region": {
                    "startLine": max(1, finding.line),
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "partialFingerprints": {FINGERPRINT_KEY: fingerprint(finding)},
    }
    if finding.code in rule_index:
        result["ruleIndex"] = rule_index[finding.code]
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def sarif_log(new: Sequence[Finding],
              baselined: Sequence[Finding] = (),
              baseline_applied: bool = False) -> Dict[str, object]:
    """Build the SARIF log object for one run.

    Without a baseline, every finding is emitted with no
    ``baselineState``; with one, new findings are ``"new"`` and
    baselined ones ``"unchanged"``.
    """
    rules = _rule_metadata()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for finding in new:
        results.append(_result(finding, rule_index,
                               "new" if baseline_applied else None))
    for finding in baselined:
        results.append(_result(finding, rule_index,
                               "unchanged" if baseline_applied else None))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def render_sarif(new: Sequence[Finding],
                 baselined: Sequence[Finding] = (),
                 baseline_applied: bool = False) -> str:
    return json.dumps(
        sarif_log(new, baselined, baseline_applied=baseline_applied),
        indent=2, sort_keys=True)


__all__ = ["FINGERPRINT_KEY", "SARIF_SCHEMA", "SARIF_VERSION",
           "render_sarif", "sarif_log"]
