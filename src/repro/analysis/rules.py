"""The reprolint rule set (RL001-RL008).

Every rule encodes one clause of this reproduction's determinism /
invariant contract --- the property that every figure is a pure
function of ``(ExperimentConfig, seed)`` and that scheduler decisions
obey the paper's invariants:

========  =============================================================
RL001     Wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
          ``datetime.now``) anywhere except the two sanctioned helpers
          in ``harness/profiling.py`` (``wall_clock``/``perf_clock``).
          Wall time leaking into simulation state breaks run-to-run
          reproducibility and poisons the sweep cache.
RL002     Module-level / unseeded :mod:`random` usage.  Every RNG must
          thread an explicit ``random.Random`` handle (usually from
          :class:`repro.sim.rng.RandomStreams`); the shared global RNG
          couples unrelated components and defeats variance isolation.
RL003     Iteration over ``set`` expressions.  Set order depends on
          ``PYTHONHASHSEED`` for str/object elements, so any side
          effect performed per element (row inserts, heap pushes, event
          scheduling) becomes run-dependent.  Wrap in ``sorted(...)``.
RL004     ``==``/``!=`` on time/frequency-valued names.  Times and
          frequencies are floats built by arithmetic; compare with a
          tolerance (``abs(a - b) < eps``) or ``math.isinf``/``isclose``.
RL005     Mutable default arguments (shared across calls).
RL006     Unit-suffix discipline in ``cpu/``, ``sim/``, ``core/``,
          ``governors/``: parameters, ``self`` attributes, and
          dataclass fields with bare time/frequency names must carry a
          unit suffix (``_s``/``_us``/``_ghz``/``_seconds``/...) or
          appear in the audited exemption table below.
RL007     Bare ``except:`` anywhere; silently swallowed exceptions
          (handler body only ``pass``) in engine/scheduler hot paths.
RL008     ``@dataclass`` state classes in ``sim/``/``cpu/`` that are
          neither ``frozen`` nor slotted: accidental attribute creation
          on hot-path state objects hides typos and costs memory.
RL009     Suppression hygiene: a ``# reprolint: disable`` comment
          without a ``- reason`` is itself a finding, and the driver
          reports suppressions that silenced nothing as unused.  The
          code is special-cased so a blanket/reasonless comment cannot
          silence the finding about itself.
RL120     Fault-plan serializer round-trip: every ``*Spec`` dataclass
          in ``repro.faults.plan`` must be reconstructed by
          ``FaultPlan.from_dict``.  A spec class the deserializer never
          names silently vanishes from plans that cross a JSON
          boundary (``REPRO_FAULTS`` files, the sweep cache), breaking
          the byte-determinism contract for chaos cells.
RL121     Scheme-registry consistency: every ``SCHEMES`` entry in
          ``harness/schemes.py`` must declare the name it is registered
          under and exactly one control mechanism (scheduler class or
          governor factory), and every ``*_SCHEMES`` figure line-up in
          that module may only reference registered keys.  A key/name
          mismatch makes ``scheme_named`` results lie about their own
          identity in rendered tables and pinned fingerprints.
========  =============================================================

Suppress a deliberate exception with
``# reprolint: disable=RL### - reason`` on the flagged line.

The whole-program rules (RL101-RL113: unit-dimension inference and
RNG/wall-clock flow analysis) live in :mod:`repro.analysis.units` and
:mod:`repro.analysis.flows`; they need the cross-module view built by
:mod:`repro.analysis.project` and run from the driver, not per file.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.linter import (
    SUPPRESSION_HYGIENE_CODE, FileContext, Finding, LintRule, register,
)

# ----------------------------------------------------------------------
# RL001 --- wall-clock reads
# ----------------------------------------------------------------------
#: Fully-qualified wall-clock/timer reads that make output depend on
#: the host clock.
WALL_CLOCK_FQNS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: The allowlist: (repro-relative path, enclosing function) pairs whose
#: bodies may read the host clock.  Kept to exactly the two helpers in
#: ``harness/profiling.py`` so "who can see wall time" is grep-sized.
RL001_ALLOWED_FUNCTIONS = frozenset({
    ("harness/profiling.py", "wall_clock"),
    ("harness/profiling.py", "perf_clock"),
})


@register
class WallClockRule(LintRule):
    code = "RL001"
    name = "wall-clock"
    description = ("host clock read outside the sanctioned "
                   "harness.profiling helpers")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._visit(ctx, ctx.tree, None)

    def _visit(self, ctx: FileContext, node: ast.AST,
               func: Optional[str]) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node.name
        allowed = (ctx.rel, func) in RL001_ALLOWED_FUNCTIONS
        for child in ast.iter_child_nodes(node):
            if not allowed:
                yield from self._flag(ctx, child)
            yield from self._visit(ctx, child, func)

    def _flag(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute):
            fqn = ctx.resolve_dotted(node)
            if fqn in WALL_CLOCK_FQNS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read `{fqn}` leaks host time into the "
                    f"run; use repro.harness.profiling.wall_clock()/"
                    f"perf_clock()")
        elif isinstance(node, ast.Name):
            fqn = ctx.imported_names.get(node.id)
            if fqn in WALL_CLOCK_FQNS and \
                    isinstance(node.ctx, ast.Load):
                yield self.finding(
                    ctx, node,
                    f"wall-clock read `{node.id}` (= {fqn}) leaks host "
                    f"time into the run; use repro.harness.profiling "
                    f"helpers")
        elif isinstance(node, ast.ImportFrom) and node.module and \
                node.level == 0:
            for alias in node.names:
                fqn = f"{node.module}.{alias.name}"
                if fqn in WALL_CLOCK_FQNS:
                    yield self.finding(
                        ctx, node,
                        f"importing wall-clock `{fqn}`; route host-time "
                        f"reads through repro.harness.profiling")


# ----------------------------------------------------------------------
# RL002 --- unseeded / module-level random
# ----------------------------------------------------------------------
#: Functions of the *shared global* RNG in :mod:`random`.  Using them
#: (or an argument-less ``random.Random()``) makes draws depend on
#: interpreter-global state instead of an explicitly threaded stream.
GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "uniform", "choice", "choices", "shuffle",
    "sample", "randrange", "randbytes", "getrandbits", "seed",
    "gauss", "normalvariate", "lognormvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "weibullvariate",
    "vonmisesvariate", "triangular", "binomialvariate",
})


@register
class UnseededRandomRule(LintRule):
    code = "RL002"
    name = "unseeded-random"
    description = ("module-level random.* call or unseeded Random(); "
                   "thread an explicit random.Random handle")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                fqn = ctx.resolve_dotted(node.func)
                if fqn is None and isinstance(node.func, ast.Name):
                    fqn = ctx.imported_names.get(node.func.id)
                if fqn == "random.Random" and not node.args and \
                        not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "random.Random() without a seed draws entropy "
                        "from the OS; pass an explicit seed or a "
                        "repro.sim.rng stream")
                elif fqn is not None and fqn.startswith("random.") and \
                        fqn.split(".", 1)[1] in GLOBAL_RANDOM_FNS:
                    yield self.finding(
                        ctx, node,
                        f"`{fqn}` uses the shared global RNG; thread an "
                        f"explicit random.Random (repro.sim.rng) handle")
            elif isinstance(node, ast.ImportFrom) and \
                    node.module == "random" and node.level == 0:
                for alias in node.names:
                    if alias.name in GLOBAL_RANDOM_FNS:
                        yield self.finding(
                            ctx, node,
                            f"importing global-RNG `random.{alias.name}`; "
                            f"thread an explicit random.Random handle")


# ----------------------------------------------------------------------
# RL003 --- set iteration order
# ----------------------------------------------------------------------
#: Directories whose code feeds simulation state (the harness/theory
#: layers consume already-deterministic results).
RL003_DIRS = ("sim", "core", "governors", "cpu", "db", "workloads",
              "metrics", "obs")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class SetIterationRule(LintRule):
    code = "RL003"
    name = "set-iteration-order"
    description = ("iterating a set: element order depends on "
                   "PYTHONHASHSEED; wrap in sorted(...)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(RL003_DIRS):
            return
        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        ctx, it,
                        "iteration over a set runs in hash order "
                        "(PYTHONHASHSEED-dependent for str/object "
                        "elements); use sorted(...) for a "
                        "deterministic order")


# ----------------------------------------------------------------------
# RL004 --- float equality on times/frequencies
# ----------------------------------------------------------------------
#: A name "smells like" a time or frequency when its last underscore
#: component is one of these words, or when it already carries a unit
#: suffix (then it is *definitely* a time/frequency).
_RL004_NAME_RE = re.compile(
    r"(?:^|_)(?:time|freq|frequency|deadline)$"
    r"|_(?:s|us|ms|ns|sec|secs|seconds|ghz|mhz|khz|hz)$")


def _compared_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class FloatEqualityRule(LintRule):
    code = "RL004"
    name = "float-equality"
    description = ("== / != on a time- or frequency-valued name; use a "
                   "tolerance (abs(a-b) < eps) or math.isclose/isinf")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            sides = [node.left, *node.comparators]
            if any(isinstance(s, ast.Constant) and s.value is None
                   for s in sides):
                continue  # `x == None` is a different (pyflakes) problem
            for side in sides:
                name = _compared_name(side)
                if name is not None and _RL004_NAME_RE.search(name):
                    yield self.finding(
                        ctx, node,
                        f"float equality on `{name}`: times/frequencies "
                        f"are computed floats; compare with a tolerance "
                        f"or math.isclose/math.isinf")
                    break


# ----------------------------------------------------------------------
# RL005 --- mutable default arguments
# ----------------------------------------------------------------------
def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray",
                                "deque", "defaultdict", "Counter")
    return False


@register
class MutableDefaultRule(LintRule):
    code = "RL005"
    name = "mutable-default"
    description = "mutable default argument is shared across calls"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + \
                [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in `{node.name}()` is "
                        f"evaluated once and shared across calls; "
                        f"default to None and create inside")


# ----------------------------------------------------------------------
# RL006 --- unit-suffix discipline
# ----------------------------------------------------------------------
RL006_DIRS = ("cpu", "sim", "core", "governors", "obs")

#: Bare semantic time/frequency words that demand a unit suffix.
#: ``ts``/``dur``/``timestamp`` joined the list with the repro.obs
#: tracing subsystem, whose field vocabulary is timestamp-heavy.
_RL006_TIME_RE = re.compile(
    r"(?:^|_)(?:time|duration|delay|interval|latency|elapsed|period"
    r"|timeout|ts|dur|timestamp)$")
_RL006_FREQ_RE = re.compile(r"(?:^|_)freq(?:uency)?$")
_RL006_UNIT_SUFFIX_RE = re.compile(
    r"_(?:s|us|ms|ns|sec|secs|seconds|ghz|mhz|khz|hz)$")

#: The audited exemption table, seeded from a sweep of the existing
#: tree (PR 2).  Each entry names an established, *documented*
#: convention; new code should prefer explicit suffixes.  Additions
#: belong here (with a reason) or inline via
#: ``# reprolint: disable=RL006 - reason``.
RL006_AUDITED_EXEMPTIONS: Dict[str, str] = {
    # -- virtual-clock convention: the engine measures time in float
    #    seconds (sim/engine.py module docstring) -------------------------
    "time": "virtual seconds; engine-wide convention (sim.engine docstring)",
    "start_time": "virtual seconds (sim.engine / cpu.core Job timing)",
    "finish_time": "virtual seconds (cpu.core Job / core.request timing)",
    "arrival_time": "virtual seconds (core.request docstring)",
    "dispatch_time": "virtual seconds (core.request docstring)",
    "deadline": "absolute virtual seconds: a(t) + L(c(t)) (core.request)",
    "delay": "relative virtual seconds (Simulator.schedule docstring)",
    "running_elapsed": "the paper's e0, in virtual seconds (Figure 2)",
    # -- frequency convention: every frequency in the simulator is in
    #    GHz (cpu.core module docstring); `*_freq` names predate the
    #    suffix rule and are pinned by the public API -----------------------
    "freq": "GHz; cpu.core docstring ('f GHz drains f giga-cycles/s')",
    "dispatch_freq": "GHz at dispatch; public Request/Job field",
    "initial_freq": "GHz; public Core/DatabaseServer parameter",
    "single_freq": "boolean flag (ran under one frequency), not a value",
    "transition_latency": "seconds; mirrors the ServerConfig/"
                          "ExperimentConfig field of the same name",
    # -- trace-field convention: the Chrome trace-event format mandates
    #    integer MICROSECONDS for `ts` and `dur`, so repro.obs converts
    #    virtual seconds at the recording boundary and names the stored
    #    fields with the `_us` suffix (repro.obs.trace docstring) --------
    "ts_us": "Chrome trace-event `ts`: integer microseconds by format "
             "mandate (repro.obs.trace.to_trace_us)",
    "dur_us": "Chrome trace-event `dur`: integer microseconds by format "
              "mandate (complete-event exports)",
}


@register
class UnitSuffixRule(LintRule):
    code = "RL006"
    name = "unit-suffix"
    description = ("time/frequency name without a unit suffix "
                   "(_s/_us/_ghz/...) or an audited exemption")

    def _violates(self, name: str) -> bool:
        if name in RL006_AUDITED_EXEMPTIONS:
            return False
        if _RL006_UNIT_SUFFIX_RE.search(name):
            return False
        return bool(_RL006_TIME_RE.search(name)
                    or _RL006_FREQ_RE.search(name))

    def _flag(self, ctx: FileContext, node: ast.AST, name: str,
              kind: str) -> Finding:
        return self.finding(
            ctx, node,
            f"{kind} `{name}` holds a time/frequency but carries no "
            f"unit suffix; rename (e.g. `{name}_s` / `{name}_ghz`) or "
            f"add an audited exemption with a reason")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(RL006_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = [*node.args.posonlyargs, *node.args.args,
                        *node.args.kwonlyargs]
                for arg in args:
                    if arg.arg in ("self", "cls"):
                        continue
                    if self._violates(arg.arg):
                        yield self._flag(ctx, arg, arg.arg, "parameter")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self" and \
                            self._violates(target.attr):
                        yield self._flag(ctx, target, target.attr,
                                         "attribute")
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and \
                            isinstance(stmt.target, ast.Name) and \
                            self._violates(stmt.target.id):
                        yield self._flag(ctx, stmt, stmt.target.id,
                                         "field")


# ----------------------------------------------------------------------
# RL007 --- bare / swallowed exceptions
# ----------------------------------------------------------------------
#: Hot-path directories where a silently swallowed exception corrupts
#: simulation state instead of merely hiding a harness hiccup.
RL007_SWALLOW_DIRS = ("sim", "core", "cpu", "db", "governors", "obs")


def _handler_only_passes(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant):
            continue  # docstring / `...`
        return False
    return True


@register
class SwallowedExceptionRule(LintRule):
    code = "RL007"
    name = "swallowed-exception"
    description = ("bare except, or exception silently swallowed in an "
                   "engine/scheduler hot path")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_hot_path = ctx.in_dirs(RL007_SWALLOW_DIRS)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "and hides real failures; name the exception types")
            elif in_hot_path and _handler_only_passes(node):
                yield self.finding(
                    ctx, node,
                    "exception silently swallowed in an engine/scheduler "
                    "path; handle it, log it, or narrow the type with a "
                    "comment")


# ----------------------------------------------------------------------
# RL008 --- dataclass state hygiene in sim/ and cpu/
# ----------------------------------------------------------------------
RL008_DIRS = ("sim", "cpu", "obs")


def _dataclass_decorator(node: ast.ClassDef,
                         ctx: FileContext) -> Optional[ast.AST]:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        fqn = ctx.resolve_dotted(target)
        name = target.id if isinstance(target, ast.Name) else None
        if fqn in ("dataclasses.dataclass",) or name == "dataclass" or \
                (isinstance(target, ast.Attribute)
                 and target.attr == "dataclass"):
            return deco
    return None


def _truthy_keyword(deco: ast.AST, name: str) -> bool:
    if not isinstance(deco, ast.Call):
        return False
    for kw in deco.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


@register
class DataclassSlotsRule(LintRule):
    code = "RL008"
    name = "dataclass-slots"
    description = ("@dataclass state class in sim/ or cpu/ is neither "
                   "frozen nor slotted")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(RL008_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            deco = _dataclass_decorator(node, ctx)
            if deco is None:
                continue
            if _truthy_keyword(deco, "frozen") or \
                    _truthy_keyword(deco, "slots"):
                continue
            has_slots = any(
                isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets)
                for stmt in node.body)
            if not has_slots:
                yield self.finding(
                    ctx, node,
                    f"dataclass `{node.name}` holds simulator/CPU state "
                    f"but is neither frozen nor slotted; add "
                    f"`frozen=True` or `slots=True` (3.10+) so hot-path "
                    f"state cannot grow accidental attributes")


# ----------------------------------------------------------------------
# RL120 --- fault-plan spec serializer round-trip
# ----------------------------------------------------------------------
#: The one file this rule audits: the fault-plan vocabulary module.
RL120_PLAN_FILE = "faults/plan.py"


@register
class SpecRoundTripRule(LintRule):
    code = "RL120"
    name = "spec-roundtrip"
    description = ("*Spec dataclass in repro.faults.plan that "
                   "FaultPlan.from_dict never reconstructs (the spec "
                   "would vanish over a JSON round-trip)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel != RL120_PLAN_FILE:
            return
        spec_classes: Dict[str, ast.ClassDef] = {}
        from_dict: Optional[ast.AST] = None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.endswith("Spec") and \
                    _dataclass_decorator(node, ctx) is not None:
                spec_classes[node.name] = node
            if node.name == "FaultPlan":
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)) \
                            and stmt.name == "from_dict":
                        from_dict = stmt
        if not spec_classes:
            return
        referenced = set()
        if from_dict is not None:
            referenced = {n.id for n in ast.walk(from_dict)
                          if isinstance(n, ast.Name)}
        for name in sorted(spec_classes):
            if name not in referenced:
                yield self.finding(
                    ctx, spec_classes[name],
                    f"`{name}` is part of the fault-plan vocabulary but "
                    f"FaultPlan.from_dict never reconstructs it; plans "
                    f"carrying it would not survive to_dict/from_dict "
                    f"(REPRO_FAULTS JSON files, the sweep cache)")


# ----------------------------------------------------------------------
# RL121 --- scheme-registry consistency
# ----------------------------------------------------------------------
#: The one file this rule audits: the frequency-control scheme registry.
RL121_SCHEMES_FILE = "harness/schemes.py"

#: The Scheme fields that select a control mechanism; exactly one must
#: be set per registry entry.
RL121_MECHANISMS = ("scheduler_class", "governor_factory")


@register
class SchemeRegistryRule(LintRule):
    code = "RL121"
    name = "scheme-registry"
    description = ("SCHEMES registry entry whose key and declared name "
                   "disagree, without exactly one control mechanism, or "
                   "a *_SCHEMES line-up naming an unregistered scheme")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel != RL121_SCHEMES_FILE:
            return
        schemes_dict: Optional[ast.Dict] = None
        lineups: List[Tuple[str, ast.Tuple]] = []
        for node in ctx.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            if target == "SCHEMES" and isinstance(node.value, ast.Dict):
                schemes_dict = node.value
            elif target.endswith("_SCHEMES") \
                    and isinstance(node.value, ast.Tuple):
                lineups.append((target, node.value))
        if schemes_dict is None:
            yield self.finding(
                ctx, ctx.tree,
                "harness/schemes.py no longer defines SCHEMES as a "
                "literal dict; RL121 cannot audit the registry")
            return
        keys: List[str] = []
        for key_node, value in zip(schemes_dict.keys, schemes_dict.values):
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)):
                yield self.finding(
                    ctx, value, "SCHEMES key is not a string literal; "
                    "the registry must stay statically auditable")
                continue
            key = key_node.value
            keys.append(key)
            if not isinstance(value, ast.Call) \
                    or not isinstance(value.func, ast.Name):
                continue
            if value.func.id == "Scheme":
                declared = self._declared_name(value)
                if declared is not None and declared != key:
                    yield self.finding(
                        ctx, value,
                        f"scheme registered as {key!r} declares "
                        f"name={declared!r}; scheme_named({key!r}) would "
                        f"answer to the wrong identity")
                mechanisms = [kw.arg for kw in value.keywords
                              if kw.arg in RL121_MECHANISMS
                              and not (isinstance(kw.value, ast.Constant)
                                       and kw.value.value is None)]
                if len(mechanisms) != 1:
                    yield self.finding(
                        ctx, value,
                        f"scheme {key!r} sets "
                        f"{len(mechanisms)} of {RL121_MECHANISMS}; "
                        f"exactly one control mechanism is required for "
                        f"the scheme to be constructible")
            elif value.func.id == "_static":
                arg = value.args[0] if value.args else None
                if isinstance(arg, ast.Constant) \
                        and isinstance(arg.value, (int, float)):
                    expected = f"static-{arg.value:.1f}"
                    if expected != key:
                        yield self.finding(
                            ctx, value,
                            f"_static({arg.value!r}) builds a scheme "
                            f"named {expected!r} but is registered "
                            f"under {key!r}")
        registered = set(keys)
        for lineup_name, tup in lineups:
            for elt in tup.elts:
                if isinstance(elt, ast.Constant) \
                        and isinstance(elt.value, str) \
                        and elt.value not in registered:
                    yield self.finding(
                        ctx, elt,
                        f"line-up {lineup_name} references "
                        f"{elt.value!r}, which is not a SCHEMES key")

    @staticmethod
    def _declared_name(call: ast.Call) -> Optional[str]:
        """The ``name`` a ``Scheme(...)`` call declares, if literal."""
        if call.args:
            first = call.args[0]
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, str):
                return first.value
        for kw in call.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                return kw.value.value
        return None


# ----------------------------------------------------------------------
# RL009 --- suppression hygiene
# ----------------------------------------------------------------------
@register
class SuppressionHygieneRule(LintRule):
    code = SUPPRESSION_HYGIENE_CODE
    name = "suppression-hygiene"
    description = ("# reprolint: disable comment without a `- reason`; "
                   "unused suppressions are reported by the driver")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for line in sorted(ctx.suppressions):
            sup = ctx.suppressions[line]
            if sup.reason:
                continue
            what = "blanket suppression" if sup.codes is None else \
                f"suppression of {', '.join(sorted(sup.codes))}"
            yield Finding(
                self.code, self.name, ctx.path, sup.line, sup.col,
                f"{what} has no reason; append `- why this is fine` "
                f"to the disable comment")


#: Rendered rule table for ``--list-rules`` and the docs.
def rule_table() -> List[Tuple[str, str, str]]:
    """(code, name, description) for every registered rule, sorted."""
    from repro.analysis.linter import RULE_REGISTRY
    return [(code, cls.name, cls.description)
            for code, cls in sorted(RULE_REGISTRY.items())]


__all__ = [
    "GLOBAL_RANDOM_FNS", "RL001_ALLOWED_FUNCTIONS",
    "RL006_AUDITED_EXEMPTIONS", "WALL_CLOCK_FQNS", "rule_table",
]
