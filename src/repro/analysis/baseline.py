"""Checked-in finding baseline: the CI ratchet.

The baseline (``.reprolint-baseline.json`` at the repo root) records
every finding the team has explicitly accepted, so CI can fail on *new*
findings while tolerating the audited backlog.  The semantics are a
ratchet:

* A finding whose fingerprint is in the baseline is **baselined** ---
  reported separately, exit status stays 0.  Each entry carries an
  occurrence ``count``; extra occurrences beyond the recorded count are
  new findings (the backlog may shrink, never silently grow).
* A finding not in the baseline is **new** --- exit status 1.
* A baseline entry matching nothing in the current run is **stale**;
  ``--update-baseline`` prunes it, so fixed findings cannot be
  reintroduced without showing up as new.

Fingerprints are content-addressed, not line-addressed:
``sha256(code|path|message)[:16]``.  Moving a finding within its file
(refactors above it) does not invalidate the baseline entry; changing
the file path or the message (which embeds the offending names) does.
Intentional exemptions get a human ``reason`` string, preserved across
``--update-baseline`` runs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.linter import Finding

#: Format marker so a future schema change can migrate old files.
BASELINE_VERSION = 1


def _norm_path(path: str) -> str:
    """Stable posix-style path for fingerprinting: relative to the
    current directory when possible (CI and dev both run from the repo
    root), the path as given otherwise."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def fingerprint(finding: Finding) -> str:
    """Content-addressed identity of a finding (line-number free)."""
    payload = f"{finding.code}|{_norm_path(finding.path)}|{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class Baseline:
    """In-memory view of the baseline file.

    ``entries`` maps fingerprint -> entry dict with keys ``code``,
    ``path``, ``message``, ``count`` and optional ``reason``.
    """

    def __init__(self, entries: Optional[Dict[str, Dict]] = None):
        self.entries: Dict[str, Dict] = entries if entries is not None \
            else {}

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {payload.get('version')!r}; "
                f"this reprolint writes version {BASELINE_VERSION}")
        return cls(payload.get("findings", {}))

    def save(self, path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": {fp: self.entries[fp]
                         for fp in sorted(self.entries)},
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                              + "\n", encoding="utf-8")

    # ------------------------------------------------------------------
    def partition(self, findings: Sequence[Finding]) -> Tuple[
            List[Finding], List[Finding], List[str]]:
        """Split ``findings`` into (new, baselined, stale_fingerprints).

        Occurrence counting: the first ``count`` findings sharing a
        fingerprint are baselined, the rest are new.  Stale fingerprints
        are baseline entries no current finding matched at all.
        """
        remaining = {fp: int(entry.get("count", 1))
                     for fp, entry in self.entries.items()}
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            fp = fingerprint(finding)
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [fp for fp, count in sorted(remaining.items())
                 if count == int(self.entries[fp].get("count", 1))]
        return new, baselined, stale

    def updated(self, findings: Sequence[Finding]) -> "Baseline":
        """The ratcheted baseline for the current findings.

        Entries are rebuilt from what is actually present (stale ones
        drop out, counts shrink to the observed occurrence count) and
        ``reason`` strings survive from the old baseline.
        """
        counts: Dict[str, int] = {}
        samples: Dict[str, Finding] = {}
        for finding in findings:
            fp = fingerprint(finding)
            counts[fp] = counts.get(fp, 0) + 1
            samples.setdefault(fp, finding)
        entries: Dict[str, Dict] = {}
        for fp, count in counts.items():
            sample = samples[fp]
            entry = {
                "code": sample.code,
                "path": _norm_path(sample.path),
                "message": sample.message,
                "count": count,
            }
            old = self.entries.get(fp)
            if old and old.get("reason"):
                entry["reason"] = old["reason"]
            entries[fp] = entry
        return Baseline(entries)

    def reason_for(self, finding: Finding) -> str:
        entry = self.entries.get(fingerprint(finding))
        return str(entry.get("reason", "")) if entry else ""

    def __len__(self) -> int:
        return len(self.entries)


__all__ = ["BASELINE_VERSION", "Baseline", "fingerprint"]
