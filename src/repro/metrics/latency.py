"""Latency and failure-rate accounting.

The paper's performance metric is the **failure rate**: "the percentage
of transactions that do not finish execution before their deadline"
(Section 6.1), tracked overall and per workload (the gold/silver
experiment of Section 6.5 needs the split).  The recorder also keeps
execution-time statistics per transaction type and dispatch frequency,
which regenerate the paper's Figure 3 table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.request import Request


def percentile(values: List[float], p: float) -> float:
    """Order-statistic percentile (the paper's P95 convention)."""
    if not values:
        raise ValueError("no values")
    if not 0 < p <= 100:
        raise ValueError("percentile must be in (0, 100]")
    ordered = sorted(values)
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]


@dataclass
class WorkloadStats:
    """Per-workload accumulator."""

    offered: int = 0
    completed: int = 0
    missed: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def failure_rate(self) -> float:
        """#failed / #offered, the paper's y-axis."""
        if self.offered == 0:
            return 0.0
        return self.missed / self.offered

    def mean_latency(self) -> float:
        if not self.latencies:
            raise ValueError("no completions recorded")
        return sum(self.latencies) / len(self.latencies)


class LatencyRecorder:
    """Collects per-request outcomes during the measurement window.

    Attach via ``server.add_completion_listener(recorder.on_completion)``
    and flip :attr:`recording` when the test phase starts --- warmup and
    training completions are then ignored, as in the paper's three-phase
    methodology.
    """

    def __init__(self, keep_latencies: bool = True):
        self.recording = False
        #: When set, completions count iff the request *arrived* inside
        #: [t0, t1), regardless of the recording flag --- the harness's
        #: test-phase accounting (late completions of in-window arrivals
        #: still count as failures, not censored).
        self.window: Optional[Tuple[float, float]] = None
        self.keep_latencies = keep_latencies
        self.per_workload: Dict[str, WorkloadStats] = {}
        #: execution times keyed by (txn_type, dispatch frequency).
        self.exec_times: Dict[Tuple[str, float], List[float]] = {}
        self.total_offered = 0
        self.total_completed = 0
        self.total_missed = 0
        self.total_rejected = 0
        self.total_lost = 0

    # ------------------------------------------------------------------
    def set_window(self, start: float, end: float) -> None:
        """Count only requests arriving in ``[start, end)``."""
        if end <= start:
            raise ValueError("window must have positive length")
        self.window = (start, end)

    def _in_scope(self, request: Request) -> bool:
        if self.window is not None:
            start, end = self.window
            return start <= request.arrival_time < end
        return self.recording

    def on_rejection(self, request: Request) -> None:
        """Count an admission-control rejection: offered but never
        finishes, so it is a miss by the paper's failure metric."""
        if not self._in_scope(request):
            return
        stats = self.per_workload.setdefault(request.workload.name,
                                             WorkloadStats())
        stats.offered += 1
        stats.missed += 1
        self.total_offered += 1
        self.total_missed += 1
        self.total_rejected += 1

    def on_lost(self, request: Request) -> None:
        """Count a request that will never finish --- stranded on a dead
        core or in an undrainable queue when a faulted run ends.  Like a
        rejection it is offered-and-missed, so dying-core scenarios
        cannot censor their casualties into a *better* failure rate."""
        if not self._in_scope(request):
            return
        stats = self.per_workload.setdefault(request.workload.name,
                                             WorkloadStats())
        stats.offered += 1
        stats.missed += 1
        self.total_offered += 1
        self.total_missed += 1
        self.total_lost += 1

    def on_completion(self, request: Request) -> None:
        # _in_scope and the Request latency/deadline properties are
        # inlined here (same tests, same arithmetic): this runs once per
        # completed transaction and the frames dominate its cost.
        window = self.window
        arrival = request.arrival_time
        if window is not None:
            if not window[0] <= arrival < window[1]:
                return
        elif not self.recording:
            return
        # get-then-insert rather than setdefault: setdefault constructs
        # its default on every call, and this runs once per completion.
        name = request.workload_name
        stats = self.per_workload.get(name)
        if stats is None:
            stats = self.per_workload[name] = WorkloadStats()
        stats.offered += 1
        stats.completed += 1
        self.total_offered += 1
        self.total_completed += 1
        finish = request.finish_time
        if not finish <= request.deadline + 1e-12:
            stats.missed += 1
            self.total_missed += 1
        if self.keep_latencies:
            stats.latencies.append(finish - arrival)
            key = (request.txn_type, request.dispatch_freq)
            times = self.exec_times.get(key)
            if times is None:
                times = self.exec_times[key] = []
            times.append(finish - request.dispatch_time)

    # ------------------------------------------------------------------
    @property
    def failure_rate(self) -> float:
        """Overall #failed / #offered."""
        if self.total_offered == 0:
            return 0.0
        return self.total_missed / self.total_offered

    def workload_failure_rate(self, workload: str) -> float:
        stats = self.per_workload.get(workload)
        return stats.failure_rate if stats is not None else 0.0

    def exec_time_stats(self, txn_type: str,
                        freq_ghz: Optional[float] = None
                        ) -> Tuple[float, float, int]:
        """(mean, P95, count) of execution times for a type.

        With ``freq_ghz`` given, restricted to requests dispatched at
        that frequency (the Figure 3 table's columns); otherwise pooled.
        """
        values: List[float] = []
        for (name, freq), times in self.exec_times.items():
            if name != txn_type:
                continue
            if freq_ghz is not None and abs(freq - freq_ghz) > 1e-9:
                continue
            values.extend(times)
        if not values:
            return (float("nan"), float("nan"), 0)
        mean = sum(values) / len(values)
        return (mean, percentile(values, 95), len(values))

    def combined_exec_time_stats(self, freq_ghz: Optional[float] = None
                                 ) -> Tuple[float, float, int]:
        """Pooled (mean, P95, count) across all types (Figure 3 last row)."""
        values: List[float] = []
        for (name, freq), times in self.exec_times.items():
            if freq_ghz is not None and abs(freq - freq_ghz) > 1e-9:
                continue
            values.extend(times)
        if not values:
            return (float("nan"), float("nan"), 0)
        mean = sum(values) / len(values)
        return (mean, percentile(values, 95), len(values))

    def workload_names(self) -> List[str]:
        return sorted(self.per_workload)
