"""Plain-text table and series rendering for bench output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
consistent across benches.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats are caller-formatted so each bench
    controls its precision.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def format_series(label: str, xs: Sequence, ys: Sequence[float],
                  y_format: str = "{:.3f}") -> str:
    """One figure series as ``label: x=y`` pairs on a single line."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = " ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compact ASCII sparkline (used by the World Cup timeline bench)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    low, high = min(values), max(values)
    span = high - low or 1.0
    # Downsample to the requested width by bucket means.
    if len(values) > width:
        bucket = len(values) / width
        sampled = []
        for i in range(width):
            lo = int(i * bucket)
            hi = max(lo + 1, int((i + 1) * bucket))
            chunk = values[lo:hi]
            sampled.append(sum(chunk) / len(chunk))
    else:
        sampled = list(values)
    out = []
    for v in sampled:
        idx = int((v - low) / span * (len(glyphs) - 1))
        out.append(glyphs[idx])
    return "".join(out)
