"""Plain-text table and series rendering for bench output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
consistent across benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats are caller-formatted so each bench
    controls its precision.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def format_series(label: str, xs: Sequence, ys: Sequence[float],
                  y_format: str = "{:.3f}") -> str:
    """One figure series as ``label: x=y`` pairs on a single line."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = " ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"


#: Schema version of :func:`availability_record`.  Bump only on
#: incompatible changes; consumers (e.g. a future
#: ``repro.analysis.healthcheck``) key on it to stay forward-safe.
AVAILABILITY_SCHEMA_VERSION = 1


def availability_record(result) -> Dict[str, object]:
    """One chaos/failover run as a flat, JSON-serializable record.

    ``result`` is an :class:`~repro.harness.experiment.ExperimentResult`
    (duck-typed to avoid importing the harness from the metrics tier).
    The record carries the availability figure's row --- MTTR, lost
    commits, unavailability, tail latency, power --- under a pinned
    ``schema`` version so downstream analysis can consume stored
    records without schema drift.
    """
    shard_availability = dict(sorted(result.availability.items()))
    return {
        "schema": AVAILABILITY_SCHEMA_VERSION,
        "label": result.scheme_label,
        "seed": result.config.seed,
        "failovers": result.failovers,
        "mttr_s": result.mttr_s,
        "lost_commits": result.lost_commits,
        "unserved_shards": result.unserved_shards,
        "availability_min": (min(shard_availability.values())
                             if shard_availability else 1.0),
        "availability_by_shard": shard_availability,
        "p999_latency_s": result.p999_latency_s,
        "avg_power_watts": result.avg_power_watts,
        "failure_rate": result.failure_rate,
        "lost_requests": result.lost,
    }


def availability_table(records: Sequence[Dict[str, object]]) -> str:
    """Render :func:`availability_record` rows as the availability
    figure's ASCII table."""
    headers = ("cell", "avail(min)", "MTTR s", "lost txns",
               "unserved", "p99.9 s", "power W")
    rows = [(r["label"], f"{r['availability_min']:.4f}",
             f"{r['mttr_s']:.3f}", r["lost_commits"],
             r["unserved_shards"], f"{r['p999_latency_s']:.3f}",
             f"{r['avg_power_watts']:.1f}") for r in records]
    return format_table(headers, rows, title="Availability under chaos")


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compact ASCII sparkline (used by the World Cup timeline bench)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    low, high = min(values), max(values)
    span = high - low or 1.0
    # Downsample to the requested width by bucket means.
    if len(values) > width:
        bucket = len(values) / width
        sampled = []
        for i in range(width):
            lo = int(i * bucket)
            hi = max(lo + 1, int((i + 1) * bucket))
            chunk = values[lo:hi]
            sampled.append(sum(chunk) / len(chunk))
    else:
        sampled = list(values)
    out = []
    for v in sampled:
        idx = int((v - low) / span * (len(glyphs) - 1))
        out.append(glyphs[idx])
    return "".join(out)
