"""Wall-socket power meter model (the Watts up? PRO of Section 6.1).

The meter reports one reading per second --- the mean power over the
elapsed second, i.e. the energy delta divided by the sampling interval
--- with a rated accuracy of +/-1.5%, modelled as uniform multiplicative
reading noise.  The paper averages these one-second readings over the
test phase; :meth:`average_power` reproduces that, restricted to an
arbitrary window so warmup/training phases can be excluded.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.cpu.calibration import METER_NOISE_FRACTION
from repro.sim.engine import Event, Simulator


class PowerMeter:
    """Periodic sampler over an energy source.

    ``energy_fn()`` must return cumulative joules at the current
    simulation time (e.g. ``server.wall_energy``).
    """

    def __init__(self, sim: Simulator, energy_fn: Callable[[], float],
                 rng: random.Random, interval: float = 1.0,
                 noise_fraction: float = METER_NOISE_FRACTION):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if noise_fraction < 0:
            raise ValueError("noise fraction cannot be negative")
        if rng is None:
            # An implicit Random(0) here once hid which seed a figure's
            # meter noise came from; the stream is now the caller's
            # explicit choice (usually streams.get("meter-noise")).
            raise TypeError("PowerMeter requires an explicit rng; pass "
                            "a seeded random.Random or an RNG stream")
        self.sim = sim
        self.energy_fn = energy_fn
        self.rng = rng
        self.interval = interval
        self.noise_fraction = noise_fraction
        #: (sample_end_time, watts) readings.
        self.samples: List[Tuple[float, float]] = []
        self._last_energy = 0.0
        self._timer: Optional[Event] = None
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sampling at the meter's cadence."""
        if self._running:
            raise RuntimeError("meter already running")
        self._running = True
        self._last_energy = self.energy_fn()
        self._timer = self.sim.schedule(self.interval, self._sample,
                                        priority=10)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _sample(self) -> None:
        if not self._running:
            return
        energy = self.energy_fn()
        true_watts = (energy - self._last_energy) / self.interval
        self._last_energy = energy
        if self.noise_fraction > 0:
            error = self.rng.uniform(-self.noise_fraction,
                                     self.noise_fraction)
            reading = true_watts * (1.0 + error)
        else:
            reading = true_watts
        self.samples.append((self.sim.now, reading))
        self._timer = self.sim.schedule(self.interval, self._sample,
                                        priority=10)

    # ------------------------------------------------------------------
    def average_power(self, start: Optional[float] = None,
                      end: Optional[float] = None) -> float:
        """Mean of the readings whose sample window ends in (start, end]."""
        window = [w for t, w in self.samples
                  if (start is None or t > start)
                  and (end is None or t <= end + 1e-9)]
        if not window:
            raise ValueError("no meter samples in the requested window")
        return sum(window) / len(window)

    def readings_in(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Raw (time, watts) readings within a window."""
        return [(t, w) for t, w in self.samples
                if start < t <= end + 1e-9]

    def binned_average(self, start: float, end: float,
                       bin_seconds: float) -> List[Tuple[float, float]]:
        """Average readings into coarser bins (Figure 10(a) uses 5 s)."""
        if bin_seconds <= 0:
            raise ValueError("bin size must be positive")
        bins: dict = {}
        for t, w in self.readings_in(start, end):
            index = int((t - start - 1e-9) / bin_seconds)
            bins.setdefault(index, []).append(w)
        return [(start + (i + 0.5) * bin_seconds,
                 sum(vals) / len(vals))
                for i, vals in sorted(bins.items())]
