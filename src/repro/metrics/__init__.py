"""Measurement layer: wall power meter, latency recorder, reporting.

Mirrors the paper's methodology (Section 6.1): whole-server power is
sampled once per second (the finest granularity of the Watts up? PRO
meter, rated +/-1.5%) and averaged over the test phase; performance is
the *failure rate* --- the fraction of transactions that do not finish
by their deadline.
"""

from repro.metrics.power import PowerMeter
from repro.metrics.latency import LatencyRecorder, WorkloadStats
from repro.metrics.report import format_table, format_series

__all__ = [
    "PowerMeter", "LatencyRecorder", "WorkloadStats",
    "format_table", "format_series",
]
