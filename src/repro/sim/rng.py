"""Named, independently seeded random streams.

Every stochastic component of the reproduction (request interarrival
times, transaction service-time draws, power-meter reading noise, trace
synthesis, ...) pulls from its own named stream.  This gives two
properties the experiments rely on:

* **Reproducibility** --- a run is fully determined by one master seed.
* **Variance isolation** --- changing, say, the number of meter samples
  does not perturb the arrival process, so paired comparisons between
  schemes (POLARIS vs. OnDemand under *the same* arrivals) are exact.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, name)``.

    Uses SHA-256 rather than ``hash()`` so the derivation is stable
    across interpreter runs and PYTHONHASHSEED settings.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Registry handing out one ``random.Random`` per stream name.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("service-times")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose streams are independent of ours.

        Used when one experiment launches sub-components (e.g. one
        arrival generator per workload) that each need their own family
        of streams.
        """
        return RandomStreams(derive_seed(self.seed, f"spawn:{name}"))

    def names(self):
        """Names of streams created so far (sorted, for diagnostics)."""
        return sorted(self._streams)
