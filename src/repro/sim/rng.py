"""Named, independently seeded random streams.

Every stochastic component of the reproduction (request interarrival
times, transaction service-time draws, power-meter reading noise, trace
synthesis, ...) pulls from its own named stream.  This gives two
properties the experiments rely on:

* **Reproducibility** --- a run is fully determined by one master seed.
* **Variance isolation** --- changing, say, the number of meter samples
  does not perturb the arrival process, so paired comparisons between
  schemes (POLARIS vs. OnDemand under *the same* arrivals) are exact.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, name)``.

    Uses SHA-256 rather than ``hash()`` so the derivation is stable
    across interpreter runs and PYTHONHASHSEED settings.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class BatchedStream(random.Random):
    """A ``random.Random`` that pre-draws blocks of ``random()`` values.

    The Mersenne Twister core produces floats cheaply; the per-call cost
    of a hot stream is dominated by method dispatch.  This subclass
    draws :data:`BLOCK_SIZE` floats at a time and serves them through an
    index bump, so a batched stream's ``random()`` is a list index in
    the common case.

    **Batching contract** --- the served sequence is *bit-identical* to
    the plain ``random.Random(seed)`` sequence, because blocks are
    filled from the inherited generator itself and every pure-Python
    distribution method (``uniform``, ``normalvariate``,
    ``lognormvariate``, ``expovariate``, ``choices``, ...) consumes
    entropy exclusively through ``self.random()``.  Methods that pull
    words straight from the core instead (``getrandbits``, and through
    it ``randrange``/``randint``/``choice``/``shuffle``/``sample``)
    would interleave with the pre-drawn blocks and silently fork the
    sequence, so they raise ``TypeError`` here: streams that need them
    (e.g. the tier-assignment stream) must stay unbatched.
    """

    #: Floats pre-drawn per refill.
    BLOCK_SIZE = 4096

    def __init__(self, seed: int):
        self._sealed = False
        self._block: list = []
        self._index = 0
        super().__init__(seed)
        self._draw = super().random
        self._sealed = True

    def random(self) -> float:
        index = self._index
        block = self._block
        if index >= len(block):
            draw = self._draw
            block[:] = [draw() for _ in range(self.BLOCK_SIZE)]
            index = 0
        self._index = index + 1
        return block[index]

    def uniform(self, a: float, b: float) -> float:
        # Identical arithmetic to random.Random.uniform, on the batch.
        return a + (b - a) * self.random()

    # -- hot distributions served straight off the block ----------------
    # These reimplement the CPython algorithms verbatim (same constants,
    # same arithmetic, same draw order) but read the pre-drawn block
    # in-line instead of paying a ``random()`` frame per uniform draw.
    # ``lognormvariate`` needs no override: the stdlib defines it as
    # ``exp(self.normalvariate(...))`` and picks ours up via ``self``.

    def normalvariate(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        # Kinderman-Monahan, exactly as random.Random.normalvariate.
        magic = random.NV_MAGICCONST
        log = math.log
        block = self._block
        index = self._index
        end = len(block)
        while True:
            if index >= end:
                draw = self._draw
                block[:] = [draw() for _ in range(self.BLOCK_SIZE)]
                end = len(block)
                index = 0
            u1 = block[index]
            index += 1
            if index >= end:
                draw = self._draw
                block[:] = [draw() for _ in range(self.BLOCK_SIZE)]
                end = len(block)
                index = 0
            u2 = 1.0 - block[index]
            index += 1
            z = magic * (u1 - 0.5) / u2
            if z * z / 4.0 <= -log(u2):
                break
        self._index = index
        return mu + z * sigma

    def expovariate(self, lambd: float) -> float:
        # Inverse-CDF, exactly as random.Random.expovariate.
        block = self._block
        index = self._index
        if index >= len(block):
            draw = self._draw
            block[:] = [draw() for _ in range(self.BLOCK_SIZE)]
            index = 0
        self._index = index + 1
        return -math.log(1.0 - block[index]) / lambd

    # -- sequence-forking APIs fail loudly ------------------------------
    def getrandbits(self, k: int) -> int:
        raise TypeError(
            "BatchedStream serves pre-drawn random() blocks; getrandbits "
            "(and randrange/randint/choice/shuffle/sample on top of it) "
            "would bypass them and fork the draw sequence -- use an "
            "unbatched stream")

    def seed(self, *args, **kwargs) -> None:
        if getattr(self, "_sealed", False):
            raise TypeError("cannot reseed a BatchedStream mid-stream")
        super().seed(*args, **kwargs)

    def getstate(self):
        raise TypeError("BatchedStream state spans a pre-drawn block; "
                        "get/setstate are unsupported")

    def setstate(self, state) -> None:
        raise TypeError("BatchedStream state spans a pre-drawn block; "
                        "get/setstate are unsupported")


class RandomStreams:
    """Registry handing out one ``random.Random`` per stream name.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("service-times")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        A stream created by :meth:`get_batched` stays batched: handing
        it out here would look like a full ``random.Random`` but raise
        ``TypeError`` on the first forking call (``randrange``,
        ``choice``, ...) far from this aliasing site, so the mismatch
        is rejected where it happens --- the mirror of the check in
        :meth:`get_batched`.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        elif isinstance(stream, BatchedStream):
            raise ValueError(
                f"stream {name!r} already exists batched; request it "
                f"with get_batched() (or use a distinct name for an "
                f"unbatched stream)")
        return stream

    def get_batched(self, name: str) -> BatchedStream:
        """Return the stream for ``name`` as a :class:`BatchedStream`.

        Serves the exact draw sequence ``get(name)`` would, just
        faster; a stream must be created batched *before* any plain
        :meth:`get` touches it (the two objects would otherwise race
        through one seed), so promoting an existing plain stream is an
        error.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = BatchedStream(derive_seed(self.seed, name))
            self._streams[name] = stream
        elif not isinstance(stream, BatchedStream):
            raise ValueError(
                f"stream {name!r} already exists unbatched; create it "
                f"with get_batched() before any get()")
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose streams are independent of ours.

        Used when one experiment launches sub-components (e.g. one
        arrival generator per workload) that each need their own family
        of streams.
        """
        return RandomStreams(derive_seed(self.seed, f"spawn:{name}"))

    def names(self):
        """Names of streams created so far (sorted, for diagnostics)."""
        return sorted(self._streams)
