"""Deterministic discrete-event simulation engine.

The engine orders events by ``(time, priority, sequence)``: ties at the
same virtual time break first on an explicit integer priority (lower
runs first) and then on insertion order, which keeps runs fully
deterministic regardless of hash randomization or container internals.

Two interchangeable event-queue structures implement that contract:

* ``calendar`` (the default) --- a bucketed calendar queue.  Virtual
  time is partitioned into fixed-width buckets (:data:`DEFAULT_BUCKET_WIDTH_S`);
  future events append to their bucket unsorted in O(1), a small heap
  of *bucket indices* (cheap C-level int comparisons) tracks the
  non-empty buckets, and only the bucket currently being drained is
  sorted --- once, on first touch --- and consumed through a head
  cursor.  Near-horizon inserts (the common case: completions and
  arrivals land in the bucket being drained) cost one bisect into the
  sorted tail.  Pop order is exactly the global ``(time, priority,
  seq)`` order because buckets partition time: everything in a later
  bucket is strictly later than everything in the current one.
* ``heap`` --- the classic global binary heap (:mod:`heapq`) the engine
  shipped with.  Retained as the oracle for the hypothesis equivalence
  suite (``tests/test_engine_calendar.py``) and selectable via
  ``Simulator(queue="heap")``.

Design notes
------------
* Virtual time is a float in **seconds**.  The workloads in this
  reproduction operate at microsecond granularity (transaction service
  times of 60 us .. 8 ms), which is comfortably inside double precision
  for simulated horizons of minutes.
* Cancellation is O(1): events carry a ``cancelled`` flag and are skipped
  when popped.  This matches how the CPU core model reschedules a
  transaction's completion when POLARIS changes the frequency mid-run.
  To keep reschedule-heavy runs (every frequency change cancels and
  re-adds a completion event) from growing the queue unboundedly, the
  simulator compacts the queue in place once cancelled garbage
  dominates; the amortized cost per cancellation stays O(log n).
* Callbacks receive no arguments; use :func:`functools.partial` or
  closures to bind state.  This keeps the hot loop free of argument
  plumbing.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis.sanitizer import invariant, simsan_enabled
from repro.obs.trace import Tracer, resolve_tracer

#: Compaction triggers when the queue holds more than this many cancelled
#: events *and* they outnumber the live ones.  Small enough to bound
#: memory on reschedule-heavy runs, large enough that compaction cost is
#: amortized over many cancellations.
COMPACTION_MIN_GARBAGE = 64

#: Calendar-queue bucket width in virtual seconds.  The transactional
#: workloads dispatch/complete every few tens of microseconds per
#: worker, so 250 us keeps near-horizon buckets at a handful of entries
#: while staying coarse enough that sparse phases (drain, idle) skip
#: empty regions through the bucket-index heap rather than visiting
#: them.
DEFAULT_BUCKET_WIDTH_S = 250e-6


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Instances are comparable so they can live in a heap.  User code should
    treat them as opaque handles, calling only :meth:`cancel` and reading
    :attr:`time`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_sim")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark this event so the engine skips it when its time comes.

        Cancelling an event that already fired (or was already
        cancelled) is a harmless no-op: the live-event accounting is
        only adjusted the first time a still-pending event is cancelled.
        """
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            sim._stale += 1
            if (sim._stale > COMPACTION_MIN_GARBAGE
                    and sim._stale > sim._live):
                sim._compact()

    @property
    def fired(self) -> bool:
        """True once the callback has run (the engine clears it)."""
        return self.callback is None and not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        elif self.callback is None:
            state = "fired"
        else:
            state = "pending"
        return (f"<Event t={self.time:.9f} prio={self.priority} "
                f"seq={self.seq} {state}>")


#: Calendar-queue entries: ``(time, priority, seq, event)``.  Keeping
#: the sort key in a plain tuple means every comparison on the hot path
#: is a C-level tuple compare (``seq`` is unique, so the event object
#: itself is never compared).
_Entry = Tuple[float, int, int, Event]


class HeapEventQueue:
    """The original global binary heap; retained as the oracle engine."""

    kind = "heap"

    __slots__ = ("_heap",)

    def __init__(self):
        self._heap: List[Event] = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def pop_due(self, until: Optional[float]) -> Optional[Event]:
        """Pop and return the earliest event (cancelled ones included),
        or ``None`` when empty or the head lies beyond ``until``."""
        heap = self._heap
        if not heap:
            return None
        event = heap[0]
        if until is not None and event.time > until:
            return None
        heapq.heappop(heap)
        return event

    def peek(self) -> Optional[Event]:
        heap = self._heap
        return heap[0] if heap else None

    def compact(self) -> None:
        """Drop cancelled events in place.

        In-place mutation keeps any outstanding references to the heap
        list (e.g. a running :meth:`Simulator.run` loop) valid.
        """
        live = [e for e in self._heap if not e.cancelled]
        self._heap[:] = live
        heapq.heapify(self._heap)

    def iter_events(self) -> Iterator[Event]:
        return iter(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def sanitize(self) -> None:
        """**heap-integrity** --- the binary-heap ordering property holds
        for every parent/child pair."""
        heap = self._heap
        for index in range(1, len(heap)):
            parent = (index - 1) >> 1
            invariant(not (heap[index] < heap[parent]), "heap-integrity",
                      "heap ordering property violated",
                      index=index, parent=parent,
                      child_time=heap[index].time,
                      parent_time=heap[parent].time)


class CalendarEventQueue:
    """Bucketed calendar queue with lazy per-bucket sorting.

    Invariants (verified by :meth:`sanitize`):

    * ``_buckets`` maps bucket index -> unsorted entry list; its key set
      equals the contents of the ``_bucket_heap`` min-heap exactly (no
      duplicates), so empty buckets are never visited.
    * The current bucket (``_cur_idx``) has been removed from both; its
      entries live in ``_cur_list``, sorted ascending from ``_cur_pos``
      (popped slots before the cursor are cleared to ``None``).
    * Every resident entry's bucket index matches ``int(time // width)``
      and its key tuple mirrors the event's own fields.
    * ``_cur_idx`` is the minimum occupied index while draining, so pop
      order equals the global ``(time, priority, seq)`` order.
    """

    kind = "calendar"

    __slots__ = ("width", "_buckets", "_bucket_heap", "_cur_idx",
                 "_cur_list", "_cur_pos", "_size")

    def __init__(self, bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S):
        if bucket_width_s <= 0:
            raise ValueError("bucket width must be positive")
        self.width = bucket_width_s
        self._buckets: Dict[int, List[_Entry]] = {}
        self._bucket_heap: List[int] = []
        self._cur_idx: int = -1
        self._cur_list: List[Optional[_Entry]] = []
        self._cur_pos: int = 0
        self._size: int = 0

    def push(self, event: Event) -> None:
        time = event.time
        try:
            idx = int(time // self.width)
        except (OverflowError, ValueError):
            raise SimulationError(
                f"cannot schedule at non-finite time {time!r}") from None
        if idx == self._cur_idx:
            # Near-horizon insert into the bucket being drained: keep
            # the sorted tail sorted.  Starting the bisect at the
            # cursor both skips cleared slots and realizes the heapq
            # contract --- an entry sorting at/before already-fired
            # ones becomes the immediate head and fires next.
            lst = self._cur_list
            entry = (time, event.priority, event.seq, event)
            lst.insert(bisect_left(lst, entry, self._cur_pos), entry)
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [
                    (time, event.priority, event.seq, event)]
                heapq.heappush(self._bucket_heap, idx)
            else:
                bucket.append((time, event.priority, event.seq, event))
        self._size += 1

    def _advance(self) -> Optional[_Entry]:
        """Make the current bucket the minimum occupied one and return
        its head entry (``None`` when drained)."""
        heap = self._bucket_heap
        while True:
            pos = self._cur_pos
            lst = self._cur_list
            if pos < len(lst):
                if heap and heap[0] < self._cur_idx:
                    # An earlier bucket appeared behind the cursor's
                    # bucket: only possible after run(until=...) parked
                    # the clock short of the next event and user code
                    # then scheduled into the gap.  Re-shelve the
                    # remainder and re-pick the minimum.
                    rest = lst[pos:]
                    self._buckets[self._cur_idx] = rest
                    heapq.heappush(heap, self._cur_idx)
                    self._cur_idx = -1
                    self._cur_list = []
                    self._cur_pos = 0
                    continue
                return lst[pos]
            if not heap:
                self._cur_idx = -1
                self._cur_list = []
                self._cur_pos = 0
                return None
            idx = heapq.heappop(heap)
            bucket = self._buckets.pop(idx)
            if len(bucket) > 1:
                bucket.sort()
            self._cur_idx = idx
            self._cur_list = bucket
            self._cur_pos = 0

    def pop_due(self, until: Optional[float]) -> Optional[Event]:
        """Pop and return the earliest event (cancelled ones included),
        or ``None`` when empty or the head lies beyond ``until``."""
        pos = self._cur_pos
        lst = self._cur_list
        if pos < len(lst):
            heap = self._bucket_heap
            if heap and heap[0] < self._cur_idx:
                entry = self._advance()
                if entry is None:
                    return None
            else:
                entry = lst[pos]
        else:
            entry = self._advance()
            if entry is None:
                return None
        if until is not None and entry[0] > until:
            return None
        pos = self._cur_pos
        self._cur_list[pos] = None  # free the slot; bisect never sees it
        self._cur_pos = pos + 1
        self._size -= 1
        return entry[3]

    def peek(self) -> Optional[Event]:
        entry = self._advance()
        return None if entry is None else entry[3]

    def compact(self) -> None:
        """Rebuild every bucket without the cancelled entries."""
        entries = [e for e in self._cur_list[self._cur_pos:]
                   if not e[3].cancelled]
        for bucket in self._buckets.values():
            entries.extend(e for e in bucket if not e[3].cancelled)
        self._buckets.clear()
        self._bucket_heap.clear()
        self._cur_idx = -1
        self._cur_list = []
        self._cur_pos = 0
        self._size = len(entries)
        buckets = self._buckets
        width = self.width
        for entry in entries:
            idx = int(entry[0] // width)
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [entry]
            else:
                bucket.append(entry)
        self._bucket_heap.extend(buckets)
        heapq.heapify(self._bucket_heap)

    def iter_events(self) -> Iterator[Event]:
        for entry in self._cur_list[self._cur_pos:]:
            yield entry[3]
        for bucket in self._buckets.values():
            for entry in bucket:
                yield entry[3]

    def __len__(self) -> int:
        return self._size

    def sanitize(self) -> None:
        """**bucket-integrity** --- the class-docstring invariants."""
        heap_set = set(self._bucket_heap)
        invariant(len(heap_set) == len(self._bucket_heap),
                  "bucket-integrity",
                  "bucket-index heap contains duplicates",
                  heap_len=len(self._bucket_heap),
                  distinct=len(heap_set))
        invariant(heap_set == set(self._buckets), "bucket-integrity",
                  "bucket-index heap disagrees with the bucket map",
                  heap_only=sorted(heap_set - set(self._buckets)),
                  map_only=sorted(set(self._buckets) - heap_set))
        heap = self._bucket_heap
        for index in range(1, len(heap)):
            parent = (index - 1) >> 1
            invariant(heap[parent] <= heap[index], "bucket-integrity",
                      "bucket-index heap ordering violated",
                      index=index, parent=parent)
        width = self.width
        census = 0
        for idx, bucket in self._buckets.items():
            invariant(idx != self._cur_idx, "bucket-integrity",
                      "current bucket also present in the bucket map",
                      index=idx)
            for entry in bucket:
                census += 1
                self._check_entry(entry, idx)
        tail = self._cur_list[self._cur_pos:]
        for offset, entry in enumerate(tail):
            census += 1
            invariant(entry is not None, "bucket-integrity",
                      "cleared slot at/after the cursor",
                      position=self._cur_pos + offset)
            self._check_entry(entry, self._cur_idx)
            invariant(offset == 0 or tail[offset - 1] < entry,
                      "bucket-integrity",
                      "current bucket tail is not sorted",
                      position=self._cur_pos + offset)
        invariant(census == self._size, "bucket-integrity",
                  "size counter disagrees with the bucket census",
                  size_counter=self._size, census=census)

    def _check_entry(self, entry: _Entry, idx: int) -> None:
        time, priority, seq, event = entry
        invariant(int(time // self.width) == idx, "bucket-integrity",
                  "entry filed under the wrong bucket",
                  entry_time=time, bucket_index=idx, width=self.width)
        invariant((time, priority, seq)
                  == (event.time, event.priority, event.seq),
                  "bucket-integrity",
                  "entry key disagrees with its event",
                  entry_time=time, event_time=event.time, seq=seq)


#: queue kind -> factory; ``Simulator(queue=...)`` selects one.
EVENT_QUEUES = {
    "calendar": CalendarEventQueue,
    "heap": HeapEventQueue,
}


class Simulator:
    """Discrete-event loop with a virtual clock.

    ``queue`` selects the event-queue structure (``"calendar"`` default,
    ``"heap"`` oracle); ``bucket_width_s`` tunes the calendar bucket
    width and is ignored by the heap queue.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0,
                 sanitize: Optional[bool] = None,
                 tracer: Optional[Tracer] = None,
                 queue: str = "calendar",
                 bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S):
        self.now: float = start_time
        #: simsan: resolved once at construction (arg > REPRO_SIMSAN env)
        #: and hoisted into a local before hot loops, so a disabled
        #: sanitizer costs one boolean test per event.
        self.sanitize: bool = simsan_enabled(sanitize)
        #: repro.obs: the simulator carries the tracer so every
        #: component that holds a ``sim`` reference (cores, servers,
        #: governors) reads ``sim.tracer`` --- the same inheritance
        #: path as ``sim.sanitize``.  The engine itself records only
        #: run boundaries, *outside* the event loop: per-event tracing
        #: lives in the components, so a disabled tracer costs the hot
        #: loop nothing at all.
        self.tracer: Tracer = resolve_tracer(tracer)
        try:
            factory = EVENT_QUEUES[queue]
        except KeyError:
            raise ValueError(
                f"unknown event queue {queue!r}; "
                f"available: {sorted(EVENT_QUEUES)}") from None
        if factory is CalendarEventQueue:
            self._queue = CalendarEventQueue(bucket_width_s)
        else:
            self._queue = factory()
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: live (scheduled, not cancelled, not fired) events in the queue.
        self._live: int = 0
        #: cancelled events still occupying queue slots.
        self._stale: int = 0
        #: total callbacks executed over this simulator's lifetime.
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns the :class:`Event`
        handle, which may be cancelled before it fires.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} seconds in the past")
        # Inlined schedule_at body (minus its time < now check, which a
        # non-negative delay satisfies by construction): this runs once
        # per scheduled event, and the extra frame is measurable.
        self._seq += 1
        event = Event(self.now + delay, priority, self._seq, callback, self)
        self._queue.push(event)
        self._live += 1
        return event

    def schedule_at(self, time: float, callback: Callable[[], None],
                    priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})")
        self._seq += 1
        event = Event(time, priority, self._seq, callback, self)
        self._queue.push(event)
        self._live += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events in order until the queue drains or ``until``.

        When ``until`` is given, all events with ``time <= until`` are
        processed and the clock is then advanced to exactly ``until``
        (so periodic samplers observe a full final interval).
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        # Local bindings shave attribute lookups off the per-event cost;
        # the queue object is mutated only in place (including by
        # _compact), so the bound method stays valid.
        pop_due = self._queue.pop_due
        sanitize = self.sanitize
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(tracer.track("sim", "engine"), "run:begin",
                           self.now, pending=self._live,
                           until_s=until if until is not None else -1.0)
        processed = 0
        try:
            while not self._stopped:
                event = pop_due(until)
                if event is None:
                    break
                callback = event.callback
                if event.cancelled or callback is None:
                    self._stale -= 1
                    continue
                if sanitize and event.time < self.now:
                    invariant(False, "clock-monotonic",
                              "event fires before the current clock",
                              event_time=event.time, now=self.now,
                              seq=event.seq, priority=event.priority)
                event.callback = None  # marks it fired; frees the closure
                self._live -= 1
                self.now = event.time
                processed += 1
                callback()
            if until is not None and not self._stopped and self.now < until:
                self.now = until
            if sanitize:
                self.sanitize_check()
            if tracer.enabled:
                tracer.instant(tracer.track("sim", "engine"), "run:end",
                               self.now, processed=processed,
                               pending=self._live)
        finally:
            self.events_processed += processed
            self._running = False

    def step(self) -> bool:
        """Process a single (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        Useful in tests that want to observe intermediate states.
        """
        pop_due = self._queue.pop_due
        while True:
            event = pop_due(None)
            if event is None:
                return False
            callback = event.callback
            if event.cancelled or callback is None:
                self._stale -= 1
                continue
            if self.sanitize and event.time < self.now:
                invariant(False, "clock-monotonic",
                          "event fires before the current clock",
                          event_time=event.time, now=self.now,
                          seq=event.seq, priority=event.priority)
            event.callback = None
            self._live -= 1
            self.now = event.time
            self.events_processed += 1
            callback()
            return True

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-cancelled events (O(1))."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if drained."""
        queue = self._queue
        while True:
            event = queue.peek()
            if event is None:
                return None
            if not event.cancelled:
                return event.time
            queue.pop_due(None)
            self._stale -= 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Drop cancelled events from the queue, in place."""
        self._queue.compact()
        self._stale = 0
        if self.sanitize:
            self.sanitize_check()

    def heap_size(self) -> int:
        """Queue slots in use, including cancelled garbage (diagnostics)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # simsan
    # ------------------------------------------------------------------
    def sanitize_check(self) -> None:
        """Verify the engine's structural invariants (O(queue size)).

        Run automatically after :meth:`run` and after every compaction
        when the sanitizer is enabled; callable directly from tests.
        Checks, in order:

        * the queue structure's own invariants --- **heap-integrity**
          (binary-heap ordering for every parent/child pair) on the
          heap queue, **bucket-integrity** (bucket membership, sorted
          current tail, index-heap/bucket-map agreement, size census)
          on the calendar queue;
        * **clock-monotonic** --- no pending event is scheduled in the
          past;
        * **event-accounting** --- ``_live``/``_stale`` counters match a
          direct census of the queue, so :meth:`pending_count` is exact
          and compaction triggers when it should.
        """
        self._queue.sanitize()
        pending = 0
        cancelled = 0
        for event in self._queue.iter_events():
            if event.cancelled:
                cancelled += 1
                continue
            if event.callback is None:
                continue  # fired events never re-enter the queue
            pending += 1
            invariant(event.time >= self.now, "clock-monotonic",
                      "pending event is scheduled in the past",
                      event_time=event.time, now=self.now, seq=event.seq)
        invariant(self._live == pending, "event-accounting",
                  "live-event counter disagrees with the queue census",
                  live_counter=self._live, pending_in_heap=pending,
                  now=self.now)
        invariant(self._stale == cancelled, "event-accounting",
                  "stale-event counter disagrees with the queue census",
                  stale_counter=self._stale, cancelled_in_heap=cancelled,
                  now=self.now)
