"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
ordered by ``(time, priority, sequence)``: ties at the same virtual time
break first on an explicit integer priority (lower runs first) and then
on insertion order, which keeps runs fully deterministic regardless of
hash randomization or heap internals.

Design notes
------------
* Virtual time is a float in **seconds**.  The workloads in this
  reproduction operate at microsecond granularity (transaction service
  times of 60 us .. 8 ms), which is comfortably inside double precision
  for simulated horizons of minutes.
* Cancellation is O(1): events carry a ``cancelled`` flag and are skipped
  when popped.  This matches how the CPU core model reschedules a
  transaction's completion when POLARIS changes the frequency mid-run.
* Callbacks receive no arguments; use :func:`functools.partial` or
  closures to bind state.  This keeps the hot loop free of argument
  plumbing.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Instances are comparable so they can live in a heap.  User code should
    treat them as opaque handles, calling only :meth:`cancel` and reading
    :attr:`time`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the engine skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} prio={self.priority} {state}>"


class Simulator:
    """Discrete-event loop with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0):
        self.now: float = start_time
        self._heap: List[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns the :class:`Event`
        handle, which may be cancelled before it fires.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} seconds in the past")
        return self.schedule_at(self.now + delay, callback, priority)

    def schedule_at(self, time: float, callback: Callable[[], None],
                    priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})")
        self._seq += 1
        event = Event(time, priority, self._seq, callback)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events in order until the queue drains or ``until``.

        When ``until`` is given, all events with ``time <= until`` are
        processed and the clock is then advanced to exactly ``until``
        (so periodic samplers observe a full final interval).
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.now = event.time
                event.callback()
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Process a single (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        Useful in tests that want to observe intermediate states.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            return True
        return False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
