"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
ordered by ``(time, priority, sequence)``: ties at the same virtual time
break first on an explicit integer priority (lower runs first) and then
on insertion order, which keeps runs fully deterministic regardless of
hash randomization or heap internals.

Design notes
------------
* Virtual time is a float in **seconds**.  The workloads in this
  reproduction operate at microsecond granularity (transaction service
  times of 60 us .. 8 ms), which is comfortably inside double precision
  for simulated horizons of minutes.
* Cancellation is O(1): events carry a ``cancelled`` flag and are skipped
  when popped.  This matches how the CPU core model reschedules a
  transaction's completion when POLARIS changes the frequency mid-run.
  To keep reschedule-heavy runs (every frequency change cancels and
  re-adds a completion event) from growing the heap unboundedly, the
  simulator compacts the heap in place once cancelled garbage dominates;
  the amortized cost per cancellation stays O(log n).
* Callbacks receive no arguments; use :func:`functools.partial` or
  closures to bind state.  This keeps the hot loop free of argument
  plumbing.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.analysis.sanitizer import invariant, simsan_enabled
from repro.obs.trace import Tracer, resolve_tracer

#: Compaction triggers when the heap holds more than this many cancelled
#: events *and* they outnumber the live ones.  Small enough to bound
#: memory on reschedule-heavy runs, large enough that compaction cost is
#: amortized over many cancellations.
COMPACTION_MIN_GARBAGE = 64


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Instances are comparable so they can live in a heap.  User code should
    treat them as opaque handles, calling only :meth:`cancel` and reading
    :attr:`time`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_sim")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark this event so the engine skips it when its time comes.

        Cancelling an event that already fired (or was already
        cancelled) is a harmless no-op: the live-event accounting is
        only adjusted the first time a still-pending event is cancelled.
        """
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            sim._stale += 1
            if (sim._stale > COMPACTION_MIN_GARBAGE
                    and sim._stale > sim._live):
                sim._compact()

    @property
    def fired(self) -> bool:
        """True once the callback has run (the engine clears it)."""
        return self.callback is None and not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        elif self.callback is None:
            state = "fired"
        else:
            state = "pending"
        return (f"<Event t={self.time:.9f} prio={self.priority} "
                f"seq={self.seq} {state}>")


class Simulator:
    """Discrete-event loop with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0,
                 sanitize: Optional[bool] = None,
                 tracer: Optional[Tracer] = None):
        self.now: float = start_time
        #: simsan: resolved once at construction (arg > REPRO_SIMSAN env)
        #: and hoisted into a local before hot loops, so a disabled
        #: sanitizer costs one boolean test per event.
        self.sanitize: bool = simsan_enabled(sanitize)
        #: repro.obs: the simulator carries the tracer so every
        #: component that holds a ``sim`` reference (cores, servers,
        #: governors) reads ``sim.tracer`` --- the same inheritance
        #: path as ``sim.sanitize``.  The engine itself records only
        #: run boundaries, *outside* the event loop: per-event tracing
        #: lives in the components, so a disabled tracer costs the hot
        #: loop nothing at all.
        self.tracer: Tracer = resolve_tracer(tracer)
        self._heap: List[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: live (scheduled, not cancelled, not fired) events in the heap.
        self._live: int = 0
        #: cancelled events still occupying heap slots.
        self._stale: int = 0
        #: total callbacks executed over this simulator's lifetime.
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns the :class:`Event`
        handle, which may be cancelled before it fires.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} seconds in the past")
        return self.schedule_at(self.now + delay, callback, priority)

    def schedule_at(self, time: float, callback: Callable[[], None],
                    priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})")
        self._seq += 1
        event = Event(time, priority, self._seq, callback, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events in order until the queue drains or ``until``.

        When ``until`` is given, all events with ``time <= until`` are
        processed and the clock is then advanced to exactly ``until``
        (so periodic samplers observe a full final interval).
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        # Local bindings shave attribute lookups off the per-event cost;
        # the heap list itself is mutated only in place (including by
        # _compact), so the local reference stays valid.
        heap = self._heap
        heappop = heapq.heappop
        sanitize = self.sanitize
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(tracer.track("sim", "engine"), "run:begin",
                           self.now, pending=self._live,
                           until_s=until if until is not None else -1.0)
        processed = 0
        try:
            while heap and not self._stopped:
                event = heap[0]
                if until is not None and event.time > until:
                    break
                heappop(heap)
                callback = event.callback
                if event.cancelled or callback is None:
                    self._stale -= 1
                    continue
                if sanitize and event.time < self.now:
                    invariant(False, "clock-monotonic",
                              "event fires before the current clock",
                              event_time=event.time, now=self.now,
                              seq=event.seq, priority=event.priority)
                event.callback = None  # marks it fired; frees the closure
                self._live -= 1
                self.now = event.time
                processed += 1
                callback()
            if until is not None and not self._stopped and self.now < until:
                self.now = until
            if sanitize:
                self.sanitize_check()
            if tracer.enabled:
                tracer.instant(tracer.track("sim", "engine"), "run:end",
                               self.now, processed=processed,
                               pending=self._live)
        finally:
            self.events_processed += processed
            self._running = False

    def step(self) -> bool:
        """Process a single (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        Useful in tests that want to observe intermediate states.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            callback = event.callback
            if event.cancelled or callback is None:
                self._stale -= 1
                continue
            if self.sanitize and event.time < self.now:
                invariant(False, "clock-monotonic",
                          "event fires before the current clock",
                          event_time=event.time, now=self.now,
                          seq=event.seq, priority=event.priority)
            event.callback = None
            self._live -= 1
            self.now = event.time
            self.events_processed += 1
            callback()
            return True
        return False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-cancelled events (O(1))."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if drained."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._stale -= 1
        return heap[0].time if heap else None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Drop cancelled events from the heap, in place.

        In-place mutation keeps any outstanding local references to the
        heap list (e.g. inside a running :meth:`run` loop) valid.
        """
        live = [e for e in self._heap if not e.cancelled]
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._stale = 0
        if self.sanitize:
            self.sanitize_check()

    def heap_size(self) -> int:
        """Heap slots in use, including cancelled garbage (diagnostics)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # simsan
    # ------------------------------------------------------------------
    def sanitize_check(self) -> None:
        """Verify the engine's structural invariants (O(heap size)).

        Run automatically after :meth:`run` and after every compaction
        when the sanitizer is enabled; callable directly from tests.
        Checks, in order:

        * **heap-integrity** --- the binary-heap ordering property holds
          for every parent/child pair (compaction or external mutation
          cannot have broken ``heapq``'s contract);
        * **clock-monotonic** --- no pending event is scheduled in the
          past;
        * **event-accounting** --- ``_live``/``_stale`` counters match a
          direct census of the heap, so :meth:`pending_count` is exact
          and compaction triggers when it should.
        """
        heap = self._heap
        for index in range(1, len(heap)):
            parent = (index - 1) >> 1
            invariant(not (heap[index] < heap[parent]), "heap-integrity",
                      "heap ordering property violated",
                      index=index, parent=parent,
                      child_time=heap[index].time,
                      parent_time=heap[parent].time)
        pending = 0
        cancelled = 0
        for event in heap:
            if event.cancelled:
                cancelled += 1
                continue
            if event.callback is None:
                continue  # fired events never re-enter the heap
            pending += 1
            invariant(event.time >= self.now, "clock-monotonic",
                      "pending event is scheduled in the past",
                      event_time=event.time, now=self.now, seq=event.seq)
        invariant(self._live == pending, "event-accounting",
                  "live-event counter disagrees with the heap census",
                  live_counter=self._live, pending_in_heap=pending,
                  now=self.now)
        invariant(self._stale == cancelled, "event-accounting",
                  "stale-event counter disagrees with the heap census",
                  stale_counter=self._stale, cancelled_in_heap=cancelled,
                  now=self.now)
