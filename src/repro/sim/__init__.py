"""Discrete-event simulation substrate.

The POLARIS paper evaluates on real hardware with microsecond-scale
scheduling decisions.  Python cannot make per-transaction scheduling
decisions at that timescale in real time, so the whole reproduction runs
on a deterministic discrete-event simulator with a virtual clock measured
in (floating point) seconds.  Everything above this package --- CPU cores,
governors, the database server, POLARIS itself --- is written against the
:class:`Simulator` event loop and never consults wall-clock time.

Public classes
--------------
Simulator
    The event loop: schedule callbacks at absolute or relative virtual
    times, run until a deadline or until the event queue drains.
Event
    Handle returned by :meth:`Simulator.schedule`; supports cancellation.
RandomStreams
    A registry of independently seeded ``random.Random`` streams, so each
    stochastic component (arrivals, service times, meter noise, ...)
    draws from its own reproducible stream.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.rng import RandomStreams

__all__ = ["Event", "Simulator", "SimulationError", "RandomStreams"]
