"""POLARIS reproduction: workload-aware CPU performance scaling for
transactional database systems (Korkmaz et al., SIGMOD 2018).

Public API overview
-------------------
``repro.core``
    The paper's contribution: the POLARIS scheduler (EDF ordering +
    SetProcessorFreq frequency selection), its execution-time
    estimator, workloads with latency targets, and the ablated
    POLARIS-FIFO / POLARIS-FIFO-NOARRIVE variants.
``repro.sim`` / ``repro.cpu`` / ``repro.db`` / ``repro.workloads``
    The simulated substrate: discrete-event engine, DVFS-capable cores
    with a calibrated power model, the in-memory transactional server
    (storage engine + workers), and the TPC-C / TPC-E workloads.
``repro.governors``
    The OS baselines: OnDemand, Conservative, and static governors.
``repro.theory``
    Section 4's standard model: YDS, OA, idealized POLARIS, and
    competitive-ratio experiments.
``repro.harness``
    The paper's methodology: ``run_experiment`` for one cell, and one
    function per evaluation figure (``fig3`` ... ``fig12``, theory,
    overhead), also exposed via the ``polaris-repro`` CLI.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
