"""Power-model calibration constants.

The paper measures *whole-server wall power* with a Watts up? PRO meter
on a 2-socket, 16-physical-core Xeon E5-2640 v3 server.  We cannot
measure that hardware, so the reproduction's power model is a small
parametric family

    P_server(t) = STATIC_WATTS + sum over cores of p_core(t)
    p_core      = active_watts(f)      while executing a transaction
                  idle_watts(f)        while its run queue is empty

calibrated against the power levels the paper reports:

* ~170 W with all 16 cores at 2.8 GHz under medium (60%) load (Fig. 6);
* ~30 W less at a static 2.4 GHz under the same offered load (Fig. 6);
* ~185-190 W at 2.8 GHz under high (90%) load (Fig. 9);
* ~40 W gap between 2.8 GHz and POLARIS under low (30%) load (Fig. 8);
* POLARIS floor around 128-130 W at medium load with loose slack (Fig. 6).

Functional form
---------------
``active_watts(f) = ACTIVE_BASE + DYN_COEFF * f**3`` for the non-turbo
grid --- the classic ``C * V^2 * f`` dynamic-power law with V affine in f
collapses to roughly cubic --- plus ``TURBO_EXTRA`` at 2.8 GHz, because
the turbo level runs at a disproportionately higher voltage (this is why
the paper sees a steep 30 W cliff between 2.8 and 2.4 GHz).

``idle_watts(f) = IDLE_BASE + IDLE_FRACTION * active_watts(f)``: a core
whose queue is empty sits in the shallow C1 state (the testbed has deep
C-states effectively unused at these load levels, Section 7.2 refs
[37, 38]); clock gating removes most switching power but the core still
pays voltage-dependent leakage and its share of uncore power, so idle
draw grows with the operating frequency.  This frequency-dependent idle
term is what makes a *fixed* 2.8 GHz setting expensive even at low load,
exactly the effect POLARIS exploits.

The constants below were fitted by grid search against the bullet list
above using the reproduction's own harness (see
``benchmarks/test_fig6_medium_load.py`` output in EXPERIMENTS.md).
"""

#: Non-CPU server floor: motherboard, 128 GB DRAM, PSU losses, fans, disks.
STATIC_WATTS = 100.0

#: Frequency-independent part of an active core's draw (W).
ACTIVE_BASE = 0.8

#: Cubic dynamic-power coefficient (W / GHz^3).
DYN_COEFF = 0.13

#: Extra active draw at the 2.8 GHz turbo level (W).
TURBO_EXTRA = 1.05

#: Floor of an idle (C1) core's draw (W).
IDLE_BASE = 0.40

#: Fraction of the *frequency-dependent* active draw an idle core keeps
#: paying (voltage-scaled leakage plus the core's share of uncore/LLC
#: power, which tracks the package operating point).  The high value is
#: what the paper's measurements imply: a fixed 2.8 GHz setting stays
#: ~40 W above POLARIS even at 30% load (Figure 8), which requires idle
#: cores at high frequency to draw a large fraction of their active
#: power.
IDLE_FRACTION = 0.769

#: Turbo frequency of the testbed part (GHz).
TURBO_FREQ_GHZ = 2.8

#: Wall-meter accuracy: the Watts up? PRO is rated +/-1.5% (Section 6.1).
METER_NOISE_FRACTION = 0.015

#: Number of physical cores of the testbed (2 sockets x 8).
TESTBED_CORES = 16


def active_watts(freq_ghz: float) -> float:
    """Per-core draw while executing at ``freq_ghz`` (W)."""
    watts = ACTIVE_BASE + DYN_COEFF * freq_ghz ** 3
    if freq_ghz >= TURBO_FREQ_GHZ - 1e-9:
        watts += TURBO_EXTRA
    return watts


def idle_watts(freq_ghz: float) -> float:
    """Per-core draw while idle in C1 at operating point ``freq_ghz`` (W)."""
    return IDLE_BASE + IDLE_FRACTION * (active_watts(freq_ghz) - ACTIVE_BASE)
