"""ACPI P-state tables.

A P-state is a (frequency, voltage) operating point; P0 is the fastest
and most power-hungry (Section 2 of the paper).  The paper's testbed CPU
(Xeon E5-2640 v3) exposes "15 frequency levels from 1.2 GHz to 2.6 GHz
with 0.1 GHz steps, plus 2.8 GHz"; POLARIS itself uses the five-level
subset {1.2, 1.6, 2.0, 2.4, 2.8} GHz while the kernel governors may use
the full grid.  Both tables are provided here.

Voltages follow the near-affine V/f relation typical of this part
(used only by the power model; POLARIS never sees voltage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class PState:
    """One ACPI P-state: an immutable (frequency, voltage) pair."""

    freq_ghz: float
    voltage: float

    def __post_init__(self):
        if self.freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {self.freq_ghz}")
        if self.voltage <= 0:
            raise ValueError(f"voltage must be positive, got {self.voltage}")


def _default_voltage(freq_ghz: float) -> float:
    """Near-affine V/f curve, ~0.78 V at 1.2 GHz up to ~1.02 V at 2.8 GHz."""
    return 0.6 + 0.15 * freq_ghz


class PStateTable:
    """Ordered collection of P-states, indexed from slowest to fastest.

    Note the index convention: ACPI numbers P0 as the *fastest* state,
    but for scheduling it is more convenient to iterate frequencies in
    increasing order (as POLARIS's SetProcessorFreq does), so this table
    stores states sorted ascending by frequency and exposes both views.
    """

    def __init__(self, states: Iterable[PState]):
        self._states: List[PState] = sorted(states, key=lambda s: s.freq_ghz)
        if not self._states:
            raise ValueError("P-state table cannot be empty")
        freqs = [s.freq_ghz for s in self._states]
        if len(set(freqs)) != len(freqs):
            raise ValueError(f"duplicate frequencies in P-state table: {freqs}")
        self._by_freq_ghz = {s.freq_ghz: s for s in self._states}

    # -- construction helpers -----------------------------------------
    @classmethod
    def from_frequencies(cls, freqs_ghz: Sequence[float]) -> "PStateTable":
        """Build a table with default voltages for the given frequencies."""
        return cls(PState(f, _default_voltage(f)) for f in freqs_ghz)

    def subset(self, freqs_ghz: Sequence[float]) -> "PStateTable":
        """Restrict to the given frequencies (must all exist in this table)."""
        missing = [f for f in freqs_ghz if f not in self._by_freq_ghz]
        if missing:
            raise ValueError(f"frequencies not in table: {missing}")
        return PStateTable(self._by_freq_ghz[f] for f in freqs_ghz)

    # -- queries -------------------------------------------------------
    @property
    def frequencies(self) -> Tuple[float, ...]:
        """All frequencies in GHz, ascending."""
        return tuple(s.freq_ghz for s in self._states)

    @property
    def min_freq(self) -> float:
        return self._states[0].freq_ghz

    @property
    def max_freq(self) -> float:
        return self._states[-1].freq_ghz

    def state_for(self, freq_ghz: float) -> PState:
        """The P-state at exactly ``freq_ghz`` (raises ``KeyError`` if absent)."""
        return self._by_freq_ghz[freq_ghz]

    def __contains__(self, freq_ghz: float) -> bool:
        return freq_ghz in self._by_freq_ghz

    def in_bounds(self, freq_ghz: float) -> bool:
        """Whether ``freq_ghz`` lies within the table's [min, max] range.

        Weaker than membership (``in``): used by the simsan frequency
        check, where a tolerance keeps float round-trips from
        false-alarming at the exact endpoints.
        """
        return (self.min_freq - 1e-12 <= freq_ghz
                <= self.max_freq + 1e-12)

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self):
        return iter(self._states)

    def nearest_at_least(self, freq_ghz: float) -> float:
        """Smallest table frequency >= ``freq_ghz`` (max frequency if none).

        This is how the Linux ``ondemand`` governor maps its computed
        target frequency onto the hardware grid (relation ``CPUFREQ_RELATION_L``).
        """
        for state in self._states:
            if state.freq_ghz >= freq_ghz - 1e-12:
                return state.freq_ghz
        return self.max_freq

    def nearest_at_most(self, freq_ghz: float) -> float:
        """Largest table frequency <= ``freq_ghz`` (min frequency if none).

        The downward counterpart of :meth:`nearest_at_least`
        (``CPUFREQ_RELATION_H``); used to honor thermal-throttle
        ceilings, which cap how fast a core may run.
        """
        for state in reversed(self._states):
            if state.freq_ghz <= freq_ghz + 1e-12:
                return state.freq_ghz
        return self.min_freq

    def step_up(self, freq_ghz: float, steps: int = 1) -> float:
        """Frequency ``steps`` levels above ``freq_ghz``, clamped to max."""
        idx = self._index_of(freq_ghz)
        return self._states[min(idx + steps, len(self._states) - 1)].freq_ghz

    def step_down(self, freq_ghz: float, steps: int = 1) -> float:
        """Frequency ``steps`` levels below ``freq_ghz``, clamped to min."""
        idx = self._index_of(freq_ghz)
        return self._states[max(idx - steps, 0)].freq_ghz

    def state_label(self, freq_ghz: float) -> str:
        """ACPI name of the state at ``freq_ghz`` (``P0`` = fastest).

        The table stores states ascending by frequency while ACPI
        numbers them descending, hence the reversal.  Used by trace
        annotations so P-state transitions read the way the paper (and
        ``cpufreq``) name them.
        """
        return f"P{len(self._states) - 1 - self._index_of(freq_ghz)}"

    def _index_of(self, freq_ghz: float) -> int:
        for i, state in enumerate(self._states):
            if abs(state.freq_ghz - freq_ghz) < 1e-12:
                return i
        raise KeyError(f"{freq_ghz} GHz not in P-state table")


def _xeon_grid() -> List[float]:
    """1.2 .. 2.6 GHz in 0.1 steps (15 levels) plus the 2.8 GHz turbo level."""
    grid = [round(1.2 + 0.1 * i, 1) for i in range(15)]  # 1.2 .. 2.6
    grid.append(2.8)
    return grid


#: Full 16-level grid of the paper's testbed CPU.
XEON_E5_2640V3_PSTATES = PStateTable.from_frequencies(_xeon_grid())

#: The five-level subset the paper configures POLARIS with (Section 6.1).
POLARIS_FREQUENCIES = (1.2, 1.6, 2.0, 2.4, 2.8)
