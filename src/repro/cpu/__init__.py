"""Simulated DVFS-capable CPU substrate.

Models the paper's testbed processor (2x Intel Xeon E5-2640 v3): ACPI
P-states from 1.2 to 2.6 GHz in 0.1 GHz steps plus a 2.8 GHz turbo
level, per-core frequency control, a calibrated power model, C-state
idle behaviour, an MSR register file (the interface the POLARIS
prototype used to change frequency, Section 5 of the paper), and RAPL
package energy counters.

The central class is :class:`Core`: it executes non-preemptive jobs
whose *work* is expressed in giga-cycles, so a job of work ``w`` takes
``w / f`` virtual seconds at frequency ``f`` GHz --- the execution model
of the paper's Section 4.1, discretized to the P-state grid.  Frequency
may change *while a job runs* (POLARIS does this on request arrival);
the core re-computes the remaining work and reschedules its completion.
"""

from repro.cpu.pstates import PState, PStateTable, XEON_E5_2640V3_PSTATES, POLARIS_FREQUENCIES
from repro.cpu.power import CorePowerModel, ServerPowerModel
from repro.cpu.cstates import CState, CStateModel
from repro.cpu.core import Core, Job
from repro.cpu.msr import MsrFile, MsrError, IA32_PERF_CTL, IA32_PERF_STATUS, MSR_PKG_ENERGY_STATUS, MSR_RAPL_POWER_UNIT
from repro.cpu.rapl import RaplPackage
from repro.cpu.topology import FrequencyDomain, SocketTopology, make_topology, GRANULARITIES

__all__ = [
    "PState", "PStateTable", "XEON_E5_2640V3_PSTATES", "POLARIS_FREQUENCIES",
    "CorePowerModel", "ServerPowerModel",
    "CState", "CStateModel",
    "Core", "Job",
    "MsrFile", "MsrError",
    "IA32_PERF_CTL", "IA32_PERF_STATUS",
    "MSR_PKG_ENERGY_STATUS", "MSR_RAPL_POWER_UNIT",
    "RaplPackage",
    "FrequencyDomain", "SocketTopology", "make_topology", "GRANULARITIES",
]
