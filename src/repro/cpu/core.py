"""Simulated frequency-scalable CPU core.

A :class:`Core` executes non-preemptive :class:`Job`\\ s.  A job's size is
its *work* in giga-cycles; at frequency ``f`` GHz the remaining work
drains at ``f`` giga-cycles per second, so a fresh job of work ``w``
takes ``w / f`` seconds --- the standard speed-scaling execution model
(paper Section 4.1) restricted to the discrete P-state grid.

Frequency changes may arrive *mid-job*: POLARIS raises the frequency
when an urgent transaction arrives behind the running one (Figure 2 and
Lemma 4.2).  The core then recomputes the work executed so far and
reschedules the completion event.

The core also keeps exact energy/busy-time/residency accounts, closed
segment by segment at every state change, which the power meter, RAPL
counters, and the OS governors' utilization sampling all read.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.analysis.sanitizer import invariant
from repro.cpu.cstates import CStateModel
from repro.cpu.power import CorePowerModel
from repro.cpu.pstates import PStateTable
from repro.sim.engine import Event, Simulator


class Job:
    """A unit of non-preemptive work (one transaction execution).

    ``work`` is in giga-cycles.  The core fills in the timing fields as
    the job runs; ``payload`` carries the database request so completion
    handlers can reach it without a lookup.
    """

    __slots__ = ("work", "payload", "start_time", "finish_time",
                 "dispatch_freq")

    def __init__(self, work: float, payload=None):
        if work < 0:
            raise ValueError(f"job work cannot be negative: {work}")
        self.work = work
        self.payload = payload
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: frequency (GHz) at the moment the job was dispatched; execution
        #: time observations are attributed to this frequency, as in the
        #: prototype (Section 3.2).
        self.dispatch_freq: Optional[float] = None

    @property
    def elapsed(self) -> float:
        """Wall (virtual) execution time, available once finished."""
        if self.start_time is None or self.finish_time is None:
            raise RuntimeError("job has not finished")
        return self.finish_time - self.start_time


class Core:
    """One frequency-scalable physical core.

    Parameters
    ----------
    sim:
        The simulation clock/event loop.
    core_id:
        Stable identifier (used by MSR addressing and reports).
    pstates:
        The frequency grid this core can be set to.  Note: governors may
        use the full 16-level grid while POLARIS uses its 5-level subset;
        each experiment passes the appropriate table.
    power_model / cstates:
        Calibrated power curves and the idle-state ladder.
    transition_latency:
        Seconds of execution stall per frequency change (default 0; the
        paper measures sub-microsecond switches via direct MSR writes).
    """

    def __init__(self, sim: Simulator, core_id: int, pstates: PStateTable,
                 power_model: Optional[CorePowerModel] = None,
                 cstates: Optional[CStateModel] = None,
                 transition_latency: float = 0.0,
                 initial_freq: Optional[float] = None):
        self.sim = sim
        self.core_id = core_id
        self.pstates = pstates
        self.power_model = power_model or CorePowerModel()
        self.cstates = cstates or CStateModel()
        self.transition_latency = transition_latency

        self.freq: float = initial_freq if initial_freq is not None \
            else pstates.max_freq
        if self.freq not in pstates:
            raise ValueError(f"initial frequency {self.freq} not in table")
        #: simsan: inherited from the simulator so one flag governs the
        #: whole simulated machine.
        self.sanitize: bool = sim.sanitize
        #: repro.obs: inherited the same way; each core gets its own
        #: trace track so P-state transitions and the frequency counter
        #: render as one timeline row per core in Perfetto.
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("cpu", f"core-{core_id}")
        if self.tracer.enabled:
            self.tracer.counter(self.trace_track, f"freq_ghz.core{core_id}",
                                sim.now, freq_ghz=self.freq)

        #: Shared frequency domain this core belongs to, set by
        #: :class:`repro.cpu.topology.FrequencyDomain` at construction.
        #: ``None`` (per-core granularity) means the core owns its
        #: P-state register outright --- the pre-domain behavior.
        self.domain = None

        # --- execution state ------------------------------------------
        self._job: Optional[Job] = None
        self._executed: float = 0.0          # giga-cycles done on _job
        self._progress_mark: float = sim.now  # when _executed was last true
        self._completion: Optional[Event] = None
        self._on_complete: Optional[Callable[[Job], None]] = None

        # --- degraded regimes (repro.faults) ---------------------------
        #: Thermal-throttle ceiling (GHz); ``None`` when unthrottled.
        #: While set, requested frequencies above it are clamped to the
        #: fastest table entry at or below the ceiling.
        self.throttle_ceiling_ghz: Optional[float] = None
        #: True while the core is frozen (contention stall / offlined):
        #: the running job's progress is banked and nothing executes
        #: until :meth:`resume`.
        self.stalled: bool = False
        self.stall_started_s: Optional[float] = None

        # --- accounting -------------------------------------------------
        self._segment_start: float = sim.now
        self._segment_busy: bool = False
        self.energy_joules: float = 0.0
        self.busy_seconds: float = 0.0
        self.jobs_completed: int = 0
        self.freq_transitions: int = 0
        self.freq_residency: Dict[float, float] = {}

    # ------------------------------------------------------------------
    # Public state
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a job is executing."""
        return self._job is not None

    @property
    def running_job(self) -> Optional[Job]:
        return self._job

    def running_elapsed(self) -> float:
        """Run time so far of the current job (the paper's ``e0``)."""
        if self._job is None or self._job.start_time is None:
            return 0.0
        return self.sim.now - self._job.start_time

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start_job(self, job: Job,
                  on_complete: Optional[Callable[[Job], None]] = None) -> None:
        """Begin executing ``job`` now; the core must be idle.

        ``on_complete(job)`` fires at the job's completion time.  If the
        C-state ladder reached a deep state, its wake latency is paid
        before execution starts.
        """
        if self._job is not None:
            raise RuntimeError(f"core {self.core_id} is busy")
        if self.stalled:
            raise RuntimeError(f"core {self.core_id} is stalled")
        sim = self.sim
        now = sim.now
        wake = self.cstates.wake_latency(now - self._segment_start)
        self._close_segment()
        self._segment_busy = True
        self._job = job
        self._executed = 0.0
        self._progress_mark = now + wake
        self._on_complete = on_complete
        job.start_time = now
        job.dispatch_freq = self.freq
        duration = wake + job.work / self.freq
        self._completion = sim.schedule(duration, self._complete)
        if self.sanitize:
            self.sanitize_check()

    def _complete(self) -> None:
        job = self._job
        assert job is not None
        self._close_segment()
        self._segment_busy = False
        self._executed = job.work
        self._job = None
        self._completion = None
        job.finish_time = self.sim.now
        self.jobs_completed += 1
        callback = self._on_complete
        self._on_complete = None
        if callback is not None:
            callback(job)

    # ------------------------------------------------------------------
    # DVFS
    # ------------------------------------------------------------------
    def set_frequency(self, freq_ghz: float) -> None:
        """Change the core's P-state, possibly mid-job.

        The remaining work of a running job is recomputed against the
        new frequency and its completion event rescheduled.  A non-zero
        ``transition_latency`` stalls the running job for that long.
        Under an active thermal-throttle ceiling the request is clamped
        to the fastest achievable P-state at or below the ceiling.
        """
        if freq_ghz not in self.pstates:
            raise ValueError(
                f"{freq_ghz} GHz not in core {self.core_id}'s P-state table")
        freq_ghz = self.achievable_frequency(freq_ghz)
        if abs(freq_ghz - self.freq) < 1e-12:
            return
        if self.tracer.enabled:
            # Only *real* transitions are recorded (same-frequency
            # requests returned above), mirroring `freq_transitions`.
            self.tracer.instant(
                self.trace_track, "pstate:transition", self.sim.now,
                old_ghz=self.freq, new_ghz=freq_ghz,
                pstate=self.pstates.state_label(freq_ghz),
                mid_job=self._job is not None)
            self.tracer.counter(
                self.trace_track, f"freq_ghz.core{self.core_id}",
                self.sim.now, freq_ghz=freq_ghz)
        self._close_segment()
        if self._job is not None and not self.stalled:
            # Bank progress made at the old frequency.  (A stalled core
            # already banked it and has no completion pending; the new
            # frequency simply applies when it resumes.)
            ran = max(0.0, self.sim.now - self._progress_mark)
            self._executed = min(self._job.work, self._executed + ran * self.freq)
            self._progress_mark = self.sim.now + self.transition_latency
            remaining_gcycles = max(0.0, self._job.work - self._executed)
            assert self._completion is not None
            self._completion.cancel()
            self._completion = self.sim.schedule(
                self.transition_latency + remaining_gcycles / freq_ghz,
                self._complete)
        self.freq = freq_ghz
        self.freq_transitions += 1
        if self.sanitize:
            self.sanitize_check()

    def request_frequency(self, freq_ghz: float) -> None:
        """Ask for a P-state, honoring any shared frequency domain.

        On a per-core topology (``domain is None``) this is exactly
        :meth:`set_frequency`.  Under a shared domain the request is
        filed as this core's *vote* and the domain applies the max of
        member votes to every member --- so the core may end up at a
        higher frequency than requested, or unchanged if a sibling's
        vote already dominates.  All policy-level frequency choices
        (schedulers, governors, resilience pins) go through here;
        :meth:`set_frequency` remains the raw register write the domain
        itself uses.
        """
        if self.domain is None:
            self.set_frequency(freq_ghz)
        else:
            self.domain.request(self, freq_ghz)

    def achievable_frequency(self, freq_ghz: float) -> float:
        """What ``set_frequency(freq_ghz)`` would actually deliver.

        Identity when unthrottled; under a ceiling, the fastest table
        frequency not exceeding it.  Callers verifying a DVFS write
        took effect compare against this, so a throttle clamp is never
        mistaken for a failed write.
        """
        ceiling_ghz = self.throttle_ceiling_ghz
        if ceiling_ghz is None or freq_ghz <= ceiling_ghz + 1e-12:
            return freq_ghz
        return self.pstates.nearest_at_most(ceiling_ghz)

    def projected_frequency(self, freq_ghz: float) -> float:
        """What :meth:`request_frequency(freq_ghz)` would leave this
        core running at --- the domain-aware analogue of
        :meth:`achievable_frequency`.  DVFS-write verification compares
        against this so a sibling's higher vote in a shared domain is
        never mistaken for a failed write.
        """
        if self.domain is None:
            return self.achievable_frequency(freq_ghz)
        return self.domain.projected_frequency(self, freq_ghz)

    # ------------------------------------------------------------------
    # Degraded regimes (repro.faults)
    # ------------------------------------------------------------------
    def set_throttle_ceiling(self, ceiling_ghz: Optional[float]) -> None:
        """Apply (or clear, with ``None``) a thermal-throttle ceiling.

        Entering a throttle window immediately steps an over-ceiling
        core down; leaving one changes nothing until the next frequency
        decision, as on real hardware (the OS re-raises, not the PROCHOT
        deassertion).
        """
        self.throttle_ceiling_ghz = ceiling_ghz
        if self.tracer.enabled:
            self.tracer.instant(
                self.trace_track, "throttle:ceiling", self.sim.now,
                ceiling_ghz=ceiling_ghz if ceiling_ghz is not None else -1.0)
        if ceiling_ghz is not None and self.freq > ceiling_ghz + 1e-12:
            self.set_frequency(self.pstates.nearest_at_most(ceiling_ghz))
        elif self.sanitize:
            self.sanitize_check()

    def stall(self) -> None:
        """Freeze the core: bank the running job's progress and stop.

        Models a contention stall, SMI, or outright core failure.  The
        in-flight job (if any) keeps its banked giga-cycles and resumes
        where it left off on :meth:`resume`; power drops to the idle
        floor while frozen.  Idempotent.
        """
        if self.stalled:
            return
        self._close_segment()
        if self._job is not None:
            ran = max(0.0, self.sim.now - self._progress_mark)
            self._executed = min(self._job.work,
                                 self._executed + ran * self.freq)
            if self._completion is not None:
                self._completion.cancel()
                self._completion = None
        self._segment_busy = False
        self.stalled = True
        self.stall_started_s = self.sim.now
        if self.sanitize:
            self.sanitize_check()

    def resume(self) -> None:
        """Unfreeze a stalled core; a banked job continues its remaining
        work at the current frequency.  Idempotent."""
        if not self.stalled:
            return
        self._close_segment()
        self.stalled = False
        self.stall_started_s = None
        if self._job is not None:
            self._segment_busy = True
            self._progress_mark = self.sim.now
            remaining_gcycles = max(0.0, self._job.work - self._executed)
            self._completion = self.sim.schedule(
                remaining_gcycles / self.freq, self._complete)
        if self.sanitize:
            self.sanitize_check()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _close_segment(self) -> None:
        """Integrate energy/busy time since the last state change."""
        now = self.sim.now
        duration = now - self._segment_start
        if self.sanitize:
            invariant(duration >= 0, "clock-monotonic",
                      "accounting segment runs backwards in time",
                      core_id=self.core_id, now=now,
                      segment_start=self._segment_start)
        if duration > 0:
            freq = self.freq
            residency = self.freq_residency
            if self._segment_busy:
                self.energy_joules += \
                    self.power_model.active_power(freq) * duration
                self.busy_seconds += duration
            else:
                self.energy_joules += self.cstates.idle_energy(
                    self.power_model.idle_power(freq), duration)
            residency[freq] = residency.get(freq, 0.0) + duration
        self._segment_start = now

    def flush_accounting(self) -> None:
        """Close the open accounting segment at the current time.

        Call before reading :attr:`freq_residency` / :attr:`busy_seconds`
        directly; :meth:`energy_at` and :meth:`busy_seconds_at` already
        include the open segment.
        """
        self._close_segment()

    def energy_at(self, now: float) -> float:
        """Exact energy consumed up to ``now`` (J), including the open segment."""
        duration = now - self._segment_start
        if duration <= 0:
            return self.energy_joules
        if self._segment_busy:
            partial = self.power_model.active_power(self.freq) * duration
        else:
            partial = self.cstates.idle_energy(
                self.power_model.idle_power(self.freq), duration)
        return self.energy_joules + partial

    def busy_seconds_at(self, now: float) -> float:
        """Cumulative busy time up to ``now`` (for governor utilization)."""
        extra = 0.0
        if self._segment_busy:
            extra = max(0.0, now - self._segment_start)
        return self.busy_seconds + extra

    # ------------------------------------------------------------------
    # simsan
    # ------------------------------------------------------------------
    def sanitize_check(self) -> None:
        """Verify the core's physical invariants.

        Run after every job dispatch and frequency change when the
        sanitizer is enabled; callable directly from tests.  Checks:

        * **freq-bounds** --- the operating frequency lies inside the
          P-state table's [min, max] range;
        * **work-cycles** --- banked progress on the running job stays
          within ``[0, job.work]`` giga-cycles (a mis-banked frequency
          change would silently stretch or truncate the transaction);
        * **power-consistency** --- the power model agrees with the
          P-state physics at the current operating point: nonnegative
          draw, and active power at least the idle floor;
        * **throttle-ceiling** --- under an active thermal throttle the
          operating frequency respects the ceiling (clamped to the grid:
          a ceiling below the table floor allows the floor frequency).
        """
        invariant(self.pstates.in_bounds(self.freq), "freq-bounds",
                  "core frequency is outside the P-state table bounds",
                  core_id=self.core_id, freq=self.freq,
                  min_freq=self.pstates.min_freq,
                  max_freq=self.pstates.max_freq, now=self.sim.now)
        if self.throttle_ceiling_ghz is not None:
            limit_ghz = max(self.throttle_ceiling_ghz,
                            self.pstates.min_freq)
            invariant(self.freq <= limit_ghz + 1e-9, "throttle-ceiling",
                      "core runs above an active thermal-throttle ceiling",
                      core_id=self.core_id, freq=self.freq,
                      ceiling_ghz=self.throttle_ceiling_ghz,
                      now=self.sim.now)
        if self._job is not None:
            invariant(0.0 <= self._executed <= self._job.work + 1e-9,
                      "work-cycles",
                      "banked work is negative or exceeds the job size",
                      core_id=self.core_id, executed=self._executed,
                      work=self._job.work, now=self.sim.now)
            invariant(self.stalled or (self._completion is not None
                      and not self._completion.cancelled), "work-cycles",
                      "running job has no pending completion event",
                      core_id=self.core_id, now=self.sim.now)
            invariant(not self.stalled or self._completion is None,
                      "work-cycles",
                      "stalled core still has a completion scheduled",
                      core_id=self.core_id, now=self.sim.now)
        active = self.power_model.active_power(self.freq)
        idle = self.power_model.idle_power(self.freq)
        invariant(0.0 <= idle <= active, "power-consistency",
                  "power model draw is negative or idle exceeds active",
                  core_id=self.core_id, freq=self.freq,
                  active_watts=active, idle_watts=idle, now=self.sim.now)

    def current_power(self) -> float:
        """Instantaneous draw right now (W), respecting the C-state ladder."""
        if self._segment_busy:
            return self.power_model.active_power(self.freq)
        idle_for = self.sim.now - self._segment_start
        segments = self.cstates.segments(idle_for) if idle_for > 0 else []
        fraction = segments[-1][0].power_fraction if segments \
            else self.cstates.ladder[0].power_fraction
        return self.power_model.idle_power(self.freq) * fraction
