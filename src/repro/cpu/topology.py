"""Shared frequency domains and the socket topology that defines them.

POLARIS's prototype assumes each core scales independently, but the
paper's own testbed is a two-socket Xeon whose cores share package
voltage/clock infrastructure, and most deployed parts expose only
package- or module-granular frequency domains.  THEAS (arXiv:2510.09847)
argues multi-core power management must reason about such shared
domains, and Abousamra et al. (arXiv:1307.0531) show that speed-scaling
policy rankings shift with the hardware speed model --- so the
reproduction needs the coupled-domain axis to claim anything about
deployment.

Two classes model it:

* :class:`SocketTopology` --- the static shape: how core ids group into
  frequency domains (``per-core``, ``per-module``, ``per-socket``) and
  how long a domain-wide P-state switch stalls its member cores.
* :class:`FrequencyDomain` --- the dynamic coordination: N cores share
  one P-state register, each core files a *requested* frequency (its
  vote), and the domain runs at the **maximum of the member votes** ---
  the Linux ``cpufreq`` policy-sharing rule (``related_cpus`` under one
  policy resolve requests with ``CPUFREQ_RELATION_L`` against the
  highest request), clamped by the most-throttled member's thermal
  ceiling (a shared rail is as slow as its hottest core allows).

``per-core`` granularity is the default and creates **no** domain
objects at all: every code path is bit-identical to the pre-domain
behavior, which the harness's cache keys and the per-core identity
tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple, Union

from repro.analysis.sanitizer import invariant

if TYPE_CHECKING:  # layering: topology sits beside core, below db/server
    from repro.cpu.core import Core

#: Recognized granularity names, coarsest domain last.
GRANULARITIES = ("per-core", "per-module", "per-socket")

#: The paper's testbed: two 8-core Xeon E5-2640 v3 packages.
DEFAULT_CORES_PER_SOCKET = 8
#: Module (e.g. AMD CCX / Intel E-core cluster) granularity default.
DEFAULT_CORES_PER_MODULE = 2


@dataclass(frozen=True)
class SocketTopology:
    """How cores map onto shared frequency domains.

    ``switch_latency_s`` models the cost of re-locking a *shared* PLL:
    every domain P-state transition stalls each member core for that
    long (0.0 reproduces the paper's sub-microsecond direct-MSR
    switches).  Per-core granularity with zero switch latency is the
    identity topology --- today's behavior.
    """

    granularity: str = "per-core"
    cores_per_socket: int = DEFAULT_CORES_PER_SOCKET
    cores_per_module: int = DEFAULT_CORES_PER_MODULE
    switch_latency_s: float = 0.0

    def __post_init__(self):
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {self.granularity!r}; "
                f"available: {list(GRANULARITIES)}")
        if self.cores_per_socket < 1:
            raise ValueError("cores_per_socket must be at least 1")
        if self.cores_per_module < 1:
            raise ValueError("cores_per_module must be at least 1")
        if self.switch_latency_s < 0:
            raise ValueError("switch_latency_s cannot be negative")

    @property
    def per_core(self) -> bool:
        """True for the identity topology (no shared domains)."""
        return self.granularity == "per-core"

    def domain_size(self) -> int:
        """Cores per frequency domain at this granularity."""
        if self.granularity == "per-socket":
            return self.cores_per_socket
        if self.granularity == "per-module":
            return self.cores_per_module
        return 1

    def domain_index(self, core_id: int) -> int:
        """Which domain ``core_id`` belongs to (cores group in id order,
        as Linux numbers ``related_cpus`` within a package)."""
        return core_id // self.domain_size()

    def domain_groups(self, n_cores: int) -> List[Tuple[int, ...]]:
        """Core-id groups for ``n_cores`` cores, ascending; the last
        domain may be partial (an under-populated package)."""
        size = self.domain_size()
        return [tuple(range(start, min(start + size, n_cores)))
                for start in range(0, n_cores, size)]


def make_topology(spec: Union[None, str, SocketTopology]) -> SocketTopology:
    """Coerce a config value into a :class:`SocketTopology`.

    Accepts ``None`` (identity), a granularity name (defaults for the
    group sizes), or an explicit topology.
    """
    if spec is None:
        return SocketTopology()
    if isinstance(spec, SocketTopology):
        return spec
    return SocketTopology(granularity=spec)


class FrequencyDomain:
    """N cores sharing one P-state register (one PERF_CTL per domain).

    Every frequency *request* for a member core --- scheduler MSR
    writes, governor decisions, resilience pins --- lands here as that
    core's vote; the domain then applies ``max(votes)``, clamped to the
    slowest member's thermal-throttle ceiling, to every member through
    :meth:`Core.set_frequency`.  Member cores therefore always run at
    one common frequency (the **domain-coherence** invariant, checked
    under simsan), and a core may run *above* its own vote whenever a
    sibling needs speed --- the power cost the coarse-granularity
    figure measures.
    """

    def __init__(self, domain_id: int, cores: Sequence["Core"]):
        if not cores:
            raise ValueError("a frequency domain needs at least one core")
        self.domain_id = domain_id
        self.cores = list(cores)
        freqs = {core.freq for core in self.cores}
        if len(freqs) != 1:
            raise ValueError(
                f"domain {domain_id} members start at different "
                f"frequencies: {sorted(freqs)}")
        #: core_id -> last requested frequency (GHz); seeded with the
        #: common initial frequency so an idle domain has a defined vote.
        self.votes = {core.core_id: core.freq for core in self.cores}
        self.transitions = 0
        sim = self.cores[0].sim
        self.sim = sim
        self.sanitize: bool = sim.sanitize
        #: repro.obs: the domain gets its own track so shared-register
        #: transitions render as one Perfetto row per domain, beside
        #: the member cores' rows.
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("cpu",
                                             f"domain-{domain_id}")
        for core in self.cores:
            core.domain = self
        if self.tracer.enabled:
            self.tracer.counter(self.trace_track,
                                f"freq_ghz.domain{domain_id}",
                                sim.now, freq_ghz=self.freq)

    @property
    def freq(self) -> float:
        """The domain's operating frequency (all members agree)."""
        return self.cores[0].freq

    def member_ids(self) -> Tuple[int, ...]:
        return tuple(core.core_id for core in self.cores)

    # ------------------------------------------------------------------
    # Coordination
    # ------------------------------------------------------------------
    def request(self, core: "Core", freq_ghz: float) -> None:
        """File ``core``'s vote and re-resolve the shared register.

        The paper's SetProcessorFreq (and the OS governors) choose a
        frequency *for one core*; under a shared domain that choice is
        a request, not a command.  Same-frequency re-votes are cheap
        (the resolve short-circuits) but never skipped --- a stale vote
        is exactly the coordination bug shared domains introduce.
        """
        if freq_ghz not in core.pstates:
            raise ValueError(
                f"{freq_ghz} GHz not in core {core.core_id}'s "
                f"P-state table")
        self.votes[core.core_id] = freq_ghz
        self._resolve()

    def projected_frequency(self, core: "Core", freq_ghz: float) -> float:
        """What the domain would run at if ``core`` voted ``freq_ghz``.

        The domain-aware analogue of
        :meth:`Core.achievable_frequency`: DVFS-write verification
        compares against this, so a sibling's higher vote (or a shared
        throttle clamp) is never mistaken for a failed write.
        """
        votes = dict(self.votes)
        votes[core.core_id] = freq_ghz
        return self._clamped(max(votes.values()))

    def _clamped(self, target_ghz: float) -> float:
        """Clamp ``target_ghz`` by the most-throttled member: one rail,
        one clock --- the hottest core limits everyone."""
        return min(c.achievable_frequency(target_ghz) for c in self.cores)

    def _resolve(self) -> None:
        target_ghz = self._clamped(max(self.votes.values()))
        old_ghz = self.freq
        if abs(target_ghz - old_ghz) > 1e-12:
            self.transitions += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    self.trace_track, "pstate:transition", self.sim.now,
                    old_ghz=old_ghz, new_ghz=target_ghz,
                    pstate=self.cores[0].pstates.state_label(target_ghz),
                    members=len(self.cores))
                self.tracer.counter(
                    self.trace_track, f"freq_ghz.domain{self.domain_id}",
                    self.sim.now, freq_ghz=target_ghz)
            for core in self.cores:
                core.set_frequency(target_ghz)
        if self.sanitize:
            self.sanitize_check()

    # ------------------------------------------------------------------
    # simsan
    # ------------------------------------------------------------------
    def sanitize_check(self) -> None:
        """Verify the domain's invariants.

        * **domain-coherence** --- every member core runs at the same
          frequency (they share one P-state register);
        * **domain-max-rule** --- that frequency is the maximum of the
          member votes, clamped only by an active throttle ceiling
          (never below a vote without a ceiling to blame).
        """
        freq_ghz = self.freq
        for core in self.cores:
            invariant(abs(core.freq - freq_ghz) < 1e-12,
                      "domain-coherence",
                      "cores of one frequency domain run at different "
                      "frequencies",
                      domain_id=self.domain_id, core_id=core.core_id,
                      core_freq=core.freq, domain_freq=freq_ghz,
                      now=self.sim.now)
        expected_ghz = self._clamped(max(self.votes.values()))
        invariant(abs(freq_ghz - expected_ghz) < 1e-12,
                  "domain-max-rule",
                  "domain frequency is not the clamped max of member "
                  "votes",
                  domain_id=self.domain_id, domain_freq=freq_ghz,
                  expected=expected_ghz,
                  votes=dict(sorted(self.votes.items())),
                  now=self.sim.now)


__all__ = [
    "DEFAULT_CORES_PER_MODULE", "DEFAULT_CORES_PER_SOCKET",
    "FrequencyDomain", "GRANULARITIES", "SocketTopology", "make_topology",
]
