"""Model-specific register (MSR) file.

The POLARIS prototype bypasses the ``cpufreq`` userspace governor and
writes frequency targets straight into the per-core MSRs via the Linux
MSR driver, because the sysfs path adds too much latency (paper
Section 5, citing Wamhoff et al.).  This module reproduces that
interface: a per-core register file where writing ``IA32_PERF_CTL``
changes the core's P-state and reading ``MSR_PKG_ENERGY_STATUS``
returns the RAPL energy accumulator.

Register encodings follow the Intel SDM conventions the real driver
uses:

* ``IA32_PERF_CTL`` bits 15:8 hold the target ratio in units of the bus
  clock (100 MHz), i.e. ratio 28 = 2.8 GHz.
* ``MSR_PKG_ENERGY_STATUS`` is a 32-bit wrapping counter in energy
  units of ``1 / 2**ESU`` joules, with ESU read from
  ``MSR_RAPL_POWER_UNIT`` bits 12:8 (default 16 -> ~15.3 uJ).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

IA32_PERF_STATUS = 0x198
IA32_PERF_CTL = 0x199
MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_ENERGY_STATUS = 0x611

_BUS_CLOCK_GHZ = 0.1  # 100 MHz reference clock
_DEFAULT_ESU = 16     # energy status unit exponent: 2^-16 J per count


class MsrError(RuntimeError):
    """Raised on access to an unsupported register or invalid encoding."""


def encode_perf_ctl(freq_ghz: float) -> int:
    """Encode a frequency as an IA32_PERF_CTL value (ratio in bits 15:8)."""
    ratio = round(freq_ghz / _BUS_CLOCK_GHZ)
    if not 1 <= ratio <= 0xFF:
        raise MsrError(f"frequency {freq_ghz} GHz out of encodable range")
    return ratio << 8


#: The bits of IA32_PERF_CTL this model implements: the target ratio in
#: 15:8.  Everything else is reserved here (the SDM's IDA-disengage bit
#: 32 included) and a write setting any of them is rejected rather than
#: silently decoded into a nonsense frequency.
_PERF_CTL_RATIO_MASK = 0xFF00


def decode_perf_ctl(value: int) -> float:
    """Decode an IA32_PERF_CTL value back to GHz.

    Rejects malformed encodings with :class:`MsrError`: negative or
    oversized values, set reserved bits, and the ratio-0 encoding all
    indicate a corrupted write, not a slow P-state.
    """
    if value < 0 or value & ~_PERF_CTL_RATIO_MASK:
        raise MsrError(
            f"PERF_CTL value {value:#x} sets bits outside the "
            f"target-ratio field (15:8)")
    ratio = (value >> 8) & 0xFF
    if ratio == 0:
        raise MsrError(f"PERF_CTL value {value:#x} encodes ratio 0")
    return round(ratio * _BUS_CLOCK_GHZ, 1)


class MsrFile:
    """Per-core MSR access, wired to a :class:`~repro.cpu.core.Core`.

    ``rapl`` is optional; when provided, energy-status reads are served
    from it (package-level, so all cores of a package return the same
    counter, as on real hardware).
    """

    def __init__(self, core, rapl: Optional["object"] = None,
                 esu_exponent: int = _DEFAULT_ESU):
        self.core = core
        self.rapl = rapl
        self.esu_exponent = esu_exponent
        self._scratch: Dict[int, int] = {}
        #: repro.faults seam: when set, consulted per PERF_CTL write.
        #: Returning ``"error"`` makes the write raise :class:`MsrError`
        #: (the driver's -EIO path); ``"stuck"`` silently drops it (the
        #: firmware ate the write and the core keeps its P-state);
        #: ``None`` lets it through.  Unset outside fault experiments.
        self.fault_hook: Optional[Callable[[int, int],
                                           Optional[str]]] = None

    # ------------------------------------------------------------------
    def write(self, address: int, value: int) -> None:
        """``wrmsr``: only PERF_CTL is writable in this model.

        The encoding is validated *before* the fault hook runs: a
        malformed value is a caller bug and always raises, while an
        injected failure only affects well-formed writes.  A decoded
        frequency outside the core's P-state table is likewise an
        :class:`MsrError` --- real silicon clamps unsupported ratios,
        but in a simulation a mis-targeted frequency means a bug
        upstream, so it is surfaced instead of decoded into nonsense.
        """
        if address == IA32_PERF_CTL:
            freq_ghz = decode_perf_ctl(value)
            if freq_ghz not in self.core.pstates:
                raise MsrError(
                    f"PERF_CTL ratio encodes {freq_ghz} GHz, not a "
                    f"P-state of core {self.core.core_id}")
            if self.fault_hook is not None:
                action = self.fault_hook(address, value)
                if action == "error":
                    raise MsrError(
                        f"injected DVFS write failure on core "
                        f"{self.core.core_id}")
                if action == "stuck":
                    return  # write silently dropped; P-state unchanged
            # One PERF_CTL per frequency domain: on shared-domain
            # topologies this files the core's vote and the domain
            # resolves max-of-votes across members; per-core it is a
            # direct register write, exactly as before.
            self.core.request_frequency(freq_ghz)
            self._scratch[address] = value
        else:
            raise MsrError(f"write to unsupported MSR {address:#x}")

    def read(self, address: int) -> int:
        """``rdmsr`` for the registers the prototype touches."""
        if address == IA32_PERF_STATUS or address == IA32_PERF_CTL:
            return encode_perf_ctl(self.core.freq)
        if address == MSR_RAPL_POWER_UNIT:
            return self.esu_exponent << 8
        if address == MSR_PKG_ENERGY_STATUS:
            if self.rapl is None:
                raise MsrError("no RAPL package attached to this core")
            joules = self.rapl.energy_joules(self.core.sim.now)
            counts = int(joules * (1 << self.esu_exponent))
            return counts & 0xFFFFFFFF  # 32-bit wrapping counter
        raise MsrError(f"read of unsupported MSR {address:#x}")

    def energy_unit_joules(self) -> float:
        """Joules per energy-status count (from MSR_RAPL_POWER_UNIT)."""
        esu = (self.read(MSR_RAPL_POWER_UNIT) >> 8) & 0x1F
        return 1.0 / (1 << esu)
