"""Core and server power models.

See :mod:`repro.cpu.calibration` for the calibration story.  The models
here are deliberately simple lookups --- the *integration* of power over
time happens inside :class:`repro.cpu.core.Core` (exact, per state
segment) and :class:`repro.metrics.power.PowerMeter` (sampled, with
meter noise), mirroring how the paper separates the physical power draw
from the Watts up? meter that observes it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.cpu import calibration
from repro.cpu.pstates import PStateTable


class CorePowerModel:
    """Maps a core's (frequency, busy/idle) state to instantaneous watts.

    By default the calibrated curves from :mod:`repro.cpu.calibration`
    are used; custom callables may be supplied for sensitivity studies
    (e.g. the ablation bench that flattens the idle curve).
    """

    def __init__(self,
                 active_fn: Optional[Callable[[float], float]] = None,
                 idle_fn: Optional[Callable[[float], float]] = None):
        self._active_fn = active_fn or calibration.active_watts
        self._idle_fn = idle_fn or calibration.idle_watts
        self._active_cache: Dict[float, float] = {}
        self._idle_cache: Dict[float, float] = {}

    def active_power(self, freq_ghz: float) -> float:
        """Draw of a core executing a transaction at ``freq_ghz`` (W)."""
        watts = self._active_cache.get(freq_ghz)
        if watts is None:
            watts = self._active_fn(freq_ghz)
            self._active_cache[freq_ghz] = watts
        return watts

    def idle_power(self, freq_ghz: float) -> float:
        """Draw of an idle core whose operating point is ``freq_ghz`` (W)."""
        watts = self._idle_cache.get(freq_ghz)
        if watts is None:
            watts = self._idle_fn(freq_ghz)
            self._idle_cache[freq_ghz] = watts
        return watts

    def power(self, freq_ghz: float, busy: bool) -> float:
        """Dispatch on the busy flag."""
        if busy:
            return self.active_power(freq_ghz)
        return self.idle_power(freq_ghz)

    def validate_monotone(self, table: PStateTable) -> None:
        """Sanity check: active power must rise with frequency and always
        exceed idle power at the same operating point."""
        prev = None
        for state in table:
            active = self.active_power(state.freq_ghz)
            idle = self.idle_power(state.freq_ghz)
            if active < idle:
                raise ValueError(
                    f"active power {active:.2f} W below idle {idle:.2f} W "
                    f"at {state.freq_ghz} GHz")
            if prev is not None and active < prev:
                raise ValueError(
                    f"active power not monotone at {state.freq_ghz} GHz")
            prev = active


class ServerPowerModel:
    """Whole-server wall power: a static floor plus the sum of core draws.

    ``wall_power(cores)`` gives the *instantaneous* draw; energy
    integration is done by the callers that track time.
    """

    def __init__(self, static_watts: float = calibration.STATIC_WATTS):
        if static_watts < 0:
            raise ValueError("static watts cannot be negative")
        self.static_watts = static_watts

    def wall_power(self, cores: Iterable) -> float:
        """Instantaneous wall draw given the cores' current states (W)."""
        return self.static_watts + sum(c.current_power() for c in cores)

    def wall_energy(self, cores: Iterable, now: float) -> float:
        """Total wall energy consumed up to virtual time ``now`` (J).

        Cores integrate their own energy exactly; the static floor
        contributes ``static_watts * now``.
        """
        return self.static_watts * now + sum(c.energy_at(now) for c in cores)
