"""Running Average Power Limit (RAPL) package energy counters.

The paper reads CPU-only power through the RAPL MSRs as a secondary
metric next to the wall meter (Section 6.1).  A :class:`RaplPackage`
groups the cores of one socket and exposes their summed energy; the
power-limiting side of RAPL (clamping frequency to hold a power cap) is
also modelled, since Section 2 describes it as the hardware baseline
POLARIS is contrasted with.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class RaplPackage:
    """Energy accounting (and optional power capping) for one socket."""

    def __init__(self, package_id: int, cores: Sequence,
                 uncore_watts: float = 0.0):
        if not cores:
            raise ValueError("a RAPL package needs at least one core")
        self.package_id = package_id
        self.cores: List = list(cores)
        #: Constant uncore draw attributed to the package (LLC, memory
        #: controller).  Kept at zero by default; the calibrated core
        #: curves already fold uncore share into per-core idle power.
        self.uncore_watts = uncore_watts
        self._limit_watts: Optional[float] = None

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def energy_joules(self, now: float) -> float:
        """Package energy consumed up to virtual time ``now`` (J)."""
        return self.uncore_watts * now + \
            sum(core.energy_at(now) for core in self.cores)

    def power_watts(self) -> float:
        """Instantaneous package draw (W)."""
        return self.uncore_watts + \
            sum(core.current_power() for core in self.cores)

    def average_power(self, t0: float, e0: float, t1: float) -> float:
        """Mean power over ``[t0, t1]`` given the energy reading ``e0`` at
        ``t0`` (how RAPL consumers compute power from the counter)."""
        if t1 <= t0:
            raise ValueError("interval must have positive length")
        return (self.energy_joules(t1) - e0) / (t1 - t0)

    # ------------------------------------------------------------------
    # Power limiting (the in-hardware DVFS baseline of Section 2)
    # ------------------------------------------------------------------
    def set_power_limit(self, watts: Optional[float]) -> None:
        """Install (or clear, with ``None``) a package power cap."""
        if watts is not None and watts <= 0:
            raise ValueError("power limit must be positive")
        self._limit_watts = watts

    @property
    def power_limit(self) -> Optional[float]:
        return self._limit_watts

    def enforce_limit(self) -> None:
        """Step cores down until the instantaneous draw is under the cap.

        Real RAPL runs a hardware control loop; callers (e.g. a periodic
        sampler in an experiment) invoke this at their chosen cadence.
        """
        if self._limit_watts is None:
            return
        guard = 0
        while self.power_watts() > self._limit_watts and guard < 256:
            stepped = False
            for core in self.cores:
                lower = core.pstates.step_down(core.freq)
                if lower < core.freq:
                    core.set_frequency(lower)
                    stepped = True
            if not stepped:
                break
            guard += 1
