"""ACPI C-state (idle state) model.

POLARIS manages only P-states; C-state transitions are made by the CPU
itself (paper Section 2).  The reproduction models the idle ladder so
that (a) the default configuration matches the paper's observation that
at transactional load levels cores rarely idle long enough to benefit
from deep sleep (Section 7.2, refs [37, 38]), and (b) the future-work
direction of parking workers into deep C-states (Section 8) can be
explored with the ablation benches.

Model: an idle interval of length ``d`` is split across the ladder ---
the core spends ``threshold_i`` seconds in each state before demoting to
the next deeper one, and pays the ``wake_latency_s`` of the deepest state
reached before it can execute again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class CState:
    """One idle state of the ladder.

    ``power_fraction`` scales the operating point's C1 idle power: C1 is
    1.0 by definition; deeper states shed progressively more.
    ``demotion_after`` is how long the core lingers here before moving
    one state deeper (``None`` for the terminal state), and
    ``wake_latency_s`` is the time to return to C0 from this state.
    """

    name: str
    power_fraction: float
    demotion_after: float  # seconds; use math.inf for the terminal state
    wake_latency_s: float  # seconds


#: Shallow default: the core clock-gates in C1 and stays there.  Wake
#: latency on this part is ~1-2 us; negligible against 60 us - 8 ms
#: transactions, so the default rounds it to zero to keep the main
#: experiments exactly comparable with the paper's P-state-only focus.
C1_ONLY = (CState("C1", 1.0, float("inf"), 0.0),)

#: A deeper ladder (latencies per Schoene et al. [45]) for the C-state
#: ablation bench.  Power fractions are relative to C1 idle power.
DEEP_LADDER = (
    CState("C1", 1.00, 50e-6, 2e-6),
    CState("C3", 0.55, 500e-6, 50e-6),
    CState("C6", 0.15, float("inf"), 133e-6),
)


class CStateModel:
    """Computes energy and wake latency for idle intervals."""

    def __init__(self, ladder: Sequence[CState] = C1_ONLY):
        if not ladder:
            raise ValueError("C-state ladder cannot be empty")
        if any(s.demotion_after <= 0 for s in ladder[:-1]):
            raise ValueError("non-terminal demotion thresholds must be positive")
        self.ladder: Tuple[CState, ...] = tuple(ladder)
        #: Fast path for the default C1-only ladder: every idle interval
        #: is one segment, so energy and wake latency collapse to a
        #: multiply and a constant --- worth skipping the segment-list
        #: build, which otherwise runs twice per dispatch.
        self._single_state = len(self.ladder) == 1
        self._c1_fraction = self.ladder[0].power_fraction
        self._c1_wake = self.ladder[0].wake_latency_s

    def segments(self, duration_s: float) -> List[Tuple[CState, float]]:
        """Split an idle interval into (state, residency) segments."""
        if duration_s < 0:
            raise ValueError("idle duration cannot be negative")
        segments: List[Tuple[CState, float]] = []
        remaining_s = duration_s
        for state in self.ladder:
            residency = min(remaining_s, state.demotion_after)
            if residency > 0:
                segments.append((state, residency))
                remaining_s -= residency
            if remaining_s <= 0:
                break
        return segments

    def idle_energy(self, c1_idle_watts: float, duration_s: float) -> float:
        """Energy consumed over an idle interval of ``duration_s``.

        ``c1_idle_watts`` is the operating point's C1 idle power from the
        :class:`~repro.cpu.power.CorePowerModel`.
        """
        if self._single_state:
            if duration_s < 0:
                raise ValueError("idle duration cannot be negative")
            if duration_s <= 0:
                return 0.0
            # Single segment: the sum below would be exactly this product.
            return c1_idle_watts * self._c1_fraction * duration_s
        return sum(c1_idle_watts * state.power_fraction * residency
                   for state, residency in self.segments(duration_s))

    def wake_latency(self, duration_s: float) -> float:
        """Wake latency paid after idling for ``duration_s`` seconds."""
        if self._single_state:
            if duration_s < 0:
                raise ValueError("idle duration cannot be negative")
            return self._c1_wake if duration_s > 0 else 0.0
        segments = self.segments(duration_s)
        if not segments:
            return 0.0
        deepest = segments[-1][0]
        return deepest.wake_latency_s

    def average_idle_power(self, c1_idle_watts: float,
                           duration_s: float) -> float:
        """Mean power over the idle interval (W); C1 power if duration_s=0."""
        if duration_s <= 0:
            return c1_idle_watts * self.ladder[0].power_fraction
        return self.idle_energy(c1_idle_watts, duration_s) / duration_s
