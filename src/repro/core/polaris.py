"""The POLARIS scheduling and frequency-selection algorithm (Figure 2).

One :class:`PolarisScheduler` instance manages one worker/core pair, as
in the prototype architecture (Section 5): request-handler threads run
the arrival path, the worker runs the completion path, and both end by
calling :meth:`select_frequency` --- the paper's ``SetProcessorFreq``.

``SetProcessorFreq`` chooses the smallest frequency at which the
running transaction and all queued transactions are predicted to meet
their deadlines:

1. Find the minimum frequency finishing the *running* transaction
   (predicted remaining time ``mu(c(t0), f) - e0``) by its deadline.
2. Walk the queue in EDF order keeping, per frequency, the cumulative
   predicted queueing time ``q(t, f)`` (remaining running time plus the
   predicted times of all earlier-deadline requests).  Whenever the
   current frequency cannot get a request done by its deadline, advance
   to the lowest higher frequency that can.
3. The moment the highest frequency is required, stop checking and run
   flat out --- late transactions then finish as fast as possible.

The walk keeps one running sum per frequency, so one invocation costs
O(|Q| * |F|) --- the prototype measures ~10 us per invocation at high
load, one to two orders of magnitude below mean transaction times
(Section 5); the overhead bench reproduces the scaling.

**Shared frequency domains.**  ``select_frequency`` assumes per-core
DVFS, as the paper does.  On coarse topologies
(:class:`~repro.cpu.topology.SocketTopology` at per-module/per-socket
granularity) the selected frequency becomes this core's *vote*: the
worker's PERF_CTL write lands in the core's
:class:`~repro.cpu.topology.FrequencyDomain`, which applies the maximum
of the member votes (the kernel's cpufreq policy-sharing rule) to every
member core.  POLARIS's deadline guarantees survive --- a domain never
runs a core *below* what its scheduler asked for --- but its power
savings erode, since one urgent transaction raises the whole domain;
the harness's granularity figure quantifies exactly that cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.sanitizer import invariant, simsan_enabled
from repro.core.estimator import ExecutionTimeEstimator
from repro.core.request import Request
from repro.db.queues import EdfQueue, RequestQueue


class PolarisScheduler:
    """POLARIS for one core: EDF queue + SetProcessorFreq.

    Parameters
    ----------
    frequencies:
        The available P-state frequencies in GHz, ascending (the
        paper's five-level set by default at the server layer).
    estimator:
        The shared ``mu(c, f)`` execution-time estimator.  Sharing one
        across all cores pools observations exactly like keeping a
        single workload-level model; per-core estimators also work.
    """

    #: Whether the scheduler wants SetProcessorFreq run on request
    #: arrival (POLARIS and POLARIS-FIFO do; the NOARRIVE variant does
    #: not --- Section 6.6).
    adjusts_on_arrival = True

    #: Whether this scheduler's queue pops in EDF order (simsan checks
    #: the pop order only when it does; the FIFO variants do not).
    edf_pop_order = True

    name = "polaris"

    def __init__(self, frequencies: Sequence[float],
                 estimator: ExecutionTimeEstimator,
                 sanitize: Optional[bool] = None):
        freqs = tuple(frequencies)
        if not freqs or list(freqs) != sorted(freqs):
            raise ValueError("frequencies must be non-empty and ascending")
        self.frequencies = freqs
        self.estimator = estimator
        self.queue: RequestQueue = self._make_queue()
        # Overhead accounting for the Section 5 measurement.
        self.invocations = 0
        self.queue_items_scanned = 0
        #: simsan: resolved once (arg > REPRO_SIMSAN env); checked per
        #: pop/selection, so the disabled cost is one boolean test.
        self.sanitize = simsan_enabled(sanitize)
        self._freq_set = frozenset(freqs)
        #: mu-vector cache: workload name -> ``(workload_version,
        #: [estimate(c, f) for f in freqs])``.  SetProcessorFreq runs
        #: once per arrival *and* per completion, so between
        #: observations the same vectors are rebuilt thousands of
        #: times; caching them is value-identical (the estimator is
        #: pure between mutations).  Entries are validated against the
        #: estimator's *per-workload* mutation counters, so observing
        #: workload ``c`` invalidates only ``c``'s vector.  Estimators
        #: without a ``workload_versions`` attribute (the faults
        #: subsystem's time-varying skew proxy) disable the cache.
        #: When the estimator exposes ``mu_vector_caches`` the cache is
        #: *shared* across every scheduler built on that estimator with
        #: the same frequency ladder: the vectors are a pure function of
        #: (workload, freqs, estimator state), so one worker's rebuild
        #: after an observation serves all of them.
        caches = getattr(estimator, "mu_vector_caches", None)
        if caches is None:
            self._mu_cache: dict = {}
        else:
            self._mu_cache = caches.setdefault(freqs, {})
        #: repro.obs: the worker flips this on when tracing and reads
        #: :attr:`last_decision` right after each ``select_frequency``
        #: call.  The scheduler stays simulation-agnostic --- it records
        #: *what* it decided and why (floor, slack), never emits events.
        self.trace_decisions = False
        self.last_decision: Optional[dict] = None
        #: repro.faults: while True (set by the resilience controller's
        #: panic mode), SetProcessorFreq short-circuits to the highest
        #: frequency --- surviving cores run flat out until the windowed
        #: deadline-miss rate recovers and the controller clears it.
        self.panic = False

    def _make_queue(self) -> RequestQueue:
        return EdfQueue()

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        """Queue a request (EDF position for POLARIS proper)."""
        self.queue.push(request)

    def next_request(self) -> Optional[Request]:
        """Dequeue the next request to execute (earliest deadline)."""
        request = self.queue.pop()
        if self.sanitize and request is not None and self.edf_pop_order:
            # EDF pop order: nothing still queued may have an earlier
            # deadline than what we just popped.  (Pop times are NOT
            # globally monotone --- later arrivals can carry earlier
            # deadlines --- so the check is against the queue head.)
            head = self.queue.peek()
            if head is not None:
                invariant(request.deadline <= head.deadline, "edf-order",
                          "queue popped a request with a later deadline "
                          "than one still queued",
                          popped_deadline=request.deadline,
                          queued_deadline=head.deadline,
                          popped_arrival=request.arrival_time)
        return request

    def __len__(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    # SetProcessorFreq (Figure 2)
    # ------------------------------------------------------------------
    def select_frequency(self, now: float, running: Optional[Request],
                         running_elapsed: float = 0.0) -> float:
        """Choose the processor frequency for this worker's core.

        ``running`` is the transaction currently executing (``t0``) and
        ``running_elapsed`` its run time so far (``e0``); both may be
        absent when the worker is about to dispatch from an idle state.
        """
        self.invocations += 1
        freqs = self.frequencies
        if self.panic:
            # Panic mode (repro.faults): deadline misses are already
            # epidemic, so skip the walk and run flat out.
            if self.trace_decisions:
                self.last_decision = {
                    "selected_ghz": freqs[-1], "floor_ghz": freqs[-1],
                    "queue_len": len(self.queue), "remaining_s": 0.0,
                    "slack_s": None, "early_exit": True, "panic": True,
                }
            return freqs[-1]
        nf = len(freqs)
        estimator = self.estimator
        estimate = estimator.estimate
        # The mu-vector cache only engages for estimators that declare
        # per-workload mutation counters; between bumps ``estimate`` is
        # a pure function of (workload, freq), so the per-workload
        # vectors are reusable verbatim.  Looking estimates up
        # vector-at-a-time is value-identical to the original per-call
        # form: the walk below consumes exactly ``estimate(c, f)`` for
        # every frequency, in the same arithmetic order.
        versions = getattr(estimator, "workload_versions", None)
        if versions is None:
            mu_get = None
            versions_get = None
            mu_cache = None
        else:
            mu_cache = self._mu_cache
            mu_get = mu_cache.get
            versions_get = versions.get
            # No observation can land mid-call, so validate the cache
            # once per estimator mutation instead of once per queue
            # item: evict entries whose per-workload counter moved,
            # then record the estimator version under the reserved
            # ``None`` key (shared by every scheduler on this cache).
            # After the sweep, every stored entry is fresh and the
            # per-item path below is a bare dict get.
            ver = estimator.version
            if mu_get(None) != ver:
                stale = [c_ for c_, e_ in mu_cache.items()
                         if c_ is not None and e_[0] != versions_get(c_, 0)]
                for c_ in stale:
                    del mu_cache[c_]
                mu_cache[None] = ver

        # Lines 2-4: minimum frequency for the running transaction, and
        # its predicted remaining time per frequency (feeds q-hat).
        if running is not None:
            c0 = running.workload.name
            if mu_get is not None:
                entry = mu_get(c0)
                if entry is not None:
                    mu0 = entry[1]
                else:
                    mu0 = [estimate(c0, f) for f in freqs]
                    mu_cache[c0] = (versions_get(c0, 0), mu0)
            else:
                mu0 = [estimate(c0, f) for f in freqs]
            # With e0 == 0 the clamp is the identity (estimates are
            # never negative), so reuse the vector as-is.
            if running_elapsed:
                remaining_s = [max(0.0, m - running_elapsed) for m in mu0]
            else:
                remaining_s = mu0
            chosen = nf - 1
            for j in range(nf):
                if now + remaining_s[j] <= running.deadline:
                    chosen = j
                    break
        else:
            remaining_s = [0.0] * nf
            chosen = 0
        floor_index = chosen  # the running transaction's frequency floor

        # Lines 5-16: ensure all queued transactions finish in time.
        # Only q-hat at the *current* candidate frequency is read per
        # item, and ``chosen`` never decreases, so the full q-hat
        # vector is never materialized: the walk keeps one scalar
        # accumulator ``q`` (== ``cumulative[chosen]`` of the vector
        # form) plus a per-level ``workload -> mu[chosen]`` memo, and
        # an escalation rebuilds q-hat at the higher frequency by
        # replaying the walked items' estimates in walk order --- the
        # exact addition sequence the vector form would have performed.
        # Results are bit-identical; the per-item cost drops from one
        # add per frequency to one add total.
        items, index = self.queue.scan()
        end = len(items)
        early_exit = False
        scanned = 0
        if index < end and mu_get is not None:
            q = remaining_s[chosen]
            live = items[index:end]
            scanned = len(live)
            lm: dict = {}  # level memo: workload -> mu[chosen]
            lm_get = lm.get
            for request in live:
                c = request.workload_name
                m = lm_get(c)
                if m is None:
                    entry = mu_get(c)
                    if entry is None:
                        vec = [estimate(c, f) for f in freqs]
                        mu_cache[c] = (versions_get(c, 0), vec)
                    else:
                        vec = entry[1]
                    m = lm[c] = vec[chosen]
                deadline = request.deadline
                if now + q + m > deadline:
                    # Position of the current item (identity match ---
                    # requests are unique); escalations are rare enough
                    # that one C scan here beats per-item bookkeeping.
                    at = live.index(request)
                    mu = mu_cache[c][1]
                    # Find the lowest higher frequency that is fast
                    # enough.
                    j = chosen + 1
                    while j < nf:
                        chosen = j
                        qj = remaining_s[j]
                        for w in live[:at]:
                            qj += mu_cache[w.workload_name][1][j]
                        q = qj
                        m = mu[j]
                        if now + qj + m <= deadline:
                            break
                        j += 1
                    if chosen == nf - 1:
                        # Line 14: no further checking once we need
                        # the highest frequency.
                        scanned = at + 1
                        early_exit = True
                        break
                    lm = {c: m}  # new level, fresh memo
                    lm_get = lm.get
                q += m
        elif index < end:
            # Cache disabled (estimator without per-workload version
            # counters): the original interpreted walk, with estimates
            # drawn per item.
            q = remaining_s[chosen]
            vectors: List[List[float]] = []
            vectors_append = vectors.append
            while index < end:
                request = items[index]
                index += 1
                scanned += 1
                mu = [estimate(request.workload_name, f) for f in freqs]
                m = mu[chosen]
                deadline = request.deadline
                if now + q + m > deadline:
                    j = chosen + 1
                    while j < nf:
                        chosen = j
                        qj = remaining_s[j]
                        for w in vectors:
                            qj += w[j]
                        q = qj
                        m = mu[j]
                        if now + qj + m <= deadline:
                            break
                        j += 1
                    if chosen == nf - 1:
                        early_exit = True
                        break
                q += m
                vectors_append(mu)
        self.queue_items_scanned += scanned
        selected = freqs[chosen]
        if self.sanitize:
            self._sanitize_selected(selected, floor_index, now)
        if self.trace_decisions:
            self._record_decision(now, running, remaining_s[chosen],
                                  selected, freqs[floor_index],
                                  early_exit=early_exit)
        return selected

    def _record_decision(self, now_s: float, running: Optional[Request],
                         remaining_s: float, selected_ghz: float,
                         floor_ghz: float, early_exit: bool) -> None:
        """Capture why SetProcessorFreq picked ``selected_ghz``.

        ``remaining_s`` is the running transaction's predicted remaining
        time at the selected frequency, so ``slack_s`` is the margin it
        is predicted to finish with --- the quantity that drove the
        decision (Figure 2 lines 2-4).  ``early_exit`` marks the line-14
        shortcut (highest frequency required; queue walk abandoned).
        """
        slack_s = None
        if running is not None:
            slack_s = running.deadline - (now_s + remaining_s)
        self.last_decision = {
            "selected_ghz": selected_ghz,
            "floor_ghz": floor_ghz,
            "queue_len": len(self.queue),
            "remaining_s": remaining_s,
            "slack_s": slack_s,
            "early_exit": early_exit,
        }

    def _sanitize_selected(self, selected: float, floor_index: int,
                           now: float) -> None:
        """simsan: SetProcessorFreq postconditions (Figure 2).

        The selection must (a) come from the configured P-state set ---
        never an interpolated or stale value --- and (b) respect the
        monotone walk: the queue scan only ever *raises* the frequency
        above the running transaction's floor (lines 5-16 contain no
        downward step).
        """
        invariant(selected in self._freq_set, "pstate-membership",
                  "selected frequency is not in the P-state table",
                  selected=selected, table=self.frequencies, now=now)
        invariant(self.frequencies.index(selected) >= floor_index,
                  "freq-monotone",
                  "queue walk lowered the frequency below the running "
                  "transaction's floor",
                  selected=selected, floor_index=floor_index, now=now)

    # ------------------------------------------------------------------
    # Admission control (Section 1: the DBMS "can reorder requests, or
    # reject low value requests when load is high").  Base POLARIS
    # admits everything; see PolarisShedScheduler.
    # ------------------------------------------------------------------
    def admits(self, now: float, running: Optional[Request],
               running_elapsed: float, request: Request) -> bool:
        """Whether to accept ``request`` (called before enqueueing)."""
        return True

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    #: Whether mixed-frequency runs (transactions whose core frequency
    #: changed mid-execution) update the estimator.  Such measurements
    #: misattribute execution time to the dispatch frequency and, fed
    #: back, bias the low-frequency windows optimistic --- a feedback
    #: loop that erodes the estimator's deliberate conservatism.  The
    #: default records only clean single-frequency runs.
    update_on_mixed_freq = False

    def record_completion(self, request: Request) -> None:
        """Feed a finished request's measured execution time back into
        the estimator, attributed to its dispatch frequency.

        Runs spanning a frequency change are skipped by default (see
        :attr:`update_on_mixed_freq`); short transactions complete
        unbumped often enough to keep every window fresh.
        """
        if request.dispatch_freq is None:
            raise ValueError("request has no dispatch frequency recorded")
        if not request.single_freq and not self.update_on_mixed_freq:
            return
        self.estimator.observe(request.workload.name, request.dispatch_freq,
                               request.execution_time)
