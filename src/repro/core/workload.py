"""Workloads and the workload manager.

A *workload* (paper Section 3) is a named stream of requests sharing a
latency target ``L(c)``.  The paper assumes an external workload
manager (DB2 WLM, Oracle Resource Manager, ...) assigns each incoming
request to a workload; POLARIS is agnostic to the assignment policy.
This module provides the two assignment policies the evaluation uses:

* **per-type** --- one workload per benchmark transaction type, with
  ``L = slack * mean_execution_time(type, f_max)`` (Sections 6.2-6.4);
* **named tiers** --- e.g. gold (7.5 ms) and silver (37.5 ms) workloads
  each containing the full transaction mix (Section 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # type-only: keeps core importable without workloads
    from repro.workloads.base import BenchmarkSpec


@dataclass(frozen=True)
class Workload:
    """A request class with a latency target (seconds)."""

    name: str
    latency_target: float

    def __post_init__(self):
        if self.latency_target <= 0:
            raise ValueError(
                f"workload {self.name}: latency target must be positive")

    def deadline_for(self, arrival_time: float) -> float:
        """``d(t) = a(t) + L(c)`` (paper Figure 1)."""
        return arrival_time + self.latency_target


class WorkloadManager:
    """Registry of workloads known to a POLARIS deployment."""

    def __init__(self, workloads: Iterable[Workload] = ()):
        self._workloads: Dict[str, Workload] = {}
        for workload in workloads:
            self.register(workload)

    def register(self, workload: Workload) -> None:
        if workload.name in self._workloads:
            raise ValueError(f"workload {workload.name} already registered")
        self._workloads[workload.name] = workload

    def get(self, name: str) -> Workload:
        return self._workloads[name]

    def __contains__(self, name: str) -> bool:
        return name in self._workloads

    def __len__(self) -> int:
        return len(self._workloads)

    @property
    def workloads(self) -> List[Workload]:
        return [self._workloads[name] for name in sorted(self._workloads)]

    # ------------------------------------------------------------------
    # The evaluation's two assignment policies
    # ------------------------------------------------------------------
    @classmethod
    def per_type_with_slack(cls, spec: BenchmarkSpec,
                            slack: float) -> "WorkloadManager":
        """One workload per transaction type, target = slack x mean time.

        "We define slack as the ratio between a workload's latency
        target and the mean execution time of the workload's
        transactions, at the highest processor frequency."  E.g. at
        slack 50, Order Status (mean 0.25 ms) gets a 12.5 ms target and
        Stock Level (mean 3.4 ms) gets 170 ms (Section 6.2).
        """
        if slack <= 0:
            raise ValueError("slack must be positive")
        manager = cls()
        for txn_type in spec.types:
            manager.register(Workload(
                txn_type.name, slack * txn_type.service.mean_seconds))
        return manager

    @classmethod
    def tiers(cls, targets: Dict[str, float]) -> "WorkloadManager":
        """Named tier workloads with explicit latency targets (seconds).

        The paper's differentiation experiment uses
        ``{"gold": 7.5e-3, "silver": 37.5e-3}`` (Section 6.5).
        """
        return cls(Workload(name, target)
                   for name, target in sorted(targets.items()))

    def workload_for_type(self, txn_type: str) -> Optional[Workload]:
        """Per-type policy lookup (None if no workload carries the name)."""
        return self._workloads.get(txn_type)
