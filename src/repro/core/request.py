"""Transaction requests.

A request is one transaction execution order: it arrives tagged with a
workload identifier (paper Section 3), gets a deadline
``d(t) = a(t) + L(c(t))`` from its workload's latency target, and is
executed non-preemptively by one worker.
"""

from __future__ import annotations

import enum
from typing import Any, Optional


class RequestState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    #: Turned away by admission control (PolarisShedScheduler).
    REJECTED = "rejected"


class Request:
    """One transaction execution request.

    Attributes
    ----------
    workload:
        The :class:`~repro.core.workload.Workload` this request belongs
        to --- POLARIS keys its estimators and latency targets on this.
    txn_type:
        Benchmark transaction type name (NewOrder, Payment, ...); used
        by the functional execution layer and reporting.  One workload
        may span several types (the gold/silver experiment) or exactly
        one (the per-type default).
    work:
        True work in giga-cycles (drawn from the service model).  The
        scheduler never reads this --- it only sees measured execution
        times --- matching the paper's black-box estimation setting.
    """

    __slots__ = ("request_id", "workload", "workload_name", "txn_type",
                 "arrival_time", "deadline", "work", "state",
                 "dispatch_time", "finish_time", "worker_id",
                 "dispatch_freq", "single_freq", "result")

    _next_id = 0

    def __init__(self, workload, txn_type: str, arrival_time: float,
                 work: float, deadline: Optional[float] = None):
        Request._next_id += 1
        self.request_id = Request._next_id
        self.workload = workload
        #: ``workload.name`` denormalized: the scheduler's queue walk
        #: reads it once per (queued request x invocation), where the
        #: extra attribute hop is measurable.
        self.workload_name: str = workload.name
        self.txn_type = txn_type
        self.arrival_time = arrival_time
        self.deadline = deadline if deadline is not None \
            else arrival_time + workload.latency_target
        self.work = work
        self.state = RequestState.QUEUED
        self.dispatch_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.worker_id: Optional[int] = None
        self.dispatch_freq: Optional[float] = None
        #: True if the core frequency never changed while this request
        #: ran; only such runs are clean per-frequency measurements.
        self.single_freq: bool = True
        self.result: Any = None

    # ------------------------------------------------------------------
    @property
    def latency(self) -> float:
        """Response time: finish minus arrival (requires completion)."""
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} not finished")
        return self.finish_time - self.arrival_time

    @property
    def execution_time(self) -> float:
        """Service time: finish minus dispatch (requires completion)."""
        if self.finish_time is None or self.dispatch_time is None:
            raise RuntimeError(f"request {self.request_id} not finished")
        return self.finish_time - self.dispatch_time

    @property
    def met_deadline(self) -> bool:
        """Whether the request finished by its deadline."""
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} not finished")
        return self.finish_time <= self.deadline + 1e-12

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Request {self.request_id} {self.txn_type} "
                f"c={self.workload.name} a={self.arrival_time:.6f} "
                f"d={self.deadline:.6f} {self.state.value}>")
