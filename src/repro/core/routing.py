"""Request-routing policies across workers (paper Section 8).

The prototype's request handlers distribute requests round-robin,
"regardless of the request's transaction type or workload"
(Section 6.1).  The paper's closing discussion points out the extra
savings left on the table: "By controlling how transactions are
distributed to workers, we can obtain additional power savings by
allowing some workers (and their cores) to idle and move into
low-power C-states."

This module implements that direction:

* :class:`RoundRobinRouting` --- the paper's baseline;
* :class:`LeastLoadedRouting` --- classic join-shortest-queue;
* :class:`PackingRouting` --- the Section 8 idea: concentrate load on
  the lowest-numbered workers, subject to a backlog cap, so the
  remaining workers' cores idle long enough to demote into deep
  C-states (pair with ``ServerConfig(cstate_ladder="deep")``).

Policies see only queue lengths and busy flags --- information the
request handlers have --- so they remain workload-agnostic like the
rest of the routing layer.
"""

from __future__ import annotations

from typing import Sequence


class RoutingPolicy:
    """Chooses the worker index for each incoming request."""

    name = "routing"

    def choose_worker(self, workers: Sequence, request, now: float) -> int:
        raise NotImplementedError


class RoundRobinRouting(RoutingPolicy):
    """The paper's round-robin distribution (single rotating pointer)."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose_worker(self, workers: Sequence, request, now: float) -> int:
        index = self._next % len(workers)
        self._next = index + 1
        return index


class LeastLoadedRouting(RoutingPolicy):
    """Join the shortest queue (idle workers first, then fewest queued).

    Balances latency rather than power: it spreads load, which keeps
    every core lightly busy --- the opposite of what deep C-states need.
    Included as the natural contrast to :class:`PackingRouting`.
    """

    name = "least-loaded"

    def choose_worker(self, workers: Sequence, request, now: float) -> int:
        best_index = 0
        best_key = None
        for index, worker in enumerate(workers):
            key = (0 if worker.idle else 1, worker.queue_length(), index)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index


class PackingRouting(RoutingPolicy):
    """Consolidate onto the fewest workers (Section 8's extension).

    Route to the lowest-numbered worker whose backlog (running + queued)
    is below ``max_backlog``; spill to the next worker only when all
    earlier ones are saturated.  Workers beyond the active prefix see no
    requests, so their cores' idle intervals grow long enough for the
    C-state ladder to demote them into C6.

    ``max_backlog`` trades power for latency: a small cap behaves like
    least-loaded (little parking); a large cap parks aggressively but
    queues more work per active core.
    """

    name = "packing"

    def __init__(self, max_backlog: int = 3):
        if max_backlog < 1:
            raise ValueError("max_backlog must be at least 1")
        self.max_backlog = max_backlog

    def choose_worker(self, workers: Sequence, request, now: float) -> int:
        fallback_index = 0
        fallback_backlog = None
        for index, worker in enumerate(workers):
            backlog = worker.queue_length() + (0 if worker.idle else 1)
            if backlog < self.max_backlog:
                return index
            if fallback_backlog is None or backlog < fallback_backlog:
                fallback_backlog = backlog
                fallback_index = index
        return fallback_index  # everyone saturated: least-bad choice


ROUTING_POLICIES = {
    "round-robin": RoundRobinRouting,
    "least-loaded": LeastLoadedRouting,
    "packing": PackingRouting,
}


def make_routing(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by name."""
    cls = ROUTING_POLICIES.get(name)
    if cls is None:
        raise KeyError(f"unknown routing policy {name!r}; "
                       f"available: {sorted(ROUTING_POLICIES)}")
    return cls()
