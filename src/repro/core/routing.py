"""Request-routing policies across workers (paper Section 8).

The prototype's request handlers distribute requests round-robin,
"regardless of the request's transaction type or workload"
(Section 6.1).  The paper's closing discussion points out the extra
savings left on the table: "By controlling how transactions are
distributed to workers, we can obtain additional power savings by
allowing some workers (and their cores) to idle and move into
low-power C-states."

This module implements that direction:

* :class:`RoundRobinRouting` --- the paper's baseline;
* :class:`LeastLoadedRouting` --- classic join-shortest-queue;
* :class:`PackingRouting` --- the Section 8 idea: concentrate load on
  the lowest-numbered workers, subject to a backlog cap, so the
  remaining workers' cores idle long enough to demote into deep
  C-states (pair with ``ServerConfig(cstate_ladder="deep")``).

Policies see only queue lengths and busy flags --- information the
request handlers have --- so they remain workload-agnostic like the
rest of the routing layer.

When the resilience watchdog has quarantined workers, the server passes
the surviving indices as ``eligible``; policies choose among those only,
so packing does not keep targeting a dead prefix worker and round-robin
does not burn pointer positions on workers that cannot take work.  With
``eligible=None`` (or an empty selection) every worker is a candidate.
"""

from __future__ import annotations

from typing import Optional, Sequence


class RoutingPolicy:
    """Chooses the worker index for each incoming request.

    ``eligible`` is an ordered sequence of candidate worker indices
    (``None`` means all).  The returned index is always drawn from the
    candidates.
    """

    name = "routing"

    def choose_worker(self, workers: Sequence, request, now: float,
                      eligible: Optional[Sequence[int]] = None) -> int:
        raise NotImplementedError

    @staticmethod
    def _candidates(workers: Sequence,
                    eligible: Optional[Sequence[int]]) -> Sequence[int]:
        if eligible:
            return eligible
        return range(len(workers))


class RoundRobinRouting(RoutingPolicy):
    """The paper's round-robin distribution (single rotating pointer).

    The pointer counts *dispatches*, not raw worker slots: under
    quarantine it rotates through the eligible workers only, so a dead
    worker neither receives requests nor skews the rotation (skipping a
    slot would otherwise double-load whichever worker follows the dead
    one).
    """

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose_worker(self, workers: Sequence, request, now: float,
                      eligible: Optional[Sequence[int]] = None) -> int:
        candidates = self._candidates(workers, eligible)
        slot = self._next % len(candidates)
        self._next = slot + 1
        return candidates[slot]


class LeastLoadedRouting(RoutingPolicy):
    """Join the shortest queue (idle workers first, then fewest queued).

    Balances latency rather than power: it spreads load, which keeps
    every core lightly busy --- the opposite of what deep C-states need.
    Included as the natural contrast to :class:`PackingRouting`.
    """

    name = "least-loaded"

    def choose_worker(self, workers: Sequence, request, now: float,
                      eligible: Optional[Sequence[int]] = None) -> int:
        candidates = self._candidates(workers, eligible)
        best_index = candidates[0]
        best_key = None
        for index in candidates:
            worker = workers[index]
            key = (0 if worker.idle else 1, worker.queue_length(), index)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index


class PackingRouting(RoutingPolicy):
    """Consolidate onto the fewest workers (Section 8's extension).

    Route to the lowest-numbered worker whose backlog (running + queued)
    is below ``max_backlog``; spill to the next worker only when all
    earlier ones are saturated.  Workers beyond the active prefix see no
    requests, so their cores' idle intervals grow long enough for the
    C-state ladder to demote them into C6.

    ``max_backlog`` trades power for latency: a small cap behaves like
    least-loaded (little parking); a large cap parks aggressively but
    queues more work per active core.
    """

    name = "packing"

    def __init__(self, max_backlog: int = 3):
        if max_backlog < 1:
            raise ValueError("max_backlog must be at least 1")
        self.max_backlog = max_backlog

    def choose_worker(self, workers: Sequence, request, now: float,
                      eligible: Optional[Sequence[int]] = None) -> int:
        candidates = self._candidates(workers, eligible)
        fallback_index = candidates[0]
        fallback_backlog = None
        for index in candidates:
            worker = workers[index]
            backlog = worker.queue_length() + (0 if worker.idle else 1)
            if backlog < self.max_backlog:
                return index
            if fallback_backlog is None or backlog < fallback_backlog:
                fallback_backlog = backlog
                fallback_index = index
        return fallback_index  # everyone saturated: least-bad choice


ROUTING_POLICIES = {
    "round-robin": RoundRobinRouting,
    "least-loaded": LeastLoadedRouting,
    "packing": PackingRouting,
}


def make_routing(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by name."""
    cls = ROUTING_POLICIES.get(name)
    if cls is None:
        raise KeyError(f"unknown routing policy {name!r}; "
                       f"available: {sorted(ROUTING_POLICIES)}")
    return cls()
