"""POLARIS variants for the component analysis (paper Section 6.6).

The paper isolates the contribution of EDF ordering and of
arrival-triggered frequency adjustment with two ablated schedulers,
which also stand in for related systems:

* **POLARIS-FIFO** (Rubik-like): identical frequency selection, but
  transactions run in FIFO order.  Frequency is still adjusted on both
  arrival and completion.
* **POLARIS-FIFO-NOARRIVE** (LAPS-like): FIFO order *and* frequency
  adjusted only on transaction completion, so a burst of urgent
  arrivals cannot speed up the running transaction.

Both variants use POLARIS's execution-time estimator, as in the paper
("both variants use POLARIS' execution time estimation technique").
"""

from __future__ import annotations

from repro.core.polaris import PolarisScheduler
from repro.db.queues import FifoQueue, RequestQueue


class PolarisFifoScheduler(PolarisScheduler):
    """FIFO execution order; frequency adjusted on arrival and completion.

    ``SetProcessorFreq`` walks the queue in FIFO order, so the
    predicted queueing time of each request is the time of everything
    *ahead of it in the queue* --- the correct quantity for FIFO
    dispatch (for EDF the same walk visits earlier-deadline requests,
    recovering the paper's q-hat definition).
    """

    name = "polaris-fifo"
    #: FIFO pops in arrival order; simsan must not apply the EDF check.
    edf_pop_order = False

    def _make_queue(self) -> RequestQueue:
        return FifoQueue()


class PolarisFifoNoArriveScheduler(PolarisFifoScheduler):
    """FIFO order; frequency adjusted on completion only."""

    name = "polaris-fifo-noarrive"
    adjusts_on_arrival = False


class PolarisShedScheduler(PolarisScheduler):
    """POLARIS with admission control (load shedding).

    Section 1 motivates the DBMS's second advantage over the OS: it
    controls its units of work and "can reject low value requests when
    load is high".  This variant rejects, at arrival, any request that
    is provably hopeless: even at the maximum frequency, the predicted
    queueing time behind earlier-deadline work plus its own predicted
    execution time overshoots its deadline.  Rejected requests count as
    missed (they never finish by their deadline), but the worker stops
    burning cycles on transactions that were going to be late anyway,
    which protects the deadlines of the requests behind them.
    """

    name = "polaris-shed"

    def admits(self, now, running, running_elapsed, request) -> bool:
        f_max = self.frequencies[-1]
        estimate = self.estimator.estimate
        queueing = 0.0
        if running is not None:
            queueing = max(0.0, estimate(running.workload.name, f_max)
                           - running_elapsed)
        for queued in self.queue:
            if queued.deadline <= request.deadline:
                queueing += estimate(queued.workload.name, f_max)
        predicted_finish = now + queueing \
            + estimate(request.workload.name, f_max)
        return predicted_finish <= request.deadline
