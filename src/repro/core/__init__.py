"""POLARIS: POwer and Latency Aware Request Scheduling.

The paper's primary contribution (Section 3).  POLARIS controls both
transaction execution order (earliest-deadline-first) and per-core
processor frequency.  On every request arrival and completion it runs
``SetProcessorFreq`` (Figure 2): choose the *smallest* frequency such
that the running transaction and every queued transaction are predicted
to finish by their deadlines; if even the highest frequency cannot,
run flat out so late transactions finish as quickly as possible.

Predictions come from a per-(workload, frequency) sliding-window
percentile estimator (Section 3.2): the p-th percentile (default 95) of
the last S (default 1000) measured execution times --- deliberately
conservative, because POLARIS's first objective is meeting latency
targets, not saving power.

Variants from the component analysis (Section 6.6):

* ``PolarisFifoScheduler`` --- FIFO order instead of EDF (Rubik-like);
* ``PolarisFifoNoArriveScheduler`` --- FIFO and frequency adjustment on
  completion only (LAPS-like).
"""

from repro.core.request import Request, RequestState
from repro.core.workload import Workload, WorkloadManager
from repro.core.estimator import ExecutionTimeEstimator, SlidingWindowPercentile
from repro.core.polaris import PolarisScheduler
from repro.core.variants import PolarisFifoNoArriveScheduler, PolarisFifoScheduler
from repro.core.online import AvrScheduler, OnlineSpeedScaler, QoaScheduler

__all__ = [
    "Request", "RequestState",
    "Workload", "WorkloadManager",
    "ExecutionTimeEstimator", "SlidingWindowPercentile",
    "PolarisScheduler",
    "PolarisFifoScheduler", "PolarisFifoNoArriveScheduler",
    "OnlineSpeedScaler", "QoaScheduler", "AvrScheduler",
]
