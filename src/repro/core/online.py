"""Online speed-scaling schedulers: qOA-style and AVR, on real hardware.

The theory package holds OA and AVR as idealized offline oracles
(continuous speeds, true work known, preemption free).  This module
promotes both into first-class runnable schedulers that share the
:class:`~repro.core.polaris.PolarisScheduler` worker/queue contract:
EDF dispatch, ``select_frequency`` invoked on every arrival and
completion, discrete P-states with relation-L rounding, panic and
simsan hooks.  Three idealizations have to be dropped at the door:

* **True work is hidden.**  Like POLARIS, the schedulers only see the
  ``mu(c, f)`` execution-time estimator; a request's work is inferred
  as ``estimate(c, f_max) * f_max`` giga-cycles, and the running
  transaction's remaining work subtracts the elapsed time as if it ran
  at ``f_max`` (the same single-frequency simplification POLARIS's
  line-2 clamp makes).
* **Speeds are a discrete grid.**  The continuous target speed is
  mapped with relation *L* (lowest P-state at or above the target); a
  target above the grid runs flat out, exactly Figure 2's line 14.
* **Execution is non-preemptive.**  The preemptive plans degenerate to
  "replan at every arrival/completion, dispatch in EDF order" --- the
  same embedding the paper uses for POLARIS itself.

:class:`QoaScheduler` is OA with a speed multiplier ``q_factor``
(Bansal, Chan & Pruhs's qOA: running at ``q >= 1`` times OA's speed
trades energy for a better competitive ratio; ``q = 1`` is plain OA,
``q = 2 - 1/alpha`` the classic qOA operating point).
:class:`AvrScheduler` is Yao, Demers & Shenker's density accumulator.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.polaris import PolarisScheduler
from repro.core.request import Request


class OnlineSpeedScaler(PolarisScheduler):
    """Shared plumbing: estimate-based work inference + relation-L.

    Subclasses implement :meth:`_target_speed` returning a continuous
    target in GHz; this base handles panic, rounding, accounting, and
    decision tracing, keeping the :class:`PolarisScheduler` contract
    (pstate-membership simsan check included) intact.
    """

    def _work_gcycles(self, request: Request) -> float:
        """Inferred work: predicted time at ``f_max`` times ``f_max``."""
        f_max = self.frequencies[-1]
        return self.estimator.estimate(request.workload_name, f_max) * f_max

    def _remaining_gcycles(self, running: Request,
                           elapsed_s: float) -> float:
        """Running transaction's inferred remaining work (clamped at 0)."""
        f_max = self.frequencies[-1]
        predicted = self.estimator.estimate(running.workload_name, f_max)
        return max(0.0, predicted - elapsed_s) * f_max

    def _relation_l(self, target_ghz: float) -> float:
        """Lowest grid frequency at or above ``target_ghz`` (relation L);
        flat out when the target exceeds the grid."""
        for f in self.frequencies:
            if f + 1e-9 >= target_ghz:
                return f
        return self.frequencies[-1]

    def _target_speed(self, now: float, running: Optional[Request],
                      running_elapsed: float) -> float:
        raise NotImplementedError

    def select_frequency(self, now: float, running: Optional[Request],
                         running_elapsed: float = 0.0) -> float:
        self.invocations += 1
        freqs = self.frequencies
        if self.panic:
            if self.trace_decisions:
                self.last_decision = {
                    "selected_ghz": freqs[-1], "floor_ghz": freqs[-1],
                    "queue_len": len(self.queue), "target_ghz": freqs[-1],
                    "early_exit": True, "panic": True,
                }
            return freqs[-1]
        target = self._target_speed(now, running, running_elapsed)
        self.queue_items_scanned += len(self.queue)
        selected = self._relation_l(target)
        if self.sanitize:
            self._sanitize_selected(selected, 0, now)
        if self.trace_decisions:
            self.last_decision = {
                "selected_ghz": selected,
                "floor_ghz": freqs[0],
                "queue_len": len(self.queue),
                # Infinite targets (work due *now*) are recorded as None
                # so trace export stays valid JSON.
                "target_ghz": target if math.isfinite(target) else None,
                "early_exit": target > freqs[-1],
            }
        return selected


class QoaScheduler(OnlineSpeedScaler):
    """Online qOA: per-arrival OA replan on the discrete grid.

    At every invocation the pending set (running transaction's remaining
    work plus every queued request) is re-planned exactly like
    :func:`repro.theory.oa._staircase_plan` at ``now``: sorted by
    deadline, the target speed is the maximum prefix density
    ``sum(work) / (deadline - now)`` --- the first staircase group's
    speed, which is all OA ever executes before the next replan.  The
    result is multiplied by :attr:`q_factor` and rounded with relation
    L.  A deadline at or behind ``now`` is an infinite density: run
    flat out (the discrete-grid analogue of the oracle's instantaneous
    completion).
    """

    name = "oa-online"

    #: OA speed multiplier; 1.0 is plain OA, ``2 - 1/alpha`` classic qOA.
    q_factor = 1.0

    def _target_speed(self, now: float, running: Optional[Request],
                      running_elapsed: float) -> float:
        jobs: List[Tuple[float, float]] = []  # (deadline, work Gcycles)
        if running is not None:
            jobs.append((running.deadline,
                         self._remaining_gcycles(running, running_elapsed)))
        for queued in self.queue:
            jobs.append((queued.deadline, self._work_gcycles(queued)))
        if not jobs:
            return self.frequencies[0]
        jobs.sort()
        acc = 0.0
        density = 0.0
        for deadline, work in jobs:
            acc += work
            horizon = deadline - now
            if horizon <= 1e-12:
                # Due now: infinite density in the idealized model.
                return float("inf")
            density = max(density, acc / horizon)
        return density * self.q_factor


class AvrScheduler(OnlineSpeedScaler):
    """Online AVR: the density accumulator on the discrete grid.

    Each live request contributes its own density
    ``work / (deadline - arrival)`` --- both endpoints observable, work
    inferred from the estimator --- and the target speed is the plain
    sum, no replanning.  AVR tracks no progress: the running
    transaction contributes its full density until it completes and
    leaves the set.  A request whose window has already closed
    (``deadline <= now``) can no longer be served by its average rate;
    it forces flat-out, mirroring POLARIS's line-14 behaviour for late
    work.
    """

    name = "avr-online"

    def _target_speed(self, now: float, running: Optional[Request],
                      running_elapsed: float) -> float:
        live = list(self.queue)
        if running is not None:
            live.append(running)
        density = 0.0
        for request in live:
            window = request.deadline - request.arrival_time
            if request.deadline - now <= 1e-12 or window <= 1e-12:
                # Window closed (or degenerate): the average rate can
                # no longer finish this request --- run flat out.
                return float("inf")
            density += self._work_gcycles(request) / window
        return density
