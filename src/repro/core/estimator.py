"""Execution-time estimation (paper Section 3.2).

POLARIS predicts the execution time ``mu(c, f)`` of a workload-``c``
transaction at frequency ``f`` as the p-th percentile of the measured
execution times over a sliding window of the ``S`` most recent
workload-``c`` transactions that ran at frequency ``f``.  The paper
uses ``S = 1000`` and ``p`` in [95, 99] (95 for most experiments) and
adapts Haerdle & Steiger's running-median maintenance to arbitrary
percentiles.

:class:`SlidingWindowPercentile` keeps the window in two structures: a
ring buffer in arrival order (for eviction) and a sorted array (for the
order statistic), updated incrementally per observation --- an O(log S)
locate plus an O(S) shift, a few kilobytes per (workload, frequency)
pair, matching the paper's cost analysis.

Unobserved pairs estimate **zero**: "the execution time estimates for
all workloads at all frequencies can be initialized to zero.  This will
cause POLARIS to gradually explore and initialize its estimators for
unexplored frequencies, from lowest to highest" (Section 6.1).  The
experiment harness reproduces the paper's explicit training phase that
fills every window before measuring.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Deque, Dict, List, Tuple

DEFAULT_WINDOW = 1000
DEFAULT_PERCENTILE = 95.0


class SlidingWindowPercentile:
    """Running p-th percentile over the last ``window`` observations."""

    def __init__(self, window: int = DEFAULT_WINDOW,
                 percentile: float = DEFAULT_PERCENTILE):
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        self.window = window
        self.percentile = percentile
        self._order: Deque[float] = deque()
        self._sorted: List[float] = []
        self.observations = 0

    def observe(self, value: float) -> None:
        """Add a measurement, evicting the oldest beyond the window."""
        if value < 0:
            raise ValueError("execution times cannot be negative")
        self.observations += 1
        if len(self._order) == self.window:
            oldest = self._order.popleft()
            idx = bisect.bisect_left(self._sorted, oldest)
            self._sorted.pop(idx)
        self._order.append(value)
        bisect.insort(self._sorted, value)

    def value(self) -> float:
        """Current percentile estimate (0.0 when no observations yet)."""
        n = len(self._sorted)
        if n == 0:
            return 0.0
        rank = math.ceil(self.percentile / 100.0 * n)
        return self._sorted[max(0, rank - 1)]

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def full(self) -> bool:
        return len(self._sorted) == self.window


class ExecutionTimeEstimator:
    """The full ``mu(c, f)`` table: one percentile tracker per pair."""

    def __init__(self, window: int = DEFAULT_WINDOW,
                 percentile: float = DEFAULT_PERCENTILE):
        self.window = window
        self.percentile = percentile
        self._trackers: Dict[Tuple[str, float], SlidingWindowPercentile] = {}

    def _tracker(self, workload: str,
                 freq_ghz: float) -> SlidingWindowPercentile:
        key = (workload, freq_ghz)
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = SlidingWindowPercentile(self.window, self.percentile)
            self._trackers[key] = tracker
        return tracker

    def observe(self, workload: str, freq_ghz: float,
                execution_seconds: float) -> None:
        """Record one measured execution time.

        The measurement is attributed to the frequency in effect at
        dispatch, as in the prototype (a transaction occasionally spans
        a frequency change; the sliding window absorbs the noise).
        """
        self._tracker(workload, freq_ghz).observe(execution_seconds)

    def estimate(self, workload: str, freq_ghz: float) -> float:
        """``mu(c, f)``: predicted execution time in seconds (0 if unseen)."""
        tracker = self._trackers.get((workload, freq_ghz))
        if tracker is None:
            return 0.0
        return tracker.value()

    def prime(self, workload: str, freq_ghz: float, value: float,
              count: int = 1) -> None:
        """Seed a tracker (the harness's training phase, Section 6.1)."""
        tracker = self._tracker(workload, freq_ghz)
        for _ in range(count):
            tracker.observe(value)

    def observation_count(self, workload: str, freq_ghz: float) -> int:
        tracker = self._trackers.get((workload, freq_ghz))
        return tracker.observations if tracker is not None else 0

    def pairs(self) -> List[Tuple[str, float]]:
        """All (workload, frequency) pairs observed so far (sorted)."""
        return sorted(self._trackers)
