"""Execution-time estimation (paper Section 3.2).

POLARIS predicts the execution time ``mu(c, f)`` of a workload-``c``
transaction at frequency ``f`` as the p-th percentile of the measured
execution times over a sliding window of the ``S`` most recent
workload-``c`` transactions that ran at frequency ``f``.  The paper
uses ``S = 1000`` and ``p`` in [95, 99] (95 for most experiments) and
adapts Haerdle & Steiger's running-median maintenance to arbitrary
percentiles.

:class:`SlidingWindowPercentile` keeps the window in two structures: a
ring buffer in arrival order (for eviction) and a **chunked sorted
list** (for the order statistic).  The chunked structure splits the
sorted window into O(sqrt(S)) runs of O(sqrt(S)) elements each, so an
insert or evict shifts one short run instead of the whole window ---
O(sqrt(S)) per observation against the O(S) memmove a single flat list
pays.  The full-window steady state (one evict + one insert per
observation) goes through :meth:`_ChunkedSortedList.replace`, which
resolves both in a single pass and reuses the evicted slot when the new
value lands in the same run.  The percentile itself is cached and only
recomputed after the window changes, because POLARIS calls
``estimate()`` once per (queued request x frequency) inside
SetProcessorFreq --- far more often than it observes.

:class:`ListSlidingWindowPercentile` preserves the original flat-list
implementation as the reference oracle: the property tests assert the
chunked structure is value-for-value identical to it on random streams,
and the microbenchmarks race the two.

Unobserved pairs estimate **zero**: "the execution time estimates for
all workloads at all frequencies can be initialized to zero.  This will
cause POLARIS to gradually explore and initialize its estimators for
unexplored frequencies, from lowest to highest" (Section 6.1).  The
experiment harness reproduces the paper's explicit training phase that
fills every window before measuring.
"""

from __future__ import annotations

import bisect
import math
from bisect import bisect_left, bisect_right, insort
from collections import deque
from typing import Deque, Dict, List, Tuple

DEFAULT_WINDOW = 1000
DEFAULT_PERCENTILE = 95.0

#: Target run length of the chunked sorted list.  Runs split at twice
#: this size, so steady-state runs hold LOAD..2*LOAD elements.  Tuned on
#: the S=1000 microbenchmark: small enough that the per-run memmove is
#: cheap, large enough that the run directory stays short.
LOAD = 32


class _ChunkedSortedList:
    """A sorted multiset as a directory of short sorted runs.

    ``_runs`` holds the sorted sublists; ``_maxes[i]`` mirrors
    ``_runs[i][-1]`` so membership resolves with one bisect over the
    directory.  All mutating operations keep both in lockstep.
    """

    __slots__ = ("_runs", "_maxes", "_size")

    def __init__(self) -> None:
        self._runs: List[List[float]] = []
        self._maxes: List[float] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, value: float) -> None:
        """Insert ``value``, splitting the target run if it overflows."""
        runs = self._runs
        maxes = self._maxes
        if maxes:
            i = bisect_right(maxes, value)
            if i == len(maxes):
                i -= 1
                run = runs[i]
                run.append(value)
                maxes[i] = value
            else:
                run = runs[i]
                insort(run, value)
            if len(run) > LOAD * 2:
                self._split(i)
        else:
            runs.append([value])
            maxes.append(value)
        self._size += 1

    def remove(self, value: float) -> None:
        """Remove one occurrence of ``value`` (must be present)."""
        maxes = self._maxes
        i = bisect_left(maxes, value)
        run = self._runs[i]
        del run[bisect_left(run, value)]
        self._size -= 1
        if run:
            maxes[i] = run[-1]
        else:
            del self._runs[i]
            del maxes[i]

    def replace(self, old: float, new: float) -> None:
        """Evict ``old`` and insert ``new`` in one pass.

        When ``new`` belongs in the same run that loses ``old`` --- the
        common case for a stationary stream --- the run is edited with a
        single delete + insort and the directory entry refreshed once.
        """
        maxes = self._maxes
        i = bisect_left(maxes, old)
        run = self._runs[i]
        if (i == 0 or new >= maxes[i - 1]) and \
                (new <= maxes[i] or i == len(maxes) - 1):
            del run[bisect_left(run, old)]
            insort(run, new)
            maxes[i] = run[-1]
            return
        self._evict_then_add(i, old, new)

    def _evict_then_add(self, i: int, old: float, new: float) -> None:
        """Slow path of :meth:`replace`: ``new`` lands in a different run."""
        runs = self._runs
        maxes = self._maxes
        run = runs[i]
        j = bisect_left(run, old)
        del run[j]
        if run:
            if j == len(run):
                maxes[i] = run[-1]
        else:
            del runs[i]
            del maxes[i]
        k = bisect_right(maxes, new)
        if k == len(maxes):
            k -= 1
            run = runs[k]
            run.append(new)
            maxes[k] = new
        else:
            run = runs[k]
            insort(run, new)
        if len(run) > LOAD * 2:
            self._split(k)

    def _split(self, i: int) -> None:
        run = self._runs[i]
        tail = run[LOAD:]
        del run[LOAD:]
        self._runs.insert(i + 1, tail)
        self._maxes[i] = run[-1]
        self._maxes.insert(i + 1, tail[-1])

    def kth(self, k: int) -> float:
        """The k-th smallest element (0-based)."""
        size = self._size
        if k >= size:
            raise IndexError(f"rank {k} out of range for size {size}")
        # High percentiles rank near the tail, so walk in from
        # whichever end is closer; the runs concatenate in sorted
        # order from either direction.
        if 2 * k >= size:
            j = size - 1 - k
            for run in reversed(self._runs):
                n = len(run)
                if j < n:
                    return run[n - 1 - j]
                j -= n
        for run in self._runs:
            n = len(run)
            if k < n:
                return run[k]
            k -= n
        raise IndexError(f"rank {k} out of range for size {size}")

    def flatten(self) -> List[float]:
        """All elements in sorted order (diagnostics and tests)."""
        return [v for run in self._runs for v in run]


class SlidingWindowPercentile:
    """Running p-th percentile over the last ``window`` observations."""

    __slots__ = ("window", "percentile", "_order", "_chunks",
                 "observations", "_cached_value", "_cached_at")

    def __init__(self, window: int = DEFAULT_WINDOW,
                 percentile: float = DEFAULT_PERCENTILE):
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        self.window = window
        self.percentile = percentile
        self._order: Deque[float] = deque()
        self._chunks = _ChunkedSortedList()
        self.observations = 0
        #: value() memo, keyed by the observation count it was computed
        #: at --- observe() already bumps the counter, so invalidation
        #: costs the hot path nothing.
        self._cached_value = 0.0
        self._cached_at = 0

    def observe(self, value: float) -> None:
        """Add a measurement, evicting the oldest beyond the window.

        The full-window path inlines ``_ChunkedSortedList.replace`` ---
        this is the per-transaction hot path and the extra method call
        is measurable at S=1000.
        """
        if value < 0:
            raise ValueError("execution times cannot be negative")
        self.observations += 1
        order = self._order
        chunks = self._chunks
        if len(order) == self.window:
            old = order.popleft()
            maxes = chunks._maxes
            runs = chunks._runs
            i = bisect_left(maxes, old)
            run = runs[i]
            if (i == 0 or value >= maxes[i - 1]) and \
                    (value <= maxes[i] or i == len(maxes) - 1):
                # Same run loses ``old`` and gains ``value``.
                del run[bisect_left(run, old)]
                insort(run, value)
                maxes[i] = run[-1]
            else:
                j = bisect_left(run, old)
                del run[j]
                if run:
                    if j == len(run):
                        maxes[i] = run[-1]
                else:
                    del runs[i]
                    del maxes[i]
                k = bisect_right(maxes, value)
                if k == len(maxes):
                    k -= 1
                    run = runs[k]
                    run.append(value)
                    maxes[k] = value
                else:
                    run = runs[k]
                    insort(run, value)
                if len(run) > LOAD * 2:
                    chunks._split(k)
        else:
            chunks.add(value)
        order.append(value)

    def value(self) -> float:
        """Current percentile estimate (0.0 when no observations yet).

        Memoized per window state: POLARIS calls ``estimate()`` once per
        (queued request x frequency) inside SetProcessorFreq, so reads
        vastly outnumber updates.
        """
        observations = self.observations
        if self._cached_at == observations:
            return self._cached_value
        n = self._chunks._size
        if n == 0:
            result = 0.0
        else:
            rank = math.ceil(self.percentile / 100.0 * n)
            result = self._chunks.kth(max(0, rank - 1))
        self._cached_value = result
        self._cached_at = observations
        return result

    @property
    def _sorted(self) -> List[float]:
        """The window's values in sorted order (compatibility shim)."""
        return self._chunks.flatten()

    def __len__(self) -> int:
        return self._chunks._size

    @property
    def full(self) -> bool:
        return self._chunks._size == self.window


class ListSlidingWindowPercentile:
    """The original flat-sorted-list implementation (reference oracle).

    An O(log S) locate plus an O(S) shift per observation.  Retained
    verbatim so property tests can assert the chunked structure above is
    observation-for-observation identical, and so the microbenchmarks
    can race the two implementations.
    """

    def __init__(self, window: int = DEFAULT_WINDOW,
                 percentile: float = DEFAULT_PERCENTILE):
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        self.window = window
        self.percentile = percentile
        self._order: Deque[float] = deque()
        self._sorted: List[float] = []
        self.observations = 0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("execution times cannot be negative")
        self.observations += 1
        if len(self._order) == self.window:
            oldest = self._order.popleft()
            idx = bisect.bisect_left(self._sorted, oldest)
            self._sorted.pop(idx)
        self._order.append(value)
        bisect.insort(self._sorted, value)

    def value(self) -> float:
        n = len(self._sorted)
        if n == 0:
            return 0.0
        rank = math.ceil(self.percentile / 100.0 * n)
        return self._sorted[max(0, rank - 1)]

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def full(self) -> bool:
        return len(self._sorted) == self.window


class ExecutionTimeEstimator:
    """The full ``mu(c, f)`` table: one percentile tracker per pair."""

    def __init__(self, window: int = DEFAULT_WINDOW,
                 percentile: float = DEFAULT_PERCENTILE):
        self.window = window
        self.percentile = percentile
        self._trackers: Dict[Tuple[str, float], SlidingWindowPercentile] = {}
        #: Bumped on every mutation.  Consumers (the POLARIS mu-vector
        #: cache) may reuse estimates as long as this hasn't moved;
        #: estimator *proxies* that vary estimates over time without
        #: observing (repro.faults skew windows) deliberately do not
        #: expose a ``version``, which disables such caching.
        self.version = 0
        #: Per-workload mutation counters: an observation for workload
        #: ``c`` moves only ``workload_versions[c]``, so cached
        #: estimate vectors for *other* workloads stay valid --- the
        #: global counter alone would invalidate the whole cache on
        #: every completion.
        self.workload_versions: Dict[str, int] = {}
        #: Estimate-vector caches, keyed by frequency tuple then
        #: workload (see PolarisScheduler).  Living on the estimator
        #: rather than the scheduler lets every worker sharing this
        #: estimator share one cache: a vector built after any
        #: observation is valid for all of them, instead of each of N
        #: workers rebuilding it once per mutation.
        self.mu_vector_caches: Dict[Tuple[float, ...], dict] = {}

    def _tracker(self, workload: str,
                 freq_ghz: float) -> SlidingWindowPercentile:
        key = (workload, freq_ghz)
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = SlidingWindowPercentile(self.window, self.percentile)
            self._trackers[key] = tracker
        return tracker

    def observe(self, workload: str, freq_ghz: float,
                execution_seconds: float) -> None:
        """Record one measured execution time.

        The measurement is attributed to the frequency in effect at
        dispatch, as in the prototype (a transaction occasionally spans
        a frequency change; the sliding window absorbs the noise).
        """
        tracker = self._tracker(workload, freq_ghz)
        tracker.observe(execution_seconds)
        self.version += 1
        version = self.workload_versions.get(workload, 0) + 1
        self.workload_versions[workload] = version
        if self.mu_vector_caches:
            self._refresh_vectors(workload, freq_ghz, tracker, version)

    def estimate(self, workload: str, freq_ghz: float) -> float:
        """``mu(c, f)``: predicted execution time in seconds (0 if unseen)."""
        tracker = self._trackers.get((workload, freq_ghz))
        if tracker is None:
            return 0.0
        return tracker.value()

    def prime(self, workload: str, freq_ghz: float, value: float,
              count: int = 1) -> None:
        """Seed a tracker (the harness's training phase, Section 6.1)."""
        tracker = self._tracker(workload, freq_ghz)
        for _ in range(count):
            tracker.observe(value)
        self.version += 1
        version = self.workload_versions.get(workload, 0) + 1
        self.workload_versions[workload] = version
        if self.mu_vector_caches:
            self._refresh_vectors(workload, freq_ghz, tracker, version)

    def _refresh_vectors(self, workload: str, freq_ghz: float,
                         tracker: SlidingWindowPercentile,
                         version: int) -> None:
        """Patch cached estimate vectors in place after a mutation.

        An observation for ``(workload, freq_ghz)`` changes exactly one
        tracker, so a cached vector for this workload stays correct at
        every *other* frequency --- only the observed frequency's slot
        needs the fresh ``tracker.value()``, and the entry's version
        stamp moves up so consumers treat it as current.  This replaces
        a full ``[estimate(c, f) for f in freqs]`` rebuild per mutation
        with one slot write, and is value-identical to the rebuild.
        """
        for freqs, cache in self.mu_vector_caches.items():
            entry = cache.get(workload)
            if entry is not None:
                vector = entry[1]
                if freq_ghz in freqs:
                    vector[freqs.index(freq_ghz)] = tracker.value()
                # A frequency outside this cache's ladder touches no
                # slot, so the vector is already current either way.
                cache[workload] = (version, vector)

    def observation_count(self, workload: str, freq_ghz: float) -> int:
        tracker = self._trackers.get((workload, freq_ghz))
        return tracker.observations if tracker is not None else 0

    def pairs(self) -> List[Tuple[str, float]]:
        """All (workload, frequency) pairs observed so far (sorted)."""
        return sorted(self._trackers)
