"""Worker request queues.

Shore-MT's default request queues are FIFO; the POLARIS prototype
modifies them so "requests are queued in EDF order" (Section 5).  Both
disciplines share one interface so workers and schedulers are agnostic:

* ``push(request)`` --- enqueue;
* ``pop()`` --- dequeue the next request to execute;
* iteration --- yields waiting requests **in queue order** (EDF order
  for the EDF queue), which is exactly the order SetProcessorFreq scans
  the queue in (Figure 2, line 6).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import (
    TYPE_CHECKING, Deque, Iterator, List, Optional, Sequence, Tuple,
)

if TYPE_CHECKING:  # layering: queues sit below the request layer
    from repro.core.request import Request


class RequestQueue:
    """Interface for worker request queues."""

    def push(self, request: Request) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[Request]:
        raise NotImplementedError

    def peek(self) -> Optional[Request]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Request]:
        raise NotImplementedError

    def scan(self) -> Tuple[Sequence[Request], int]:
        """Return ``(items, start)`` for index-based iteration.

        The queue's contents in pop order are ``items[start:]``.  The
        POLARIS SetProcessorFreq walk is the engine's hottest loop;
        indexing a concrete sequence avoids the generator protocol's
        per-item resume cost.  The returned sequence must not be
        mutated and is only valid until the next queue operation.
        """
        return list(self), 0


class FifoQueue(RequestQueue):
    """Arrival-order queue (Shore-MT's default scheduler)."""

    def __init__(self):
        self._items: Deque[Request] = deque()

    def push(self, request: Request) -> None:
        self._items.append(request)

    def pop(self) -> Optional[Request]:
        return self._items.popleft() if self._items else None

    def peek(self) -> Optional[Request]:
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._items)

    def scan(self) -> Tuple[Sequence[Request], int]:
        return list(self._items), 0


class EdfQueue(RequestQueue):
    """Earliest-deadline-first queue.

    Backed by a sorted array keyed on ``(deadline, request_id)``; the
    id tiebreak makes ordering deterministic and FIFO among equal
    deadlines.  Insertion is an O(log n) locate plus an O(n - idx)
    memmove of the entries *behind* the insertion point --- the same
    cost envelope as the prototype's ordered queue.  ``pop`` is
    amortized O(1): a head pointer advances past dequeued entries and
    the backing arrays are compacted only when the dead prefix exceeds
    both a fixed floor and half the array (each entry is deleted at
    most once per O(n) compaction, and a compaction removes >= ``n/2``
    entries).  The head pop was previously ``list.pop(0)`` --- an O(n)
    memmove per dispatch on the server's hottest path.
    """

    #: Compact only past this many dead slots, so small queues (the
    #: common case at the paper's load levels) never pay the copy.
    _COMPACT_MIN = 64

    def __init__(self):
        self._keys: List[tuple] = []
        self._items: List[Request] = []
        self._head = 0  # index of the current front entry

    def push(self, request: Request) -> None:
        key = (request.deadline, request.request_id)
        idx = bisect.bisect_left(self._keys, key, lo=self._head)
        self._keys.insert(idx, key)
        self._items.insert(idx, request)

    def pop(self) -> Optional[Request]:
        if self._head >= len(self._items):
            return None
        request = self._items[self._head]
        # Drop the reference so a dequeued request is collectable before
        # the next compaction truncates the slot.
        self._items[self._head] = None  # type: ignore[call-overload]
        self._head += 1
        if self._head >= self._COMPACT_MIN \
                and self._head * 2 >= len(self._items):
            del self._keys[:self._head]
            del self._items[:self._head]
            self._head = 0
        return request

    def peek(self) -> Optional[Request]:
        return self._items[self._head] \
            if self._head < len(self._items) else None

    def __len__(self) -> int:
        return len(self._items) - self._head

    def __iter__(self) -> Iterator[Request]:
        for idx in range(self._head, len(self._items)):
            yield self._items[idx]

    def scan(self) -> Tuple[Sequence[Request], int]:
        # Zero-copy: the walk indexes the live backing list from the
        # head pointer (entries before it are cleared, never yielded).
        return self._items, self._head
