"""Worker request queues.

Shore-MT's default request queues are FIFO; the POLARIS prototype
modifies them so "requests are queued in EDF order" (Section 5).  Both
disciplines share one interface so workers and schedulers are agnostic:

* ``push(request)`` --- enqueue;
* ``pop()`` --- dequeue the next request to execute;
* iteration --- yields waiting requests **in queue order** (EDF order
  for the EDF queue), which is exactly the order SetProcessorFreq scans
  the queue in (Figure 2, line 6).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import TYPE_CHECKING, Deque, Iterator, List, Optional

if TYPE_CHECKING:  # layering: queues sit below the request layer
    from repro.core.request import Request


class RequestQueue:
    """Interface for worker request queues."""

    def push(self, request: Request) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[Request]:
        raise NotImplementedError

    def peek(self) -> Optional[Request]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Request]:
        raise NotImplementedError


class FifoQueue(RequestQueue):
    """Arrival-order queue (Shore-MT's default scheduler)."""

    def __init__(self):
        self._items: Deque[Request] = deque()

    def push(self, request: Request) -> None:
        self._items.append(request)

    def pop(self) -> Optional[Request]:
        return self._items.popleft() if self._items else None

    def peek(self) -> Optional[Request]:
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._items)


class EdfQueue(RequestQueue):
    """Earliest-deadline-first queue.

    Backed by a sorted array keyed on ``(deadline, request_id)``; the
    id tiebreak makes ordering deterministic and FIFO among equal
    deadlines.  Insertion is O(n) worst case (memmove) with an O(log n)
    locate --- the same cost envelope as the prototype's ordered queue,
    and queue lengths stay small at the load levels studied.
    """

    def __init__(self):
        self._keys: List[tuple] = []
        self._items: List[Request] = []

    def push(self, request: Request) -> None:
        key = (request.deadline, request.request_id)
        idx = bisect.bisect_left(self._keys, key)
        self._keys.insert(idx, key)
        self._items.insert(idx, request)

    def pop(self) -> Optional[Request]:
        if not self._items:
            return None
        self._keys.pop(0)
        return self._items.pop(0)

    def peek(self) -> Optional[Request]:
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._items)
