"""In-memory storage manager.

A compact but real storage engine: schema-checked tables, unique and
non-unique secondary indexes (hash or B+-tree), strict two-phase row
locking with no-wait conflict resolution, undo-based aborts, and a
write-ahead log with the staged group commit policy the paper's
Shore-MT configuration uses ("log I/O is forced at least once per 100
transactions", Section 6.1).

The engine is *functionally* exercised by the TPC-C / TPC-E transaction
implementations; simulated execution *time* comes from the calibrated
service-time model instead (see DESIGN.md, "Functional + timed
execution").
"""

from repro.db.storage.errors import (
    DuplicateKeyError, LockConflictError, NoSuchRowError, NoSuchTableError,
    SchemaError, StorageError, TransactionAborted,
)
from repro.db.storage.btree import BPlusTree
from repro.db.storage.locks import LockManager, LockMode
from repro.db.storage.log import LogManager, LogRecord
from repro.db.storage.table import Table
from repro.db.storage.transaction import Transaction
from repro.db.storage.database import Database

__all__ = [
    "BPlusTree", "Database", "DuplicateKeyError", "LockConflictError",
    "LockManager", "LockMode", "LogManager", "LogRecord", "NoSuchRowError",
    "NoSuchTableError", "SchemaError", "StorageError", "Table",
    "Transaction", "TransactionAborted",
]
