"""Write-ahead log with staged group commit.

Reproduces the logging configuration of the paper's Shore-MT setup:
"Shore-MT's default staged group commit configuration, under which log
I/O is forced at least once per 100 transactions" (Section 6.1).

The "disk" is an in-memory list split into a flushed (durable) prefix
and a buffered tail.  Commit records accumulate in the buffer and the
whole tail is forced when ``group_commit_size`` commits are pending (or
on explicit :meth:`force`).  Redo-only recovery replays the durable
prefix: committed transactions are reapplied, uncommitted ones are
discarded --- tested by the crash-recovery unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional

#: Log record kinds.
KIND_INSERT = "insert"
KIND_UPDATE = "update"
KIND_DELETE = "delete"
KIND_COMMIT = "commit"
KIND_ABORT = "abort"

#: Shore-MT's staged group commit threshold used in the paper.
DEFAULT_GROUP_COMMIT_SIZE = 100


@dataclass(frozen=True)
class LogRecord:
    """One WAL record.

    ``before``/``after`` are row images (dicts) for update records,
    ``after`` alone for inserts, ``before`` alone for deletes.
    """

    lsn: int
    txn_id: int
    kind: str
    table: Optional[str] = None
    key: Optional[Hashable] = None
    before: Optional[Dict[str, Any]] = None
    after: Optional[Dict[str, Any]] = None


@dataclass
class LogStats:
    """Counters exposed for tests and reports."""

    records_written: int = 0
    commits: int = 0
    aborts: int = 0
    forces: int = 0
    group_forces: int = 0  # forces triggered by the group-commit threshold


class LogManager:
    """Append-only WAL with group commit."""

    def __init__(self, group_commit_size: int = DEFAULT_GROUP_COMMIT_SIZE):
        if group_commit_size < 1:
            raise ValueError("group commit size must be >= 1")
        self.group_commit_size = group_commit_size
        self._durable: List[LogRecord] = []
        self._buffer: List[LogRecord] = []
        self._next_lsn = 1
        self._pending_commits = 0
        self.stats = LogStats()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, txn_id: int, kind: str, table: Optional[str] = None,
               key: Optional[Hashable] = None,
               before: Optional[Dict[str, Any]] = None,
               after: Optional[Dict[str, Any]] = None) -> LogRecord:
        """Append a record to the log buffer and return it."""
        record = LogRecord(self._next_lsn, txn_id, kind, table, key,
                           dict(before) if before is not None else None,
                           dict(after) if after is not None else None)
        self._next_lsn += 1
        self._buffer.append(record)
        self.stats.records_written += 1
        if kind == KIND_COMMIT:
            self.stats.commits += 1
            self._pending_commits += 1
            if self._pending_commits >= self.group_commit_size:
                self.stats.group_forces += 1
                self.force()
        elif kind == KIND_ABORT:
            self.stats.aborts += 1
        return record

    def force(self) -> None:
        """Force the buffered tail to the durable prefix (log I/O)."""
        if self._buffer:
            self._durable.extend(self._buffer)
            self._buffer.clear()
        self._pending_commits = 0
        self.stats.forces += 1

    # ------------------------------------------------------------------
    # Inspection / recovery
    # ------------------------------------------------------------------
    @property
    def durable_records(self) -> List[LogRecord]:
        """The records that survive a crash (durable prefix only)."""
        return list(self._durable)

    @property
    def buffered_count(self) -> int:
        return len(self._buffer)

    @property
    def buffered_commits(self) -> int:
        """COMMIT records sitting in the not-yet-forced tail --- the
        transactions a crash right now would un-commit (the fleet
        tier's lost-commit metric reads this at crash time)."""
        return sum(1 for r in self._buffer if r.kind == KIND_COMMIT)

    def crash(self) -> List[LogRecord]:
        """Simulate a crash: drop the buffered tail, return the survivors."""
        self._buffer.clear()
        self._pending_commits = 0
        return list(self._durable)

    @property
    def last_durable_lsn(self) -> int:
        return self._durable[-1].lsn if self._durable else 0

    def discard_after(self, lsn: int) -> int:
        """Drop durable records with ``lsn`` *above* the given LSN and
        clear the buffer; returns how many durable records were cut.

        The failover trim: a promoted replica only applied the durable
        prefix through its caught-up LSN, so the shard's authoritative
        log must end exactly there --- records beyond it (durable on
        the dead primary, never shipped) are the lost-commit gap, not
        recoverable history.
        """
        keep = [r for r in self._durable if r.lsn <= lsn]
        cut = len(self._durable) - len(keep)
        self._durable = keep
        self._buffer.clear()
        self._pending_commits = 0
        return cut

    def truncate_through(self, lsn: int) -> int:
        """Drop durable records with ``lsn`` at or below the given LSN
        (safe once a checkpoint covers them); returns how many were cut."""
        keep = [r for r in self._durable if r.lsn > lsn]
        cut = len(self._durable) - len(keep)
        self._durable = keep
        return cut


def replay(records: List[LogRecord],
           base: Optional[Dict[str, Dict[Hashable, Dict[str, Any]]]] = None
           ) -> Dict[str, Dict[Hashable, Dict[str, Any]]]:
    """Redo-only recovery: rebuild table contents from a durable log.

    Returns ``{table_name: {primary_key: row_dict}}`` containing exactly
    the effects of transactions whose COMMIT record is durable, applied
    on top of ``base`` (a checkpoint image) when given.
    """
    committed = {r.txn_id for r in records if r.kind == KIND_COMMIT}
    tables: Dict[str, Dict[Hashable, Dict[str, Any]]] = {}
    if base is not None:
        tables = {name: {pk: dict(row) for pk, row in rows.items()}
                  for name, rows in base.items()}
    for record in records:
        if record.txn_id not in committed:
            continue
        if record.kind == KIND_INSERT:
            assert record.table is not None and record.after is not None
            tables.setdefault(record.table, {})[record.key] = dict(record.after)
        elif record.kind == KIND_UPDATE:
            assert record.table is not None and record.after is not None
            tables.setdefault(record.table, {})[record.key] = dict(record.after)
        elif record.kind == KIND_DELETE:
            assert record.table is not None
            tables.setdefault(record.table, {}).pop(record.key, None)
    return tables


@dataclass(frozen=True)
class Checkpoint:
    """A consistent table-image snapshot plus its log position.

    Recovery = load :attr:`tables`, then redo durable records with
    ``lsn > last_lsn``.  Records at or before ``last_lsn`` can be
    truncated (the point of checkpointing: bounded recovery time).
    """

    last_lsn: int
    tables: Dict[str, Dict[Hashable, Dict[str, Any]]]
