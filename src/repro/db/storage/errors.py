"""Storage-engine exception hierarchy."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for all storage-engine errors."""


class SchemaError(StorageError):
    """Schema violation: unknown column, missing primary-key value, ..."""


class NoSuchTableError(StorageError):
    """Referenced table does not exist."""


class NoSuchRowError(StorageError):
    """Point lookup or update referenced a missing primary key."""


class DuplicateKeyError(StorageError):
    """Insert would violate a primary-key or unique-index constraint."""


class LockConflictError(StorageError):
    """Lock request conflicts with a lock held by another transaction.

    The engine uses no-wait conflict resolution: the requester aborts
    rather than blocking, which (with single-threaded workers executing
    transactions to completion) can only arise from misuse or from the
    dedicated concurrency unit tests.
    """


class TransactionAborted(StorageError):
    """Operation attempted on a transaction that already aborted/committed."""


class Rollback(Exception):
    """Raised by a transaction body to request a clean abort.

    Deliberately *not* a :class:`StorageError`: it signals
    application-level rollback (e.g. the TPC-C 1% New Order unused-item
    rollback), which the transaction context manager translates into an
    abort and the server layer treats as a normal completion.
    """
