"""Schema-checked in-memory tables with secondary indexes.

A :class:`Table` stores rows (dicts) keyed by a tuple primary key, with
optional unique/non-unique secondary indexes backed by a hash map or a
B+-tree.  Tables expose *raw* physical operations; transactional
semantics (locking, logging, undo) are layered on top by
:class:`repro.db.storage.transaction.Transaction`.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.db.storage.btree import BPlusTree
from repro.db.storage.errors import (
    DuplicateKeyError, NoSuchRowError, SchemaError,
)

Row = Dict[str, Any]
Key = Tuple[Hashable, ...]


class _Index:
    """One secondary index definition plus its physical structure."""

    def __init__(self, name: str, columns: Tuple[str, ...], unique: bool,
                 ordered: bool):
        self.name = name
        self.columns = columns
        self.unique = unique
        self.ordered = ordered
        if ordered:
            self.tree: Optional[BPlusTree] = BPlusTree()
            self.map: Optional[Dict[Key, Any]] = None
        else:
            self.tree = None
            self.map = {}

    # -- maintenance ----------------------------------------------------
    def key_of(self, row: Row) -> Key:
        return tuple(row[c] for c in self.columns)

    def add(self, row: Row, pk: Key) -> None:
        key = self.key_of(row)
        if self.unique:
            if self.ordered:
                assert self.tree is not None
                if key in self.tree:
                    raise DuplicateKeyError(
                        f"unique index {self.name}: duplicate {key}")
                self.tree.insert(key, pk)
            else:
                assert self.map is not None
                if key in self.map:
                    raise DuplicateKeyError(
                        f"unique index {self.name}: duplicate {key}")
                self.map[key] = pk
        else:
            if self.ordered:
                assert self.tree is not None
                self.tree.insert((key, pk), pk)
            else:
                assert self.map is not None
                self.map.setdefault(key, set()).add(pk)

    def remove(self, row: Row, pk: Key) -> None:
        key = self.key_of(row)
        if self.unique:
            if self.ordered:
                assert self.tree is not None
                self.tree.delete(key)
            else:
                assert self.map is not None
                self.map.pop(key, None)
        else:
            if self.ordered:
                assert self.tree is not None
                self.tree.delete((key, pk))
            else:
                assert self.map is not None
                pks = self.map.get(key)
                if pks is not None:
                    pks.discard(pk)
                    if not pks:
                        del self.map[key]

    # -- lookup -----------------------------------------------------------
    def lookup(self, key: Key) -> List[Key]:
        """Primary keys matching an exact index key."""
        if self.unique:
            if self.ordered:
                assert self.tree is not None
                pk = self.tree.get(key)
            else:
                assert self.map is not None
                pk = self.map.get(key)
            return [pk] if pk is not None else []
        if self.ordered:
            assert self.tree is not None
            matches = []
            for composite, pk in self.tree.items((key, ()), None):
                if composite[0] != key:
                    break
                matches.append(pk)
            return matches
        assert self.map is not None
        return sorted(self.map.get(key, ()))

    def range(self, low: Optional[Key], high: Optional[Key],
              inclusive: Tuple[bool, bool] = (True, True)) -> Iterator[Key]:
        """Primary keys with index key in [low, high], in key order."""
        if not self.ordered:
            raise SchemaError(f"index {self.name} is not ordered")
        assert self.tree is not None
        if self.unique:
            for _key, pk in self.tree.items(low, high, inclusive):
                yield pk
            return
        # Composite (key, pk) entries: translate the bounds.
        lo = (low, ()) if low is not None else None
        for composite, pk in self.tree.items(lo, None):
            key = composite[0]
            if low is not None:
                if inclusive[0]:
                    if key < low:
                        continue
                elif key <= low:
                    continue
            if high is not None:
                if inclusive[1]:
                    if key > high:
                        return
                elif key >= high:
                    return
            yield pk


class Table:
    """One in-memory table.

    >>> table = Table("item", ("i_id", "i_name", "i_price"), ("i_id",))
    >>> table.insert({"i_id": 1, "i_name": "widget", "i_price": 9.99})
    >>> table.get((1,))["i_name"]
    'widget'
    """

    def __init__(self, name: str, columns: Sequence[str],
                 primary_key: Sequence[str]):
        if not columns:
            raise SchemaError("table needs at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError(f"duplicate columns in {name}")
        missing = [c for c in primary_key if c not in columns]
        if missing or not primary_key:
            raise SchemaError(
                f"primary key columns {missing or primary_key} invalid")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        self._rows: Dict[Key, Row] = {}
        self._indexes: Dict[str, _Index] = {}

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def create_index(self, name: str, columns: Sequence[str],
                     unique: bool = False, ordered: bool = False) -> None:
        """Add a secondary index (and backfill it from existing rows)."""
        if name in self._indexes:
            raise SchemaError(f"index {name} already exists on {self.name}")
        bad = [c for c in columns if c not in self.columns]
        if bad:
            raise SchemaError(f"index {name}: unknown columns {bad}")
        index = _Index(name, tuple(columns), unique, ordered)
        for pk, row in self._rows.items():
            index.add(row, pk)
        self._indexes[name] = index

    def pk_of(self, row: Row) -> Key:
        """Extract the primary-key tuple from a row."""
        try:
            return tuple(row[c] for c in self.primary_key)
        except KeyError as exc:
            raise SchemaError(
                f"{self.name}: row missing primary key column {exc}") from exc

    def _check_columns(self, row: Row) -> None:
        unknown = [c for c in row if c not in self.columns]
        if unknown:
            raise SchemaError(f"{self.name}: unknown columns {unknown}")

    # ------------------------------------------------------------------
    # Physical operations (no locking/logging; see Transaction)
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> Key:
        """Insert a full row; returns its primary key."""
        self._check_columns(row)
        missing = [c for c in self.columns if c not in row]
        if missing:
            raise SchemaError(f"{self.name}: insert missing columns {missing}")
        pk = self.pk_of(row)
        if pk in self._rows:
            raise DuplicateKeyError(f"{self.name}: duplicate primary key {pk}")
        stored = dict(row)
        # Maintain indexes first so a unique violation leaves no trace.
        added: List[_Index] = []
        try:
            for index in self._indexes.values():
                index.add(stored, pk)
                added.append(index)
        except DuplicateKeyError:
            for index in added:
                index.remove(stored, pk)
            raise
        self._rows[pk] = stored
        return pk

    def get(self, pk: Key) -> Row:
        """Read a row by primary key (a copy; mutations don't leak back)."""
        row = self._rows.get(tuple(pk))
        if row is None:
            raise NoSuchRowError(f"{self.name}: no row with pk {pk}")
        return dict(row)

    def get_or_none(self, pk: Key) -> Optional[Row]:
        row = self._rows.get(tuple(pk))
        return dict(row) if row is not None else None

    def update(self, pk: Key, changes: Row) -> Tuple[Row, Row]:
        """Apply ``changes`` to the row at ``pk``.

        Returns ``(before, after)`` images.  Primary-key columns cannot
        be changed.
        """
        self._check_columns(changes)
        pk = tuple(pk)
        row = self._rows.get(pk)
        if row is None:
            raise NoSuchRowError(f"{self.name}: no row with pk {pk}")
        for col in self.primary_key:
            if col in changes and changes[col] != row[col]:
                raise SchemaError(
                    f"{self.name}: cannot change primary key column {col}")
        before = dict(row)
        after = dict(row)
        after.update(changes)
        for index in self._indexes.values():
            if index.key_of(before) != index.key_of(after):
                index.remove(before, pk)
                index.add(after, pk)
        self._rows[pk] = after
        return before, dict(after)

    def delete(self, pk: Key) -> Row:
        """Delete the row at ``pk``; returns the before image."""
        pk = tuple(pk)
        row = self._rows.pop(pk, None)
        if row is None:
            raise NoSuchRowError(f"{self.name}: no row with pk {pk}")
        for index in self._indexes.values():
            index.remove(row, pk)
        return row

    def restore(self, row: Row) -> None:
        """Reinstate a previously deleted row (undo path)."""
        pk = self.pk_of(row)
        if pk in self._rows:
            raise DuplicateKeyError(f"{self.name}: restore clash on {pk}")
        stored = dict(row)
        self._rows[pk] = stored
        for index in self._indexes.values():
            index.add(stored, pk)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lookup(self, index_name: str, key: Key) -> List[Row]:
        """Rows whose index key equals ``key`` exactly."""
        index = self._index(index_name)
        return [dict(self._rows[pk]) for pk in index.lookup(tuple(key))]

    def range_scan(self, index_name: str, low: Optional[Key],
                   high: Optional[Key],
                   inclusive: Tuple[bool, bool] = (True, True)
                   ) -> Iterator[Row]:
        """Rows with index key in [low, high], in index order."""
        index = self._index(index_name)
        for pk in index.range(low, high, inclusive):
            yield dict(self._rows[pk])

    def scan_all(self) -> Iterator[Row]:
        """Full scan in unspecified order (copies)."""
        for row in self._rows.values():
            yield dict(row)

    def _index(self, name: str) -> _Index:
        index = self._indexes.get(name)
        if index is None:
            raise SchemaError(f"{self.name}: no index named {name}")
        return index

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, pk: Key) -> bool:
        return tuple(pk) in self._rows
