"""In-memory B+-tree.

Ordered index structure backing the storage engine's range scans (TPC-C
Stock Level and Order Status walk ranges of composite keys).  Keys are
arbitrary comparable Python values --- the index layer uses tuples ---
and map to a single value each; non-unique indexes are expressed by the
caller through composite ``(key, discriminator)`` keys.

Standard algorithm: leaves hold (key, value) pairs and are linked for
range scans; internal nodes hold separator keys.  Nodes split when they
exceed ``order`` keys and rebalance (borrow from a sibling, else merge)
when they fall below ``order // 2``.  ``check_invariants`` verifies the
structural invariants and is exercised by the property-based tests.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

DEFAULT_ORDER = 32


class _Node:
    __slots__ = ("keys",)

    def __init__(self):
        self.keys: List[Any] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self):
        super().__init__()
        self.values: List[Any] = []
        self.next: Optional["_Leaf"] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self):
        super().__init__()
        self.children: List[_Node] = []


class BPlusTree:
    """Map with ordered iteration, backed by a B+-tree.

    >>> tree = BPlusTree()
    >>> tree.insert(2, "b") and tree.insert(1, "a")
    True
    >>> list(tree.items())
    [(1, 'a'), (2, 'b')]
    """

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 3:
            raise ValueError("order must be at least 3")
        self.order = order
        self._min_keys = order // 2
        self._root: _Node = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        assert isinstance(node, _Leaf)
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        """Value stored at ``key``, or ``default``."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def min_key(self) -> Any:
        """Smallest key (raises ``KeyError`` on an empty tree)."""
        if self._size == 0:
            raise KeyError("empty tree")
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Any:
        """Largest key (raises ``KeyError`` on an empty tree)."""
        if self._size == 0:
            raise KeyError("empty tree")
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[-1]
        return node.keys[-1]

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any, replace: bool = True) -> bool:
        """Insert ``key -> value``.

        Returns ``True`` if a new key was added, ``False`` if an existing
        key was overwritten (or left alone when ``replace=False``).
        """
        split = self._insert(self._root, key, value, replace)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        return self._last_insert_was_new

    def _insert(self, node: _Node, key: Any, value: Any,
                replace: bool) -> Optional[Tuple[Any, _Node]]:
        if isinstance(node, _Leaf):
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if replace:
                    node.values[idx] = value
                self._last_insert_was_new = False
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            self._last_insert_was_new = True
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None

        assert isinstance(node, _Internal)
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value, replace)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns ``True`` if it was present."""
        removed = self._delete(self._root, key)
        if isinstance(self._root, _Internal) and len(self._root.keys) == 0:
            self._root = self._root.children[0]
        return removed

    def _delete(self, node: _Node, key: Any) -> bool:
        if isinstance(node, _Leaf):
            idx = bisect.bisect_left(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                return False
            node.keys.pop(idx)
            node.values.pop(idx)
            self._size -= 1
            return True

        assert isinstance(node, _Internal)
        idx = bisect.bisect_right(node.keys, key)
        child = node.children[idx]
        removed = self._delete(child, key)
        if removed and self._underflowed(child):
            self._rebalance(node, idx)
        return removed

    def _underflowed(self, node: _Node) -> bool:
        if node is self._root:
            return False
        return len(node.keys) < self._min_keys

    def _rebalance(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) \
            else None

        # Try borrowing from a richer sibling first.
        if left is not None and len(left.keys) > self._min_keys:
            self._borrow_from_left(parent, idx, left, child)
            return
        if right is not None and len(right.keys) > self._min_keys:
            self._borrow_from_right(parent, idx, child, right)
            return
        # Merge with a sibling.
        if left is not None:
            self._merge(parent, idx - 1, left, child)
        else:
            assert right is not None
            self._merge(parent, idx, child, right)

    def _borrow_from_left(self, parent: _Internal, idx: int,
                          left: _Node, child: _Node) -> None:
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            assert isinstance(left, _Internal) and isinstance(child, _Internal)
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Internal, idx: int,
                           child: _Node, right: _Node) -> None:
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            assert isinstance(right, _Internal) and isinstance(child, _Internal)
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Internal, left_idx: int,
               left: _Node, right: _Node) -> None:
        """Fold ``right`` into ``left``; ``left_idx`` is the separator index."""
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def items(self, low: Any = None, high: Any = None,
              inclusive: Tuple[bool, bool] = (True, True)
              ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs in ``[low, high]`` in key order.

        ``low``/``high`` of ``None`` mean unbounded; ``inclusive``
        controls each endpoint.
        """
        if self._size == 0:
            return
        if low is None:
            node: Optional[_Leaf] = self._leftmost_leaf()
            idx = 0
        else:
            node = self._find_leaf(low)
            if inclusive[0]:
                idx = bisect.bisect_left(node.keys, low)
            else:
                idx = bisect.bisect_right(node.keys, low)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if high is not None:
                    if inclusive[1]:
                        if key > high:
                            return
                    elif key >= high:
                        return
                yield key, node.values[idx]
                idx += 1
            node = node.next
            idx = 0

    def keys(self, low: Any = None, high: Any = None) -> Iterator[Any]:
        for key, _value in self.items(low, high):
            yield key

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node

    # ------------------------------------------------------------------
    # Validation (for tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural invariants; raises ``AssertionError`` if broken."""
        leaf_depths = set()
        count = self._check_node(self._root, None, None, 0, leaf_depths)
        assert count == self._size, f"size {self._size} != counted {count}"
        assert len(leaf_depths) <= 1, f"uneven leaf depths: {leaf_depths}"
        # Leaf chain must be the full sorted key sequence.
        chained = [k for k, _ in self.items()]
        assert chained == sorted(chained), "leaf chain out of order"
        assert len(chained) == self._size

    def _check_node(self, node: _Node, low: Any, high: Any, depth: int,
                    leaf_depths: set) -> int:
        assert node.keys == sorted(node.keys), "unsorted node keys"
        for key in node.keys:
            if low is not None:
                assert key >= low, f"key {key} < lower bound {low}"
            if high is not None:
                assert key < high, f"key {key} >= upper bound {high}"
        if node is not self._root:
            assert len(node.keys) >= self._min_keys, "underfull node"
        assert len(node.keys) <= self.order, "overfull node"
        if isinstance(node, _Leaf):
            leaf_depths.add(depth)
            assert len(node.keys) == len(node.values)
            return len(node.keys)
        assert isinstance(node, _Internal)
        assert len(node.children) == len(node.keys) + 1
        total = 0
        bounds = [low] + list(node.keys) + [high]
        for i, child in enumerate(node.children):
            total += self._check_node(child, bounds[i], bounds[i + 1],
                                      depth + 1, leaf_depths)
        return total


class _Missing:
    def __repr__(self):  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
