"""Transactional layer: strict 2PL + WAL + undo-based abort.

A :class:`Transaction` wraps the physical table operations with:

* lock acquisition (S for reads, X for writes) through the database's
  :class:`~repro.db.storage.locks.LockManager`;
* write-ahead logging of every modification before it is applied;
* an in-memory undo list so :meth:`abort` restores the pre-transaction
  state exactly (verified by the atomicity property tests).

Locks are held to commit/abort (strict 2PL), so schedules are
serializable and recoverable.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.db.storage import log as wal
from repro.db.storage.errors import TransactionAborted
from repro.db.storage.locks import LockMode
from repro.db.storage.table import Key, Row


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work against a :class:`~repro.db.storage.database.Database`."""

    def __init__(self, database, txn_id: int):
        self._db = database
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        # Undo entries, applied in reverse on abort:
        #   ("insert", table, pk)           -> delete pk
        #   ("update", table, pk, before)   -> restore before image
        #   ("delete", table, before_row)   -> reinsert row
        self._undo: List[Tuple] = []
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionAborted(
                f"txn {self.txn_id} is {self.state.value}")

    def _lock(self, table: str, pk: Key, mode: LockMode) -> None:
        self._db.locks.acquire(self.txn_id, table, tuple(pk), mode)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, table: str, pk: Key, for_update: bool = False) -> Row:
        """Point read; takes an S lock (X with ``for_update``)."""
        self._require_active()
        mode = LockMode.EXCLUSIVE if for_update else LockMode.SHARED
        self._lock(table, pk, mode)
        self.reads += 1
        return self._db.table(table).get(pk)

    def get_or_none(self, table: str, pk: Key,
                    for_update: bool = False) -> Optional[Row]:
        """Point read returning ``None`` for a missing row."""
        self._require_active()
        mode = LockMode.EXCLUSIVE if for_update else LockMode.SHARED
        self._lock(table, pk, mode)
        self.reads += 1
        return self._db.table(table).get_or_none(pk)

    def lookup(self, table: str, index: str, key: Key) -> List[Row]:
        """Exact-match secondary-index read; S-locks every returned row."""
        self._require_active()
        tbl = self._db.table(table)
        rows = tbl.lookup(index, key)
        for row in rows:
            self._lock(table, tbl.pk_of(row), LockMode.SHARED)
        self.reads += len(rows)
        return rows

    def range_scan(self, table: str, index: str, low: Optional[Key],
                   high: Optional[Key],
                   inclusive: Tuple[bool, bool] = (True, True)
                   ) -> Iterator[Row]:
        """Ordered range read; S-locks each row as it is yielded."""
        self._require_active()
        tbl = self._db.table(table)
        for row in tbl.range_scan(index, low, high, inclusive):
            self._lock(table, tbl.pk_of(row), LockMode.SHARED)
            self.reads += 1
            yield row

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, table: str, row: Row) -> Key:
        """Insert a row (X lock, WAL record, undo entry)."""
        self._require_active()
        tbl = self._db.table(table)
        pk = tbl.pk_of(row)
        self._lock(table, pk, LockMode.EXCLUSIVE)
        # Apply before logging: a failed insert (duplicate key) must not
        # leave a phantom record that redo would replay on commit.
        tbl.insert(row)
        self._db.log.append(self.txn_id, wal.KIND_INSERT, table, pk,
                            after=row)
        self._undo.append(("insert", table, pk))
        self.writes += 1
        return pk

    def update(self, table: str, pk: Key, changes: Dict[str, Any]) -> Row:
        """Update columns of the row at ``pk``; returns the after image."""
        self._require_active()
        self._lock(table, pk, LockMode.EXCLUSIVE)
        before, after = self._db.table(table).update(pk, changes)
        self._db.log.append(self.txn_id, wal.KIND_UPDATE, table, tuple(pk),
                            before=before, after=after)
        self._undo.append(("update", table, tuple(pk), before))
        self.writes += 1
        return after

    def delete(self, table: str, pk: Key) -> Row:
        """Delete the row at ``pk``; returns the before image."""
        self._require_active()
        self._lock(table, pk, LockMode.EXCLUSIVE)
        before = self._db.table(table).delete(pk)
        self._db.log.append(self.txn_id, wal.KIND_DELETE, table, tuple(pk),
                            before=before)
        self._undo.append(("delete", table, before))
        self.writes += 1
        return before

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Log COMMIT (group-committed) and release all locks."""
        self._require_active()
        self._db.log.append(self.txn_id, wal.KIND_COMMIT)
        self._db.locks.release_all(self.txn_id)
        self.state = TxnState.COMMITTED

    def abort(self) -> None:
        """Undo every modification in reverse order, then release locks."""
        self._require_active()
        for entry in reversed(self._undo):
            kind = entry[0]
            tbl = self._db.table(entry[1])
            if kind == "insert":
                tbl.delete(entry[2])
            elif kind == "update":
                # Restore by overwriting with the before image.
                pk, before = entry[2], entry[3]
                current = tbl.get(pk)
                revert = {c: before[c] for c in before
                          if before[c] != current.get(c)}
                if revert:
                    tbl.update(pk, revert)
            elif kind == "delete":
                tbl.restore(entry[2])
        self._db.log.append(self.txn_id, wal.KIND_ABORT)
        self._db.locks.release_all(self.txn_id)
        self.state = TxnState.ABORTED

    # Context-manager protocol: commit on success, abort on exception.
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state is TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False
