"""Database: table registry + lock manager + WAL + transaction factory."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.db.storage.errors import NoSuchTableError, SchemaError
from repro.db.storage.locks import LockManager
from repro.db.storage.log import (
    Checkpoint, DEFAULT_GROUP_COMMIT_SIZE, LogManager, LogRecord, replay,
)
from repro.db.storage.table import Table
from repro.db.storage.transaction import Transaction


class Database:
    """An in-memory database instance.

    >>> db = Database()
    >>> _ = db.create_table("t", ("k", "v"), ("k",))
    >>> with db.transaction() as txn:
    ...     _ = txn.insert("t", {"k": 1, "v": "x"})
    >>> db.table("t").get((1,))["v"]
    'x'
    """

    def __init__(self, group_commit_size: int = DEFAULT_GROUP_COMMIT_SIZE):
        self._tables: Dict[str, Table] = {}
        self.locks = LockManager()
        self.log = LogManager(group_commit_size)
        self._next_txn_id = 1

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[str],
                     primary_key: Sequence[str]) -> Table:
        if name in self._tables:
            raise SchemaError(f"table {name} already exists")
        table = Table(name, columns, primary_key)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise NoSuchTableError(f"no table named {name}")
        return table

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def transaction(self) -> Transaction:
        """Begin a new transaction (usable as a context manager)."""
        txn = Transaction(self, self._next_txn_id)
        self._next_txn_id += 1
        return txn

    # ------------------------------------------------------------------
    # Checkpointing / recovery
    # ------------------------------------------------------------------
    def take_checkpoint(self, truncate: bool = True) -> Checkpoint:
        """Snapshot all tables at the current durable log position.

        Forces the log first (so the checkpoint covers everything
        committed up to now), snapshots table images, and --- with
        ``truncate`` --- cuts the covered durable prefix, bounding
        recovery to the checkpoint plus the log tail.  A quiescent
        point is assumed (no transaction mid-flight), which the
        single-threaded callers guarantee.
        """
        self.log.force()
        tables = {name: {table.pk_of(row): row for row in table.scan_all()}
                  for name, table in self._tables.items()}
        checkpoint = Checkpoint(self.log.last_durable_lsn, tables)
        if truncate:
            self.log.truncate_through(checkpoint.last_lsn)
        return checkpoint

    def recover_from(self, records: List[LogRecord],
                     checkpoint: Checkpoint = None) -> None:
        """Redo-only recovery: load the durable, committed state.

        Tables must already exist with their schemas (as after restart
        with the catalog available); their contents are replaced by the
        checkpoint image (if any) plus the redo of committed records
        beyond it.
        """
        base = checkpoint.tables if checkpoint is not None else None
        tail = records
        if checkpoint is not None:
            tail = [r for r in records if r.lsn > checkpoint.last_lsn]
        recovered = replay(tail, base=base)
        for name, rows in recovered.items():
            table = self.table(name)
            for pk in [table.pk_of(r) for r in table.scan_all()]:
                table.delete(pk)
            for row in rows.values():
                table.insert(row)

    # ------------------------------------------------------------------
    # Integrity checks (used by tests and examples)
    # ------------------------------------------------------------------
    def checkpoint_rowcounts(self) -> Dict[str, int]:
        """Snapshot of per-table row counts."""
        return {name: len(table) for name, table in self._tables.items()}
