"""Row-level lock manager (strict two-phase locking).

Workers in the simulated server execute each transaction from start to
finish on a single core (the VoltDB/Silo execution model POLARIS
targets, paper Section 1), so in the end-to-end simulation lock
conflicts cannot arise between workers of disjoint partitions.  The
lock manager still implements the full S/X protocol --- the substrate
should be honest, and the concurrency unit tests exercise conflicts
directly.

Two conflict policies are provided:

* **no-wait** (default): a conflicting request raises
  :class:`LockConflictError` immediately.  Deadlock-free by
  construction, matching the run-to-completion worker model.
* **wait-die** (Rosenkrantz et al.): an *older* requester (smaller
  transaction id) is allowed to wait --- signalled to the caller as
  :class:`WouldWaitError`, since single-threaded callers must retry
  rather than block --- while a *younger* requester dies
  (:class:`LockConflictError`).  Deadlock-free because waits only ever
  point from older to younger transactions.

:func:`find_deadlock` is a standalone waits-for-graph cycle detector
for engines that do block.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.db.storage.errors import LockConflictError


class WouldWaitError(LockConflictError):
    """Wait-die: the (older) requester is entitled to wait and retry."""


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) mode."""

    SHARED = "S"
    EXCLUSIVE = "X"


def find_deadlock(waits_for: Dict[int, Iterable[int]]) -> Optional[List[int]]:
    """Find a cycle in a waits-for graph.

    ``waits_for[t]`` lists the transactions ``t`` is blocked on.
    Returns one cycle as a list of transaction ids (first == last
    implied), or ``None`` when the graph is acyclic.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    stack: List[int] = []

    def visit(node: int) -> Optional[List[int]]:
        color[node] = GREY
        stack.append(node)
        for neighbour in waits_for.get(node, ()):
            state = color.get(neighbour, WHITE)
            if state == GREY:
                cycle_start = stack.index(neighbour)
                return stack[cycle_start:]
            if state == WHITE:
                cycle = visit(neighbour)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in list(waits_for):
        if color.get(node, WHITE) == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


class _LockEntry:
    __slots__ = ("mode", "holders")

    def __init__(self):
        self.mode: LockMode = LockMode.SHARED
        self.holders: Set[int] = set()


class LockManager:
    """Tracks S/X locks on ``(table, key)`` resources per transaction id.

    ``policy`` selects conflict handling: "no-wait" (default) or
    "wait-die" (see module docstring).
    """

    def __init__(self, policy: str = "no-wait"):
        if policy not in ("no-wait", "wait-die"):
            raise ValueError(f"unknown lock policy {policy!r}")
        self.policy = policy
        self._locks: Dict[Tuple[str, Hashable], _LockEntry] = {}
        self._held_by: Dict[int, Set[Tuple[str, Hashable]]] = {}
        self.conflicts = 0
        self.acquisitions = 0
        self.waits = 0
        self.deaths = 0

    def _conflict(self, txn_id: int, holders: Set[int], message: str):
        """Dispatch a conflict per the configured policy."""
        self.conflicts += 1
        if self.policy == "wait-die" and all(txn_id < h for h in holders):
            self.waits += 1
            raise WouldWaitError(f"{message} (older txn may wait/retry)")
        if self.policy == "wait-die":
            self.deaths += 1
        raise LockConflictError(message)

    # ------------------------------------------------------------------
    def acquire(self, txn_id: int, table: str, key: Hashable,
                mode: LockMode) -> None:
        """Grant ``txn_id`` a lock on ``(table, key)`` or raise.

        Re-entrant: repeated requests by the holder are no-ops, and a
        sole shared holder may upgrade to exclusive.
        """
        resource = (table, key)
        entry = self._locks.get(resource)
        if entry is None:
            entry = _LockEntry()
            entry.mode = mode
            entry.holders = {txn_id}
            self._locks[resource] = entry
            self._held_by.setdefault(txn_id, set()).add(resource)
            self.acquisitions += 1
            return

        if txn_id in entry.holders:
            if mode is LockMode.EXCLUSIVE and entry.mode is LockMode.SHARED:
                if len(entry.holders) == 1:
                    entry.mode = LockMode.EXCLUSIVE  # upgrade
                    return
                self._conflict(
                    txn_id, entry.holders - {txn_id},
                    f"txn {txn_id} cannot upgrade {resource}: "
                    f"{len(entry.holders) - 1} other shared holder(s)")
            return  # already held in a sufficient mode

        compatible = (mode is LockMode.SHARED
                      and entry.mode is LockMode.SHARED)
        if not compatible:
            self._conflict(
                txn_id, entry.holders,
                f"txn {txn_id} blocked on {resource} held "
                f"{entry.mode.value} by {sorted(entry.holders)}")
        entry.holders.add(txn_id)
        self._held_by.setdefault(txn_id, set()).add(resource)
        self.acquisitions += 1

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit/abort time)."""
        for resource in self._held_by.pop(txn_id, set()):
            entry = self._locks.get(resource)
            if entry is None:
                continue
            entry.holders.discard(txn_id)
            if not entry.holders:
                del self._locks[resource]

    # ------------------------------------------------------------------
    def holds(self, txn_id: int, table: str, key: Hashable,
              mode: LockMode) -> bool:
        """Whether ``txn_id`` holds at least ``mode`` on the resource."""
        entry = self._locks.get((table, key))
        if entry is None or txn_id not in entry.holders:
            return False
        if mode is LockMode.SHARED:
            return True
        return entry.mode is LockMode.EXCLUSIVE

    def held_count(self, txn_id: int) -> int:
        return len(self._held_by.get(txn_id, ()))

    def total_locked_resources(self) -> int:
        return len(self._locks)
