"""In-memory transactional database engine (the Shore-MT stand-in).

The paper prototypes POLARIS inside the Shore-MT storage manager with
the Shore-Kits benchmark drivers (Section 5).  This package provides the
equivalent substrate:

* :mod:`repro.db.storage` --- an in-memory storage manager: tables with
  hash and B+-tree indexes, strict two-phase row locking, a write-ahead
  log with staged group commit, and undo-based aborts;
* :mod:`repro.db.server` --- the multi-worker server: request-handler
  threads that route requests round-robin to per-worker queues, workers
  pinned one-to-one onto simulated cores, executing transactions
  non-preemptively from start to finish (the execution architecture of
  VoltDB/Silo-style systems that POLARIS targets, Section 1);
* :mod:`repro.db.queues` --- the worker request queues, in FIFO order
  (Shore-MT's default) or EDF order (as modified for POLARIS).

Import :mod:`repro.db.server` / :mod:`repro.db.storage` directly; this
package init stays light to keep the layering acyclic (the POLARIS
scheduler sits *between* the queue layer and the server layer).
"""

from repro.db.queues import EdfQueue, FifoQueue, RequestQueue

__all__ = ["EdfQueue", "FifoQueue", "RequestQueue"]
